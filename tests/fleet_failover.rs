//! Integration pin for experiment E16: replica failover under chaos.
//!
//! The acceptance bar for the fleet work: a 3-member fleet with 2-way
//! replication, driven over a chaotic link (corruption, drops, and
//! duplicates at 3 %), must survive one member restarting mid-stream —
//! every demand page delivered byte-identical, the epoch resync and its
//! replays accounted, no deferred resubmission leaving before its `Busy`
//! hint, and no wedge — across a 10-seed sweep.

use minos::net::{FaultPlan, Link, ServerResponse};
use minos::presentation::{Fleet, FleetConnection};
use minos::types::{ByteSpan, ObjectId};

const MEMBERS: usize = 3;
const REPLICATION: usize = 2;
const PAGES: usize = 24;
const PAGE_LEN: u64 = 4096;
const WINDOW: usize = 8;
const CHAOS_RATE: f64 = 0.03;

/// The published byte pattern, distinct per object so a page sliced from
/// the wrong replica offset can never verify.
fn pattern(object: u64, offset: u64) -> u8 {
    ((offset * 7 + object * 31) % 251) as u8
}

/// Publishes one object per session, streams `PAGES` demand pages through
/// a window of `WINDOW` with a restart of `victim` halfway, and verifies
/// every byte. Returns the connection for accounting assertions.
fn run_seed(seed: u64, victim: usize) -> FleetConnection {
    let mut fleet = Fleet::new(MEMBERS, REPLICATION).expect("valid fleet shape");
    let object = ObjectId::new(seed + 1);
    let body: Vec<u8> = (0..PAGES as u64 * PAGE_LEN).map(|i| pattern(object.raw(), i)).collect();
    fleet.publish_bytes(object, &body).expect("publish");
    let mut conn = FleetConnection::with_faults(
        fleet,
        Link::ethernet(),
        WINDOW,
        FaultPlan::chaos(seed, CHAOS_RATE),
    );
    let mut tickets = Vec::with_capacity(PAGES);
    let mut restarted = false;
    for page in 0..PAGES {
        if page == PAGES / 2 && !restarted {
            // Mid-stream crash: half the stream is submitted (and partly
            // in flight); the victim's volatile queues are gone and its
            // epoch bumps. The next touch of the connection must
            // re-handshake and replay onto the sibling replicas.
            conn.fleet_mut().restart_member(victim).expect("victim exists");
            restarted = true;
        }
        let rel = ByteSpan::at(page as u64 * PAGE_LEN, PAGE_LEN);
        tickets.push((conn.fetch_page(object, rel).expect("submit"), page));
    }
    for (ticket, page) in tickets {
        let (response, _) = conn.wait(ticket).expect("collect");
        let ServerResponse::Span(bytes) = response else {
            panic!("seed {seed}: page {page} came back {response:?}");
        };
        let from = page as u64 * PAGE_LEN;
        assert_eq!(bytes.len() as u64, PAGE_LEN, "seed {seed}: page {page} truncated");
        for (i, &b) in bytes.iter().enumerate() {
            assert_eq!(
                b,
                pattern(object.raw(), from + i as u64),
                "seed {seed}: page {page} corrupt at offset {i}"
            );
        }
        conn.recycle_payload(bytes);
    }
    conn
}

#[test]
fn replicated_pages_survive_a_mid_stream_restart_under_chaos() {
    for seed in 0..10u64 {
        let victim = (seed as usize) % MEMBERS;
        let conn = run_seed(seed, victim);
        let transport = conn.transport_stats();
        assert!(
            transport.epoch_resyncs >= 1,
            "seed {seed}: the restart must be noticed: {transport:?}"
        );
        assert_eq!(
            conn.fleet_stats().premature_busy_retries,
            0,
            "seed {seed}: a deferred resubmission left before its hint"
        );
        // The fault plan really bit: chaos at 3% over ~24 round trips
        // leaves visible scars on at least some seeds, and replays only
        // happen when the restart actually orphaned in-flight frames.
        let scars =
            transport.corrupt_frames + transport.duplicates + transport.retries + transport.replays;
        assert!(scars > 0, "seed {seed}: chaos plan left no trace: {transport:?}");
    }
}

#[test]
fn failover_retargets_replays_onto_sibling_replicas() {
    // Sweep the victim over every member: whichever members hold the
    // object's replicas, some seed restarts one of them with frames in
    // flight, and those frames replay onto the sibling (a failover).
    let mut total_replays = 0u64;
    let mut total_failovers = 0u64;
    for seed in 0..10u64 {
        let conn = run_seed(seed, (seed as usize) % MEMBERS);
        let transport = conn.transport_stats();
        total_replays += transport.replays;
        total_failovers += transport.failovers;
    }
    assert!(total_replays >= 1, "no seed replayed an orphaned frame");
    assert!(total_failovers >= 1, "no replay ever changed target");
}
