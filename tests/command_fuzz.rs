//! Property test: arbitrary command sequences never break a session.
//!
//! Whatever the user mashes on the menu — in either driving mode, across
//! relevant-object boundaries — the session must never panic, must keep its
//! stack depth ≥ 1, and must keep every reported position inside the
//! browsed medium. And running several such sessions concurrently through
//! the [`SessionScheduler`] must be invisible: each session's event
//! streams match what the same script produces standalone.

use minos::corpus;
use minos::corpus::objects::archived_form;
use minos::net::Link;
use minos::presentation::{BrowseCommand, BrowseEvent, BrowsingSession, SessionScheduler};
use minos::server::ObjectServer;
use minos::text::{LogicalLevel, PaginateConfig};
use minos::types::{ObjectId, PageNumber, SimDuration, SimInstant};
use minos::voice::PauseKind;
use proptest::prelude::*;
use std::collections::HashMap;

type Store = HashMap<ObjectId, minos::object::MultimediaObject>;

/// The fuzz corpus published to an object server, for scheduler-backed
/// sessions over the same objects as [`store`].
fn corpus_server() -> ObjectServer {
    let mut server = ObjectServer::new();
    for obj in store().into_values() {
        let archived = archived_form(&obj);
        server.publish(obj, &archived).unwrap();
    }
    server
}

fn store() -> Store {
    let mut map = Store::new();
    let report = corpus::medical_report(ObjectId::new(1), 42);
    map.insert(report.id, report);
    let dictation = corpus::audio_xray_report(ObjectId::new(2), 7);
    map.insert(dictation.id, dictation);
    let (parent, overlays) =
        corpus::subway_map_object(ObjectId::new(3), ObjectId::new(4), ObjectId::new(5), 11);
    map.insert(parent.id, parent);
    for o in overlays {
        map.insert(o.id, o);
    }
    map
}

/// One of every command, parameterized by small fuzzed values.
fn command(choice: u8, n: u8) -> BrowseCommand {
    match choice % 12 {
        0 => BrowseCommand::NextPage,
        1 => BrowseCommand::PreviousPage,
        2 => BrowseCommand::AdvancePages(n as i64 - 8),
        3 => BrowseCommand::GotoPage(PageNumber::new(n as u32 + 1).unwrap()),
        4 => BrowseCommand::NextUnit(LogicalLevel::ALL[n as usize % 5]),
        5 => BrowseCommand::PreviousUnit(LogicalLevel::ALL[n as usize % 5]),
        6 => BrowseCommand::FindPattern(["shadow", "the", "zzz", ""][n as usize % 4].into()),
        7 => BrowseCommand::Interrupt,
        8 => BrowseCommand::Resume,
        9 => BrowseCommand::RewindPauses(
            if n.is_multiple_of(2) { PauseKind::Short } else { PauseKind::Long },
            (n % 5) as usize,
        ),
        10 => BrowseCommand::SelectRelevant((n % 3) as usize),
        _ => BrowseCommand::ReturnFromRelevant,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_scripts_never_corrupt_a_session(
        start in 1u64..=3,
        script in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40),
        ticks in proptest::collection::vec(0u64..10_000, 0..10),
    ) {
        let (mut session, _) = BrowsingSession::open(
            store(),
            ObjectId::new(start),
            PaginateConfig::default(),
            SimDuration::from_secs(5),
        )
        .unwrap();
        let mut tick_iter = ticks.into_iter();
        for (choice, n) in script {
            // Commands may fail (unavailable operation, no indicator) but
            // must never panic or corrupt state.
            let _ = session.apply(command(choice, n));
            if let Some(ms) = tick_iter.next() {
                session.tick(SimDuration::from_millis(ms));
            }
            prop_assert!(session.depth() >= 1);
            let object = session.object();
            if let Some(pos) = session.visual_position() {
                let len = object.text_segments.first().map(|d| d.len()).unwrap_or(0);
                prop_assert!(pos <= len, "text position {pos} beyond {len}");
            }
            if let Some(audio) = session.audio() {
                let total = object.voice_segments[0].duration();
                prop_assert!(
                    audio.position() <= SimInstant::EPOCH + total,
                    "voice position beyond the part"
                );
            }
            // The menu is always derivable.
            prop_assert!(!session.menu().is_empty());
        }
    }

    #[test]
    fn concurrent_sessions_match_their_standalone_baselines(
        starts in proptest::collection::vec(1u64..=3, 2..5),
        script in proptest::collection::vec((any::<u8>(), any::<u8>(), 0u64..5_000), 0..24),
    ) {
        let config = PaginateConfig::default();
        let page = SimDuration::from_secs(5);

        // One standalone baseline per session, each with a private store.
        let mut baselines = Vec::new();
        let mut sched = SessionScheduler::new(corpus_server(), Link::ethernet());
        let mut keys = Vec::new();
        for &start in &starts {
            let (session, base_open) =
                BrowsingSession::open(store(), ObjectId::new(start), config, page).unwrap();
            let (key, open) = sched.open(ObjectId::new(start), config, page).unwrap();
            prop_assert_eq!(&open, &base_open, "open events diverge for object {}", start);
            baselines.push(session);
            keys.push(key);
        }

        // Each fuzzed command is applied to every session in turn — the
        // scheduler interleaves their transfers on the shared link — then
        // both sides dwell for the same fuzzed tick.
        for (choice, n, ms) in script {
            let cmd = command(choice, n);
            for (i, &key) in keys.iter().enumerate() {
                let expect = baselines[i].apply(cmd.clone()).ok();
                let got = sched.apply(key, cmd.clone()).ok();
                prop_assert_eq!(got, expect, "session {i}: {cmd:?} diverged");
            }
            let dt = SimDuration::from_millis(ms);
            let expected_ticks: Vec<Vec<BrowseEvent>> =
                baselines.iter_mut().map(|s| s.tick(dt)).collect();
            sched.tick(dt);
            for (i, &key) in keys.iter().enumerate() {
                let got = sched.drain_events(key).unwrap();
                prop_assert_eq!(&got, &expected_ticks[i], "session {i}: tick events diverged");
            }
        }
    }
}
