//! Property test: arbitrary command sequences never break a session.
//!
//! Whatever the user mashes on the menu — in either driving mode, across
//! relevant-object boundaries — the session must never panic, must keep its
//! stack depth ≥ 1, and must keep every reported position inside the
//! browsed medium. And running several such sessions concurrently through
//! the [`SessionScheduler`] must be invisible: each session's event
//! streams match what the same script produces standalone.

use minos::corpus;
use minos::corpus::objects::archived_form;
use minos::net::{Link, LinkStats};
use minos::presentation::{BrowseCommand, BrowseEvent, BrowsingSession, SessionScheduler};
use minos::server::ObjectServer;
use minos::text::{LogicalLevel, PaginateConfig};
use minos::types::{ObjectId, PageNumber, SimDuration, SimInstant};
use minos::voice::PauseKind;
use proptest::prelude::*;
use std::collections::HashMap;

type Store = HashMap<ObjectId, minos::object::MultimediaObject>;

/// The fuzz corpus published to an object server, for scheduler-backed
/// sessions over the same objects as [`store`].
fn corpus_server() -> ObjectServer {
    let mut server = ObjectServer::new();
    // Publish in id order: the map iterates in hash order, which varies
    // per run, and publication order shapes the archive layout (and so
    // device timings). The golden streams compare two separately built
    // servers, so the layout must be deterministic.
    let mut objects: Vec<_> = store().into_values().collect();
    objects.sort_by_key(|o| o.id);
    for obj in objects {
        let archived = archived_form(&obj);
        server.publish(obj, &archived).unwrap();
    }
    server
}

fn store() -> Store {
    let mut map = Store::new();
    let report = corpus::medical_report(ObjectId::new(1), 42);
    map.insert(report.id, report);
    let dictation = corpus::audio_xray_report(ObjectId::new(2), 7);
    map.insert(dictation.id, dictation);
    let (parent, overlays) =
        corpus::subway_map_object(ObjectId::new(3), ObjectId::new(4), ObjectId::new(5), 11);
    map.insert(parent.id, parent);
    for o in overlays {
        map.insert(o.id, o);
    }
    map
}

/// One of every command, parameterized by small fuzzed values.
fn command(choice: u8, n: u8) -> BrowseCommand {
    match choice % 12 {
        0 => BrowseCommand::NextPage,
        1 => BrowseCommand::PreviousPage,
        2 => BrowseCommand::AdvancePages(n as i64 - 8),
        3 => BrowseCommand::GotoPage(PageNumber::new(n as u32 + 1).unwrap()),
        4 => BrowseCommand::NextUnit(LogicalLevel::ALL[n as usize % 5]),
        5 => BrowseCommand::PreviousUnit(LogicalLevel::ALL[n as usize % 5]),
        6 => BrowseCommand::FindPattern(["shadow", "the", "zzz", ""][n as usize % 4].into()),
        7 => BrowseCommand::Interrupt,
        8 => BrowseCommand::Resume,
        9 => BrowseCommand::RewindPauses(
            if n.is_multiple_of(2) { PauseKind::Short } else { PauseKind::Long },
            (n % 5) as usize,
        ),
        10 => BrowseCommand::SelectRelevant((n % 3) as usize),
        _ => BrowseCommand::ReturnFromRelevant,
    }
}

/// Deterministic LCG driving the golden-stream scripts. Not proptest:
/// the seeds are pinned, so the kernel and legacy schedulers replay the
/// exact same script and their event streams can be compared byte for
/// byte.
fn lcg_next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// Replays `seed`'s script against a scheduler in the given mode and
/// returns everything observable: every apply result, every drained tick
/// event stream, the shared-link accounting, and the elapsed sim time.
fn golden_stream(
    legacy: bool,
    seed: u64,
    sessions: usize,
) -> (Vec<Option<Vec<BrowseEvent>>>, LinkStats, SimDuration) {
    let config = PaginateConfig::default();
    let page = SimDuration::from_secs(5);
    let mut sched = if legacy {
        SessionScheduler::legacy(corpus_server(), Link::ethernet())
    } else {
        SessionScheduler::new(corpus_server(), Link::ethernet())
    };
    let mut stream = Vec::new();
    let mut keys = Vec::new();
    for i in 0..sessions {
        let (key, open) = sched.open(ObjectId::new(i as u64 % 3 + 1), config, page).unwrap();
        stream.push(Some(open));
        keys.push(key);
    }
    let mut state = seed;
    for _ in 0..24 {
        let choice = lcg_next(&mut state) as u8;
        let n = lcg_next(&mut state) as u8;
        let ms = lcg_next(&mut state) % 5_000;
        let target = lcg_next(&mut state) as usize % keys.len();
        stream.push(sched.apply(keys[target], command(choice, n)).ok());
        sched.tick(SimDuration::from_millis(ms));
    }
    for &key in &keys {
        stream.push(Some(sched.drain_events(key).unwrap()));
    }
    (stream, sched.link_stats(), sched.elapsed())
}

#[test]
fn kernel_scheduler_matches_legacy_rotation_golden_streams() {
    // The equivalence pin for the event-driven tick: across ≥8 pinned
    // seeds and fleet sizes up to 16, the kernel-mode scheduler and the
    // legacy full-rotation scan must produce byte-identical session
    // event streams, identical shared-link accounting, and identical
    // simulated time.
    for seed in [1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
        let sessions = 2 + (seed as usize % 15); // 2..=16
        let (kernel_stream, kernel_link, kernel_elapsed) = golden_stream(false, seed, sessions);
        let (legacy_stream, legacy_link, legacy_elapsed) = golden_stream(true, seed, sessions);
        assert_eq!(
            kernel_stream, legacy_stream,
            "event streams diverged at seed {seed} with {sessions} sessions"
        );
        assert_eq!(kernel_link, legacy_link, "link accounting diverged at seed {seed}");
        assert_eq!(kernel_elapsed, legacy_elapsed, "sim time diverged at seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_scripts_never_corrupt_a_session(
        start in 1u64..=3,
        script in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40),
        ticks in proptest::collection::vec(0u64..10_000, 0..10),
    ) {
        let (mut session, _) = BrowsingSession::open(
            store(),
            ObjectId::new(start),
            PaginateConfig::default(),
            SimDuration::from_secs(5),
        )
        .unwrap();
        let mut tick_iter = ticks.into_iter();
        for (choice, n) in script {
            // Commands may fail (unavailable operation, no indicator) but
            // must never panic or corrupt state.
            let _ = session.apply(command(choice, n));
            if let Some(ms) = tick_iter.next() {
                session.tick(SimDuration::from_millis(ms));
            }
            prop_assert!(session.depth() >= 1);
            let object = session.object();
            if let Some(pos) = session.visual_position() {
                let len = object.text_segments.first().map(|d| d.len()).unwrap_or(0);
                prop_assert!(pos <= len, "text position {pos} beyond {len}");
            }
            if let Some(audio) = session.audio() {
                let total = object.voice_segments[0].duration();
                prop_assert!(
                    audio.position() <= SimInstant::EPOCH + total,
                    "voice position beyond the part"
                );
            }
            // The menu is always derivable.
            prop_assert!(!session.menu().is_empty());
        }
    }

    #[test]
    fn concurrent_sessions_match_their_standalone_baselines(
        starts in proptest::collection::vec(1u64..=3, 2..5),
        script in proptest::collection::vec((any::<u8>(), any::<u8>(), 0u64..5_000), 0..24),
    ) {
        let config = PaginateConfig::default();
        let page = SimDuration::from_secs(5);

        // One standalone baseline per session, each with a private store.
        let mut baselines = Vec::new();
        let mut sched = SessionScheduler::new(corpus_server(), Link::ethernet());
        let mut keys = Vec::new();
        for &start in &starts {
            let (session, base_open) =
                BrowsingSession::open(store(), ObjectId::new(start), config, page).unwrap();
            let (key, open) = sched.open(ObjectId::new(start), config, page).unwrap();
            prop_assert_eq!(&open, &base_open, "open events diverge for object {}", start);
            baselines.push(session);
            keys.push(key);
        }

        // Each fuzzed command is applied to every session in turn — the
        // scheduler interleaves their transfers on the shared link — then
        // both sides dwell for the same fuzzed tick.
        for (choice, n, ms) in script {
            let cmd = command(choice, n);
            for (i, &key) in keys.iter().enumerate() {
                let expect = baselines[i].apply(cmd.clone()).ok();
                let got = sched.apply(key, cmd.clone()).ok();
                prop_assert_eq!(got, expect, "session {i}: {cmd:?} diverged");
            }
            let dt = SimDuration::from_millis(ms);
            let expected_ticks: Vec<Vec<BrowseEvent>> =
                baselines.iter_mut().map(|s| s.tick(dt)).collect();
            sched.tick(dt);
            for (i, &key) in keys.iter().enumerate() {
                let got = sched.drain_events(key).unwrap();
                prop_assert_eq!(&got, &expected_ticks[i], "session {i}: tick events diverged");
            }
        }
    }
}
