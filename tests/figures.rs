//! Scenario tests for every figure of the paper (F1–F10 in DESIGN.md).
//!
//! Each test re-creates a figure's interaction end-to-end and asserts the
//! observable behaviour the figure demonstrates.

use minos::corpus;
use minos::presentation::process::{ProcessEvent, ProcessRunner};
use minos::presentation::{
    BrowseCommand, BrowseEvent, BrowsingSession, ProcessState, TransparencyViewer,
};
use minos::screen::{render_page, Screen};
use minos::text::{LogicalLevel, PaginateConfig};
use minos::types::{ObjectId, SimDuration};
use std::collections::HashMap;

fn open_one(
    object: minos::object::MultimediaObject,
    config: PaginateConfig,
) -> BrowsingSession<HashMap<ObjectId, minos::object::MultimediaObject>> {
    let id = object.id;
    let mut store = HashMap::new();
    store.insert(id, object);
    BrowsingSession::open(store, id, config, SimDuration::from_secs(5)).unwrap().0
}

/// Figures 1–2: visual pages with text, graphics and bitmaps, with menu
/// options on the right-hand side of the screen.
#[test]
fn f1_f2_visual_pages_with_menu_column() {
    let object = corpus::office_document(ObjectId::new(1), 7, 10);
    let images: Vec<minos::image::Bitmap> = object.images.iter().map(|i| i.render()).collect();
    let mut screen = Screen::new();
    let config =
        PaginateConfig { page_size: screen.display_region().size, margin: 24, block_gap: 10 };
    let session = open_one(object, config);

    let view = session.visual_view().unwrap();
    assert!(view.page_count >= 3, "office document should span pages");
    let page_bitmap = render_page(&view.page, config, |i| images.get(i).cloned());
    assert!(!page_bitmap.is_blank(), "the page renders visibly");

    screen.show(&page_bitmap, screen.display_region());
    let menu = session.menu();
    assert!(menu.len() >= 7, "menu offers the browsing options");
    screen.show(&menu.render(screen.menu_region()), screen.menu_region());
    // Ink in both regions: page content and the menu column.
    let fb = screen.framebuffer();
    let display_ink = fb.extract(screen.display_region()).unwrap().count_ink();
    let menu_ink = fb.extract(screen.menu_region()).unwrap().count_ink();
    assert!(display_ink > 1_000);
    assert!(menu_ink > 100);
}

/// Figures 3–4: the pinned x-ray over several pages of related text; a
/// final page turn shows a page without the image; the image is stored
/// once.
#[test]
fn f3_f4_visual_logical_message_sequence() {
    let object = corpus::medical_report(ObjectId::new(1), 42);
    let config =
        PaginateConfig { page_size: minos::types::Size::new(560, 420), margin: 16, block_gap: 8 };
    let mut session = open_one(object.clone(), config);

    // Enter the findings chapter: the x-ray pins.
    let events = session.apply(BrowseCommand::NextUnit(LogicalLevel::Chapter)).unwrap();
    assert!(events.contains(&BrowseEvent::VisualMessagePinned(0)));
    let first = session.visual_view().unwrap();
    assert!(first.page_count >= 3, "the paper needed three pages; we need several too");
    assert!(first.reserved_top > 0);

    // Page through the related text: the image stays pinned.
    for _ in 0..first.page_count - 1 {
        let events = session.apply(BrowseCommand::NextPage).unwrap();
        assert!(!events.contains(&BrowseEvent::VisualMessageUnpinned), "unpinned too early");
        assert_eq!(session.visual_view().unwrap().pinned_message, Some(0));
    }
    // The next turn exits: a page without the image.
    let events = session.apply(BrowseCommand::NextPage).unwrap();
    assert!(events.contains(&BrowseEvent::VisualMessageUnpinned));
    assert_eq!(session.visual_view().unwrap().pinned_message, None);

    // Stored once: the archived form carries a single copy of the x-ray.
    let archived = corpus::objects::archived_form(&object);
    let xray_payload = minos::object::DataPayload::image(&object.images[0].render());
    let image_bytes: u64 = archived
        .descriptor
        .entries
        .iter()
        .filter(|e| e.tag == "img0")
        .map(|e| e.location.span().len())
        .sum();
    assert_eq!(image_bytes, xray_payload.len());
}

/// Figures 5–6: transparencies superimposed on the x-ray as the user
/// presses next page; each adds a circle and an annotation.
#[test]
fn f5_f6_transparencies_on_the_xray() {
    let object = corpus::medical_report(ObjectId::new(1), 42);
    let mut viewer = TransparencyViewer::new(&object, 0).unwrap();
    let base = viewer.current().unwrap();
    let one = viewer.next_page().unwrap();
    let two = viewer.next_page().unwrap();
    // Ink accumulates; the base is never erased.
    assert!(one.count_ink() > base.count_ink());
    assert!(two.count_ink() > one.count_ink());
    for y in 0..base.height() as i32 {
        for x in 0..base.width() as i32 {
            if base.get(x, y) {
                assert!(two.get(x, y), "transparency erased base ink at ({x},{y})");
            }
        }
    }
    // The user may project a chosen subset.
    let pick = viewer.superimpose(&[1]).unwrap();
    assert!(pick.count_ink() > base.count_ink());
    assert!(pick.count_ink() < two.count_ink());
}

/// Figures 7–8: relevant objects (hospital/university transparencies)
/// selected from the subway map and superimposed; explicit return.
#[test]
fn f7_f8_relevant_objects_on_the_subway_map() {
    let (parent, overlays) =
        corpus::subway_map_object(ObjectId::new(1), ObjectId::new(2), ObjectId::new(3), 11);
    let mut store = HashMap::new();
    store.insert(parent.id, parent.clone());
    for o in &overlays {
        store.insert(o.id, o.clone());
    }
    let (mut session, _) = BrowsingSession::open(
        store,
        ObjectId::new(1),
        PaginateConfig::default(),
        SimDuration::from_secs(5),
    )
    .unwrap();

    // Indicators for both overlays are visible on the map.
    let labels: Vec<String> =
        session.visible_relevant().iter().map(|(_, l)| l.label.clone()).collect();
    assert_eq!(labels, vec!["hospitals", "university"]);

    // Selecting the indicator enters the overlay object; superimposing its
    // transparency on the map adds the markers.
    session.apply(BrowseCommand::SelectRelevant(0)).unwrap();
    assert_eq!(session.object().id, ObjectId::new(2));
    let map = parent.images[0].render();
    let marker = session.object().images[0].render();
    let mut combined = map.clone();
    combined.blit(&marker, minos::types::Point::ORIGIN, minos::image::BlitMode::Or);
    assert!(combined.count_ink() > map.count_ink(), "markers visible over the map");

    // Explicit return re-establishes the parent.
    let events = session.apply(BrowseCommand::ReturnFromRelevant).unwrap();
    assert!(events.contains(&BrowseEvent::ReturnedToParent(ObjectId::new(1))));
    assert_eq!(session.object().id, ObjectId::new(1));

    // The relevances record the marked stations as polygons.
    assert!(!parent.relevant[0].relevances.is_empty());
}

/// Figures 9–10: the guided city walk — overwrites blanking the route,
/// narrated, pages turning only after each narration completes.
#[test]
fn f9_f10_process_simulation_guided_walk() {
    let object = corpus::city_walk_object(ObjectId::new(1), 3);
    let mut runner = ProcessRunner::new(&object, 0).unwrap();
    let initial_ink = runner.current_page().count_ink();

    let mut blanked_so_far = Vec::new();
    let mut total = SimDuration::ZERO;
    while runner.state() != ProcessState::Finished {
        let events = runner.tick(SimDuration::from_millis(500));
        total += SimDuration::from_millis(500);
        for e in events {
            if let ProcessEvent::StepShown(i) = e {
                let ink = runner.current_page().count_ink();
                blanked_so_far.push((i, ink));
            }
        }
        assert!(total < SimDuration::from_secs(600), "walk never finished");
    }
    // Each step blanks more of the route: ink is non-increasing and ends
    // strictly lower.
    assert_eq!(blanked_so_far.len(), 4);
    for pair in blanked_so_far.windows(2) {
        assert!(pair[1].1 <= pair[0].1, "ink increased between steps");
    }
    assert!(blanked_so_far.last().unwrap().1 < initial_ink);

    // Narrations gate the turns: total time exceeds what the bare interval
    // alone would need.
    let narration_total: SimDuration =
        object.voice_segments.iter().map(|s| s.duration()).fold(SimDuration::ZERO, |a, b| a + b);
    assert!(total + SimDuration::from_secs(1) >= narration_total);
}
