//! Integration pins for experiment E17: the self-healing fleet.
//!
//! Three 10-seed sweeps over the chaos harness, each pinning one healing
//! loop end to end. Byte identity is implicit in every assertion on
//! `pages`: the harness verifies each delivered page against the
//! published pattern and its stored CRC inline and errors on the first
//! foreign byte, so a run that reports all pages delivered IS a run
//! where every page came back byte-identical.

use minos::presentation::fleet::rendezvous_order;
use minos::presentation::{
    simulate_chaos_workload, ChaosReport, ChaosSchedule, ChaosWorkloadConfig,
};
use minos::server::ServiceConfig;
use minos::types::{ObjectId, SimDuration, SimInstant};

const MEMBERS: usize = 4;
const REPLICATION: usize = 2;
const SESSIONS: usize = 6;
const AUDIO_SESSIONS: usize = 2;
const PAGES: usize = 6;
const PAGE_LEN: u64 = 8192;

fn ms(t: u64) -> SimInstant {
    SimInstant::EPOCH + SimDuration::from_millis(t)
}

fn run(schedule: ChaosSchedule) -> ChaosReport {
    simulate_chaos_workload(ChaosWorkloadConfig {
        members: MEMBERS,
        replication: REPLICATION,
        sessions: SESSIONS,
        audio_sessions: AUDIO_SESSIONS,
        pages_per_session: PAGES,
        page_len: PAGE_LEN,
        schedule,
        hedge_delay: None,
        heartbeat: SimDuration::from_millis(5),
        scrub_interval: Some(SimDuration::from_millis(25)),
        repair_spacing: SimDuration::from_millis(2),
        service: ServiceConfig::default(),
    })
    .expect("chaos workload runs")
}

/// The copies the victim holds under the same rendezvous placement the
/// fleet publishes with: one object per session, primary-first order.
fn copies_held(victim: usize) -> u64 {
    (0..SESSIONS)
        .filter(|&s| {
            rendezvous_order(ObjectId::new(s as u64 + 1), MEMBERS)
                .into_iter()
                .take(REPLICATION)
                .any(|m| m == victim)
        })
        .count() as u64
}

#[test]
fn crash_repair_restores_replication_to_k_for_every_object() {
    for seed in 0..10u64 {
        let victim = (seed as usize) % MEMBERS;
        let report = run(ChaosSchedule::new(seed).crash_at(victim, ms(40)));
        let want = (SESSIONS * PAGES) as u64;
        assert_eq!(report.pages, want, "seed {seed}: every page delivered: {report:?}");
        assert_eq!(report.lost_pages, 0, "seed {seed}: zero lost pages: {report:?}");
        assert!(report.down_transitions >= 1, "seed {seed}: crash undetected: {report:?}");
        // The property check: the repair queue owes exactly one rebuild
        // per copy the dead member held, and afterwards every object is
        // back at k distinct live holders.
        assert_eq!(
            report.repairs_completed,
            copies_held(victim),
            "seed {seed}: one repair per lost copy: {report:?}"
        );
        assert!(report.replication_ok, "seed {seed}: replication restored to k: {report:?}");
        assert_eq!(report.premature_busy_retries, 0, "seed {seed}: hint violated: {report:?}");
    }
}

#[test]
fn partition_heals_without_duplicate_side_effects() {
    for seed in 0..10u64 {
        let victim = (seed as usize) % MEMBERS;
        let report = run(ChaosSchedule::new(seed).partition_between(victim, ms(30), ms(90)));
        let want = (SESSIONS * PAGES) as u64;
        // Exactly `want` pages delivered — a partition that replayed or
        // hedged work across the cut must not double-deliver a page.
        assert_eq!(report.pages, want, "seed {seed}: pages delivered once each: {report:?}");
        assert_eq!(report.lost_pages, 0, "seed {seed}: zero lost pages: {report:?}");
        assert!(
            report.down_transitions >= 1,
            "seed {seed}: the partition was detected: {report:?}"
        );
        // The member rejoins when the window closes, so the end state
        // must hold k live copies of everything with no residue.
        assert!(report.replication_ok, "seed {seed}: replication intact after heal: {report:?}");
        assert_eq!(report.final_corrupt_pages, 0, "seed {seed}: no corrupt residue: {report:?}");
        assert_eq!(report.premature_busy_retries, 0, "seed {seed}: hint violated: {report:?}");
    }
}

#[test]
fn scrub_detects_and_heals_every_injected_bit_flip() {
    for seed in 0..10u64 {
        let rotten = (seed as usize) % MEMBERS;
        // Half of all reads on the rotten member flip a stored bit; the
        // scrub walk and demand-read CRC checks have to find all of it.
        let report = run(ChaosSchedule::new(seed).bit_rot(rotten, 500_000));
        let want = (SESSIONS * PAGES) as u64;
        assert_eq!(report.pages, want, "seed {seed}: every page delivered: {report:?}");
        assert_eq!(report.lost_pages, 0, "seed {seed}: zero lost pages: {report:?}");
        assert!(report.bit_rot_flips >= 1, "seed {seed}: the rot never bit: {report:?}");
        assert!(
            report.scrub_detected + report.read_repairs >= 1,
            "seed {seed}: corruption went unnoticed: {report:?}"
        );
        // 100% detection: the final sweep re-reads every page on every
        // member with rot frozen, so a single missed flip shows up here.
        assert_eq!(
            report.final_corrupt_pages, 0,
            "seed {seed}: a flip survived scrub + read-repair: {report:?}"
        );
        assert!(report.replication_ok, "seed {seed}: replication intact: {report:?}");
    }
}
