//! Shape assertions for the paper's performance claims (E2, E4–E7).
//!
//! The benches in `crates/bench` print the full series; these tests pin the
//! *direction* of each result so a regression that flips a conclusion
//! fails CI, not just a chart.

use minos::corpus::objects::archived_form;
use minos::corpus::{self, speech};
use minos::net::Link;
use minos::presentation::Workstation;
use minos::server::ObjectServer;
use minos::storage::{
    sched::mean_response, simulate_schedule, BlockCache, BlockDevice, OpticalDisk, Request,
    SchedPolicy,
};
use minos::types::{ByteSpan, ObjectId, Rect, SimDuration, SimInstant};
use minos::voice::eval::{evaluate_pauses, mean_rewind_error};
use minos::voice::pause::PauseDetector;
use minos::voice::recognize::{Recognizer, RecognizerConfig, UtteranceIndex};
use minos::voice::synth::{synthesize, SpeakerProfile};

/// E5: retrieving a view window moves far fewer bytes than the whole
/// image, and the gap grows with image size.
#[test]
fn e5_views_beat_whole_image_transfer() {
    let mut ratios = Vec::new();
    for (i, side) in [600u32, 1_200].into_iter().enumerate() {
        let id = ObjectId::new(i as u64 + 1);
        let mut object = minos::object::MultimediaObject::new(
            id,
            "big-image",
            minos::object::DrivingMode::Visual,
        );
        object.images.push(minos::image::Image::Bitmap(minos::image::Bitmap::new(side, side)));
        object.archive().unwrap();
        let archived = archived_form(&object);
        let mut server = ObjectServer::new();
        server.publish(object, &archived).unwrap();
        let mut ws = Workstation::new(server, Link::ethernet());

        ws.fetch_view(id, 0, Rect::new(0, 0, 200, 150)).unwrap();
        let window_bytes = ws.bytes_transferred();
        ws.reset_accounting();
        ws.fetch_view(id, 0, Rect::new(0, 0, side, side)).unwrap();
        let full_bytes = ws.bytes_transferred();
        assert!(window_bytes * 5 < full_bytes, "side {side}: {window_bytes} vs {full_bytes}");
        ratios.push(full_bytes as f64 / window_bytes as f64);
    }
    assert!(ratios[1] > ratios[0] * 2.0, "advantage should grow with image size: {ratios:?}");
}

/// E6: the miniature-first interface delivers a first impression for far
/// fewer bytes than shipping whole objects.
#[test]
fn e6_miniatures_beat_full_objects() {
    let mut server = ObjectServer::new();
    let mut bases = Vec::new();
    for i in 0..6u64 {
        let obj = corpus::medical_report(ObjectId::new(i + 1), i);
        let receipt = server.publish(obj.clone(), &archived_form(&obj)).unwrap();
        bases.push((obj.id, receipt.span.start));
    }
    let mut ws = Workstation::new(server, Link::ethernet());
    let ids: Vec<ObjectId> = bases.iter().map(|(id, _)| *id).collect();
    ws.miniature_stream(&ids).unwrap();
    let miniature_bytes = ws.bytes_transferred();
    let miniature_time = ws.elapsed();

    ws.reset_accounting();
    for (id, base) in &bases {
        ws.fetch_object(*id, *base).unwrap();
    }
    let full_bytes = ws.bytes_transferred();
    let full_time = ws.elapsed();
    assert!(miniature_bytes * 10 < full_bytes, "miniatures {miniature_bytes} vs full {full_bytes}");
    // Seek latency dominates tiny reads on the optical device, so the
    // time gap is narrower than the byte gap; it must still be decisive.
    assert!(miniature_time * 2 < full_time, "{miniature_time} vs {full_time}");
}

/// E7: under a concurrent burst on the optical device, elevator scheduling
/// beats FCFS, and response time grows with load.
#[test]
fn e7_scheduling_and_load() {
    let make_disk = || {
        let mut d = OpticalDisk::with_capacity(64 << 20);
        d.append(&vec![0u8; 32 << 20]).unwrap();
        d
    };
    let burst = |n: u64| -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                id: i,
                arrival: SimInstant::EPOCH,
                span: ByteSpan::at((i * 7919 * 4096) % (30 << 20), 64 << 10),
            })
            .collect()
    };
    // Load growth.
    let mut last = SimDuration::ZERO;
    for n in [4u64, 16, 64] {
        let mut d = make_disk();
        let done = simulate_schedule(&mut d, &burst(n), SchedPolicy::Fcfs).unwrap();
        let mean = mean_response(&done);
        assert!(mean > last, "response must grow with load");
        last = mean;
    }
    // Elevator wins on the scattered burst.
    let mut d1 = make_disk();
    let fcfs = mean_response(&simulate_schedule(&mut d1, &burst(48), SchedPolicy::Fcfs).unwrap());
    let mut d2 = make_disk();
    let elevator =
        mean_response(&simulate_schedule(&mut d2, &burst(48), SchedPolicy::Elevator).unwrap());
    assert!(elevator < fcfs, "elevator {elevator} vs fcfs {fcfs}");
}

/// E7 (cache half): a block cache over the optical store turns repeated
/// reads into near-free hits.
#[test]
fn e7_cache_flattens_repeated_access() {
    let mut disk = OpticalDisk::with_capacity(8 << 20);
    disk.append(&vec![7u8; 4 << 20]).unwrap();
    let mut cache = BlockCache::new(disk, 64 << 10, 32);
    let span = ByteSpan::at(1 << 20, 256 << 10);
    let (_, cold) = cache.read_at(span).unwrap();
    let (_, warm) = cache.read_at(span).unwrap();
    assert!(warm * 20 < cold, "warm {warm} vs cold {cold}");
    assert!(cache.hit_ratio() > 0.4);
}

/// E2: pause browsing is accurate on clear dictation and degrades (but
/// survives) on fast/noisy speakers.
#[test]
fn e2_pause_quality_orders_by_profile() {
    let text = speech::dictation(5, 6, 5);
    let mut recalls = Vec::new();
    let mut rewind_errors = Vec::new();
    for (_, profile) in SpeakerProfile::named() {
        let (audio, transcript) = synthesize(&text, &profile, 3);
        let pauses = PauseDetector::new().detect(&audio);
        let report = evaluate_pauses(&transcript, &pauses);
        recalls.push(report.recall);
        rewind_errors.push(mean_rewind_error(&transcript, &pauses, 2));
    }
    // clear ≥ fast and clear ≥ noisy in recall; clear rewind error small.
    assert!(recalls[0] >= recalls[1] - 0.05, "clear {} vs fast {}", recalls[0], recalls[1]);
    assert!(recalls[0] >= recalls[2] - 0.05, "clear {} vs noisy {}", recalls[0], recalls[2]);
    assert!(recalls[0] > 0.9);
    assert!(rewind_errors[0] < 2.0, "clear rewind error {}", rewind_errors[0]);
}

/// E4: voice pattern-browsing recall scales with the recognizer hit rate.
#[test]
fn e4_recall_tracks_recognizer_quality() {
    let text = speech::dictation(9, 4, 6);
    let (_, transcript) = synthesize(&text, &SpeakerProfile::CLEAR, 2);
    // Query: every distinct word; measure how many occurrences pattern
    // browsing can reach.
    let vocabulary: Vec<String> =
        transcript.words.iter().map(|w| w.text.trim_end_matches('.').to_string()).collect();
    let total = transcript.words.len();
    let mut last_recall = -1.0f64;
    for hit_rate in [0.25, 0.5, 0.9, 1.0] {
        let recognizer = Recognizer::new(
            vocabulary.iter(),
            RecognizerConfig { hit_rate, false_alarm_rate: 0.0, seed: 7 },
        );
        let index = UtteranceIndex::new(recognizer.recognize(&transcript));
        let reachable = index.utterances().len();
        let recall = reachable as f64 / total as f64;
        assert!(recall >= last_recall - 0.02, "recall not monotone: {recall} after {last_recall}");
        last_recall = recall;
        if (hit_rate - 1.0).abs() < f64::EPSILON {
            assert!((recall - 1.0).abs() < 1e-9, "perfect recognizer must reach every word");
        }
    }
}
