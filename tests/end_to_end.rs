//! End-to-end: author → archive → publish on the server → query → fetch
//! over the link → browse on the workstation.
//!
//! This walks the full §4–§5 pipeline through real components: the
//! declarative formatter, descriptor/composition files, the optical-disk
//! archiver, the inverted index, the protocol link, and the presentation
//! manager.

use minos::corpus::objects::archived_form;
use minos::net::Link;
use minos::object::{ArchivedObject, DataKind, DrivingMode, FormatterSession, MultimediaObject};
use minos::presentation::{BrowseCommand, BrowsingSession, Workstation};
use minos::server::ObjectServer;
use minos::text::PaginateConfig;
use minos::types::{ByteSpan, ObjectId, SimDuration};
use std::collections::HashMap;

#[test]
fn formatter_to_browser_pipeline() {
    // 1. Author with the formatter.
    let mut formatter = FormatterSession::new(ObjectId::new(1));
    formatter
        .set_synthesis(
            "@object pipeline-test\n@mode visual\n@attr author tester\n\
             .ti Pipeline Test Object\n.ch Only Chapter\n\
             This object travels the whole pipeline from formatter to browser. \
             The keyword quetzal identifies it uniquely.\n",
        )
        .unwrap();
    let file = formatter.build().unwrap();
    assert!(file.descriptor.entries.iter().all(|e| e.kind == DataKind::Text));

    // 2. Build the typed object and archive it.
    let markup: String = file
        .synthesis
        .items
        .iter()
        .filter_map(|i| match i {
            minos::object::SynthesisItem::Markup(m) => Some(m.as_str()),
            _ => None,
        })
        .collect::<Vec<_>>()
        .join("\n");
    let mut object = MultimediaObject::new(ObjectId::new(1), "pipeline-test", DrivingMode::Visual);
    object.text_segments.push(minos::text::parse_markup(&markup).unwrap());
    object.archive().unwrap();

    // 3. Publish to the server; the archived bytes land on the optical disk.
    let mut server = ObjectServer::new();
    let archived = ArchivedObject::from_file(&file);
    let receipt = server.publish(object.clone(), &archived).unwrap();
    assert!(receipt.store_time > SimDuration::ZERO);
    assert_eq!(server.object_count(), 1);

    // 4. Query by content over the link.
    let mut ws = Workstation::new(server, Link::ethernet());
    let hits = ws.query(&["quetzal"]).unwrap();
    assert_eq!(hits, vec![ObjectId::new(1)]);
    assert!(ws.query(&["nonexistentword"]).unwrap().is_empty());

    // 5. Fetch the archived form back and verify it decodes to the same
    //    descriptor.
    let fetched = ws.fetch_object(ObjectId::new(1), receipt.span.start).unwrap();
    assert_eq!(fetched.descriptor.object_id, ObjectId::new(1));
    assert_eq!(fetched.descriptor.name, "pipeline-test");
    let entry = &fetched.descriptor.entries[0];
    let text_bytes = fetched.composition.read(entry.location.span()).unwrap();
    assert!(String::from_utf8(text_bytes.to_vec()).unwrap().contains("quetzal"));

    // 6. Browse the object.
    let mut store = HashMap::new();
    store.insert(object.id, object);
    let (mut session, _) = BrowsingSession::open(
        store,
        ObjectId::new(1),
        PaginateConfig::default(),
        SimDuration::from_secs(20),
    )
    .unwrap();
    let events = session.apply(BrowseCommand::FindPattern("quetzal".into())).unwrap();
    assert!(events
        .iter()
        .any(|e| matches!(e, minos::presentation::BrowseEvent::PatternFound { .. })));
}

#[test]
fn archival_and_mailing_against_the_real_archiver() {
    use minos::object::ArchiverRead;
    use minos::storage::{Archiver, OpticalDisk, SharedArchiver};

    // Shared data: an x-ray already in the archiver.
    let mut archiver = Archiver::new(OpticalDisk::with_capacity(16 << 20));
    let xray_bytes = vec![0xAB; 4_096];
    let (offset, _) = archiver.device_append(&xray_bytes);
    let shared = SharedArchiver::new(archiver);

    // An object whose descriptor points at the shared x-ray.
    let mut formatter = FormatterSession::new(ObjectId::new(2));
    formatter
        .datadir_mut()
        .insert_archiver_ref("xray", DataKind::Image, ByteSpan::at(offset, 4_096))
        .unwrap();
    formatter
        .set_synthesis("@object mailer\n.ch Report\nSee the attached film.\n@data xray\n")
        .unwrap();
    let file = formatter.build().unwrap();
    let archived = ArchivedObject::from_file(&file);
    assert!(!archived.is_self_contained());

    // Mailing inside the organization keeps the pointer and the small size.
    let inside = archived.mail_inside();
    // Mailing outside resolves it: the x-ray data is pulled in.
    let outside = archived.mail_outside(&shared).unwrap();
    assert!(outside.is_self_contained());
    assert_eq!(outside.composition.len(), archived.composition.len() + 4_096);
    assert!(outside.mail_inside().len() > inside.len());
    // The resolved data round-trips.
    let entry = outside.descriptor.entry("xray").unwrap();
    let data = outside.composition.read(entry.location.span()).unwrap();
    assert_eq!(data, &xray_bytes[..]);
    // The shared archiver still serves the original region.
    assert_eq!(shared.read_span(ByteSpan::at(offset, 4_096)).unwrap(), xray_bytes);
}

// Small helper: append raw bytes to the archiver's device (test-only
// convenience for planting shared data).
trait DeviceAppend {
    fn device_append(&mut self, data: &[u8]) -> (u64, SimDuration);
}

impl DeviceAppend for minos::storage::Archiver<minos::storage::OpticalDisk> {
    fn device_append(&mut self, data: &[u8]) -> (u64, SimDuration) {
        // Store under a reserved object id so the frontier advances through
        // the archiver's own bookkeeping.
        let (record, took) = self.store(ObjectId::new(u64::MAX), data).unwrap();
        (record.span.start, took)
    }
}

#[test]
fn versions_survive_republication() {
    let mut server = ObjectServer::new();
    let v1 = minos::corpus::office_document(ObjectId::new(9), 1, 1);
    server.publish(v1.clone(), &archived_form(&v1)).unwrap();
    let v2 = minos::corpus::office_document(ObjectId::new(9), 2, 2);
    server.publish(v2.clone(), &archived_form(&v2)).unwrap();

    let versions = server.archiver().versions(ObjectId::new(9));
    assert_eq!(versions.len(), 2);
    // Both versions remain readable from the write-once store.
    let span1 = versions[0].span;
    let span2 = versions[1].span;
    assert!(span2.start >= span1.end);
    let (bytes1, _) = server.archiver_mut().read_at(span1).unwrap();
    let back1 = ArchivedObject::decode_from_archive(&bytes1, span1.start).unwrap();
    assert_eq!(back1.descriptor.object_id, ObjectId::new(9));
    let (bytes2, _) = server.archiver_mut().read_at(span2).unwrap();
    let back2 = ArchivedObject::decode_from_archive(&bytes2, span2.start).unwrap();
    assert!(back2.composition.len() > back1.composition.len());
}
