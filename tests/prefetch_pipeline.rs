//! End-to-end check of the anticipatory prefetch pipeline (§5).
//!
//! A 1 MB record is read as sixteen 64 KB pages over the Ethernet link and
//! the optical-disk model, with a fixed per-page dwell. The experiment's
//! acceptance claims are pinned here deterministically:
//!
//! * stall time strictly decreases from prefetch depth 0 to 1 to 2 (and
//!   depth 4 stalls no more than depth 2);
//! * batching strictly reduces round trips;
//! * every page's bytes are identical at every depth — and identical even
//!   when the prediction plan is deliberately wrong.

use minos::net::{Link, ServerRequest, ServerResponse};
use minos::presentation::prefetch::{page_spans, PrefetchBuffer, PrefetchStats};
use minos::presentation::Workstation;
use minos::server::ObjectServer;
use minos::types::{ByteSpan, ObjectId, SimDuration};

const RECORD_LEN: usize = 1 << 20;
const PAGES: usize = 16;
const DWELL: SimDuration = SimDuration::from_millis(320);

fn pipeline(depth: usize) -> (PrefetchBuffer<ObjectServer>, ByteSpan) {
    let mut server = ObjectServer::new();
    let data: Vec<u8> = (0..RECORD_LEN).map(|i| (i % 251) as u8).collect();
    let (record, _) = server.archiver_mut().store(ObjectId::new(1), &data).unwrap();
    (PrefetchBuffer::new(Workstation::new(server, Link::ethernet()), depth), record.span)
}

/// Plays the whole presentation at `depth`, checking every page's bytes,
/// and returns (stats, round trips).
fn play(depth: usize) -> (PrefetchStats, u64) {
    let (mut pipe, span) = pipeline(depth);
    let plan: Vec<ServerRequest> =
        page_spans(span, PAGES).into_iter().map(|span| ServerRequest::FetchSpan { span }).collect();
    pipe.prime(&plan).unwrap();
    for (i, need) in plan.iter().enumerate() {
        let (response, _) = pipe.step(need, &plan[i + 1..], DWELL).unwrap();
        assert_page_bytes(i, need, &response);
    }
    (pipe.stats(), pipe.workstation().round_trips())
}

fn assert_page_bytes(i: usize, need: &ServerRequest, response: &ServerResponse) {
    let ServerRequest::FetchSpan { span } = need else { panic!("page plan is spans") };
    let ServerResponse::Span(bytes) = response else {
        panic!("unexpected response at page {i}: {response:?}");
    };
    let expect: Vec<u8> = (span.start..span.end).map(|b| (b as usize % 251) as u8).collect();
    assert_eq!(bytes, &expect, "page {i} content");
}

#[test]
fn stall_strictly_decreases_with_depth() {
    let (s0, _) = play(0);
    let (s1, _) = play(1);
    let (s2, _) = play(2);
    let (s4, _) = play(4);
    assert!(s0.stall > s1.stall, "depth 0 {} vs depth 1 {}", s0.stall, s1.stall);
    assert!(s1.stall > s2.stall, "depth 1 {} vs depth 2 {}", s1.stall, s2.stall);
    assert!(s4.stall <= s2.stall, "depth 4 {} vs depth 2 {}", s4.stall, s2.stall);
    // Anticipation trades a longer opening fetch for continuity.
    assert!(s4.opening > s0.opening);
}

#[test]
fn batching_needs_fewer_round_trips() {
    let (_, t0) = play(0);
    let (_, t1) = play(1);
    let (_, t2) = play(2);
    let (_, t4) = play(4);
    // Depth 0: one priming trip plus one demand trip per remaining page.
    assert_eq!(t0, PAGES as u64);
    assert!(t1 <= t0 && t2 < t1 && t4 < t2, "round trips {t0} / {t1} / {t2} / {t4}");
}

#[test]
fn sequential_prefetch_wastes_nothing() {
    for depth in [0, 1, 2, 4] {
        let (stats, _) = play(depth);
        assert_eq!(stats.hits + stats.misses, PAGES as u64, "depth {depth}");
        if depth == 0 {
            // No lookahead: only the primed first page hits.
            assert_eq!(stats.misses, PAGES as u64 - 1);
        } else {
            assert_eq!(stats.misses, 0, "depth {depth}: every page was anticipated");
        }
        assert_eq!(stats.wasted(), 0, "depth {depth}");
    }
}

#[test]
fn batched_adjacent_pages_share_one_response_message() {
    // Serial: four adjacent page fetches cost a request and a response
    // message each — eight messages on the wire.
    let (mut serial, span) = pipeline(0);
    let spans = page_spans(span, 4);
    for s in &spans {
        let response =
            serial.workstation_mut().request(&ServerRequest::FetchSpan { span: *s }).unwrap();
        assert!(matches!(response, ServerResponse::Span(_)));
    }
    let serial_stats = serial.workstation().connection().link_stats();
    assert_eq!(serial_stats.messages, 8, "serial: one round trip per page");

    // Batched: the four requests still go up individually, but the server
    // coalesces the adjacent spans into one device read and the transport
    // returns them as a single merged response message — five messages,
    // strictly fewer framing bytes, identical page content.
    let (mut batched, span) = pipeline(0);
    let plan: Vec<ServerRequest> =
        page_spans(span, 4).into_iter().map(|span| ServerRequest::FetchSpan { span }).collect();
    let responses = batched.workstation_mut().request_batch(plan.clone()).unwrap();
    for (i, (need, response)) in plan.iter().zip(&responses).enumerate() {
        assert_page_bytes(i, need, response);
    }
    let batched_stats = batched.workstation().connection().link_stats();
    assert_eq!(batched_stats.messages, 5, "batched: four requests up, one merged response down");
    assert!(
        batched_stats.bytes < serial_stats.bytes,
        "merged framing moves fewer bytes: {} vs {}",
        batched_stats.bytes,
        serial_stats.bytes
    );
}

#[test]
fn wrong_plan_is_waste_never_wrong_content() {
    let (mut pipe, span) = pipeline(2);
    let truth = page_spans(span, PAGES);
    // Predict spans that will never be requested.
    let wrong: Vec<ServerRequest> = truth
        .iter()
        .map(|s| ServerRequest::FetchSpan { span: ByteSpan::at(s.start + 13, 64) })
        .collect();
    pipe.prime(&wrong).unwrap();
    for (i, span) in truth.iter().enumerate() {
        let need = ServerRequest::FetchSpan { span: *span };
        let (response, _) = pipe.step(&need, &wrong, DWELL).unwrap();
        assert_page_bytes(i, &need, &response);
    }
    let stats = pipe.stats();
    assert_eq!(stats.misses, PAGES as u64);
    assert_eq!(stats.hits, 0);
    assert!(stats.wasted() > 0);
}
