//! Integration pin for experiment E13: recovery on a faulty link.
//!
//! The acceptance bar from the transport-hardening work: at 1 % frame
//! corruption the pipelined transport must retry its way to completion —
//! every page byte-identical, nothing abandoned — while keeping at least
//! 80 % of its fault-free throughput. The blocking discipline pays a full
//! timeout per loss, which is exactly the degradation the pipeline hides.

use minos::corpus;
use minos::corpus::objects::archived_form;
use minos::net::{FaultPlan, Link, ServerRequest, ServerResponse};
use minos::presentation::{simulate_faulty_page_workload, Connection, TransportStats};
use minos::server::ObjectServer;
use minos::types::{ObjectId, SimDuration, SimInstant};

const PAGES: usize = 48;
const PAGE_LEN: u64 = 8192;
const WINDOW: usize = 8;
const SEED: u64 = 1986;

#[test]
fn pipelined_goodput_survives_one_percent_corruption() {
    let clean = simulate_faulty_page_workload(PAGES, PAGE_LEN, WINDOW, FaultPlan::none()).unwrap();
    let faulty =
        simulate_faulty_page_workload(PAGES, PAGE_LEN, WINDOW, FaultPlan::corrupting(SEED, 0.01))
            .unwrap();
    // Byte-identity is verified inside the workload: a page that comes back
    // different is counted as failed, so pages == PAGES and failed == 0 is
    // the full correctness claim.
    assert_eq!(faulty.pages, PAGES as u64, "every page recovered");
    assert_eq!(faulty.failed, 0, "no request exhausted its retries");
    assert!(
        faulty.transport.corrupt_frames > 0 && faulty.transport.retries > 0,
        "the plan really exercised recovery: {:?}",
        faulty.transport
    );
    let ratio = faulty.pages_per_sec() / clean.pages_per_sec();
    assert!(ratio >= 0.8, "goodput ratio {ratio:.3} at 1% corruption fell below the 0.8 pin");
}

#[test]
fn blocking_transport_pays_the_timeouts_the_pipeline_hides() {
    let corrupt = FaultPlan::corrupting(SEED, 0.01);
    let blocking = simulate_faulty_page_workload(PAGES, PAGE_LEN, 1, corrupt).unwrap();
    let pipelined = simulate_faulty_page_workload(PAGES, PAGE_LEN, WINDOW, corrupt).unwrap();
    let blocking_clean =
        simulate_faulty_page_workload(PAGES, PAGE_LEN, 1, FaultPlan::none()).unwrap();
    // Both disciplines still recover everything…
    assert_eq!(blocking.pages, PAGES as u64);
    assert_eq!(blocking.failed, 0);
    // …but each blocking loss stalls the whole stream for a deadline,
    // while pipelined deadlines expire behind earlier waits.
    assert!(
        blocking.elapsed > blocking_clean.elapsed,
        "blocking under faults ({:?}) should be slower than clean ({:?})",
        blocking.elapsed,
        blocking_clean.elapsed
    );
    assert!(
        pipelined.elapsed < blocking.elapsed,
        "pipelined recovery ({:?}) should beat blocking recovery ({:?})",
        pipelined.elapsed,
        blocking.elapsed
    );
}

/// A server with one queryable object, for driving a raw [`Connection`].
fn query_server() -> ObjectServer {
    let mut server = ObjectServer::new();
    let report = corpus::medical_report(ObjectId::new(1), 42);
    let archived = archived_form(&report);
    server.publish(report, &archived).unwrap();
    server
}

#[test]
fn idle_connection_retransmits_at_its_deadline() {
    // A response lost on an otherwise-idle connection: nothing ever calls
    // wait(), so before the timer wheel the loss sat undiscovered until
    // the next collection. Driving the connection with advance_to() must
    // fire the retransmit deadline at the deadline — and only then.
    let timeout = SimDuration::from_millis(500);
    let mut conn =
        Connection::with_faults(query_server(), Link::ethernet(), 4, FaultPlan::dropping(7, 1.0))
            .with_recovery(timeout, 2);
    let ticket = conn.submit(ServerRequest::Query { keywords: vec!["shadow".into()] });

    // Just short of the deadline: armed, but nothing fires.
    conn.advance_to(SimInstant::EPOCH + SimDuration::from_millis(499));
    assert_eq!(conn.transport_stats().timeouts, 0, "no deadline may fire early");
    assert!(conn.kernel_stats().timers_armed >= 1);

    // At the deadline the wheel wakes the slot: one timeout, one
    // retransmit, a fresh (backed-off) deadline armed.
    conn.advance_to(SimInstant::EPOCH + timeout);
    let after_first = conn.transport_stats();
    assert_eq!(after_first.timeouts, 1, "the deadline fired exactly at 500ms");
    assert_eq!(after_first.retries, 1, "the loss was retransmitted, not expired");

    // Every retransmit is dropped too; driving far enough exhausts the
    // retry budget and the request expires with a typed inline error.
    conn.advance_to(SimInstant::EPOCH + SimDuration::from_secs(30));
    let exhausted = conn.transport_stats();
    assert_eq!(exhausted.timeouts, 3, "initial send + 2 retries all timed out");
    assert_eq!(exhausted.retries, 2, "the retry budget was spent");
    let stats = conn.kernel_stats();
    assert!(stats.events_fired >= 3, "each deadline fired through the wheel: {stats:?}");
    let (response, _) = conn.wait(ticket).unwrap();
    assert!(
        matches!(response, ServerResponse::Error(_)),
        "the expired request surfaces as a typed error, not a hang: {response:?}"
    );
}

#[test]
fn reset_accounting_clears_transport_stats() {
    let mut conn = Connection::with_faults(
        query_server(),
        Link::ethernet(),
        4,
        FaultPlan::corrupting(9, 0.15),
    );
    for _ in 0..12 {
        let ticket = conn.submit(ServerRequest::Query { keywords: vec!["shadow".into()] });
        let (response, _) = conn.wait(ticket).unwrap();
        assert_eq!(response, ServerResponse::Hits(vec![ObjectId::new(1)]));
    }
    let dirty = conn.transport_stats();
    assert!(
        dirty.corrupt_frames > 0 && dirty.retries > 0,
        "the faulty link really dirtied the accounting: {dirty:?}"
    );
    conn.reset_accounting();
    assert_eq!(
        conn.transport_stats(),
        TransportStats::default(),
        "reset_accounting must clear every recovery counter"
    );
    assert_eq!(conn.fault_stats().frames, 0, "fault-layer counters reset too");
    // The connection stays usable after the reset.
    let ticket = conn.submit(ServerRequest::Query { keywords: vec!["shadow".into()] });
    let (response, _) = conn.wait(ticket).unwrap();
    assert_eq!(response, ServerResponse::Hits(vec![ObjectId::new(1)]));
}
