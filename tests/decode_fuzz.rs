//! Property test: mangled wire bytes decode to typed errors, never panics.
//!
//! `tests/command_fuzz.rs` fuzzes the command surface; this file is its
//! transport twin. Valid [`Frame`], [`ServerRequest`], and
//! [`ServerResponse`] encodings are truncated, bit-flipped, and
//! tag-mutated, and every mangled buffer must come back as `Err` — the
//! CRC32 trailer makes corruption a *typed* error — without ever decoding
//! into a frame that differs from the one sent. The decoder's borrowed
//! span path (`get_bytes_ref`), which the frame and protocol layers ride
//! to avoid per-message copies, gets the same treatment: truncations and
//! inflated length prefixes fail typed, even under a valid checksum.

use minos::net::frame::crc32;
use minos::net::{
    Delivery, FaultPlan, FaultRng, FaultStats, Frame, Priority, ServerRequest, ServerResponse,
};
use minos::types::{ByteSpan, Decoder, Encoder, MinosError, ObjectId, SimDuration};
use proptest::prelude::*;

/// A palette of representative frames: both directions, scalar and batch
/// payloads, the overload-control messages (epoch handshake and busy
/// rejection), a fuzzed blob for the variable-length bodies.
fn sample_frame(choice: u8, conn: u64, rid: u64, blob: Vec<u8>) -> Frame {
    match choice % 6 {
        0 => {
            Frame::request(conn, rid, ServerRequest::FetchSpan { span: ByteSpan::at(4_096, 8_192) })
        }
        1 => Frame::request(
            conn,
            rid,
            ServerRequest::Batch {
                requests: vec![
                    ServerRequest::FetchSpan { span: ByteSpan::at(0, 1_024) },
                    ServerRequest::Query { keywords: vec!["laser".into(), "disc".into()] },
                ],
            },
        ),
        2 => Frame::response(conn, rid, ServerResponse::Span(blob)),
        3 => Frame::request_with_priority(
            conn,
            rid,
            Priority::Prefetch,
            ServerRequest::Hello { epoch: rid },
        ),
        4 => Frame::response(
            conn,
            rid,
            ServerResponse::Busy { retry_after: SimDuration::from_micros(conn) },
        ),
        _ => Frame::response(
            conn,
            rid,
            ServerResponse::Batch(vec![
                ServerResponse::Span(blob),
                ServerResponse::Hits(vec![ObjectId::new(7)]),
                ServerResponse::Error("inline".into()),
                ServerResponse::Welcome { epoch: rid },
            ]),
        ),
    }
}

/// A frame envelope whose payload tag byte is `tag`, carrying a valid
/// priority byte, valid inner bytes, and a *valid* checksum — the decoder
/// reaches the tag dispatch itself instead of tripping on the CRC.
fn frame_with_payload_tag(conn: u64, rid: u64, tag: u8) -> Vec<u8> {
    let mut p = Encoder::new();
    p.put_u8(tag);
    p.put_bytes(&ServerRequest::FetchMiniature { id: ObjectId::new(9) }.encode());
    let mut e = Encoder::new();
    e.put_varint(conn);
    e.put_varint(rid);
    e.put_u8(Priority::Demand.wire_tag());
    e.put_bytes(&p.finish());
    let mut bytes = e.finish();
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncated_frames_are_errors(
        choice in 0u8..6,
        conn in 0u64..1 << 32,
        rid in 0u64..1 << 32,
        blob in proptest::collection::vec(any::<u8>(), 0..64),
        cut in any::<usize>(),
    ) {
        let bytes = sample_frame(choice, conn, rid, blob).encode();
        let cut = cut % bytes.len(); // strictly shorter than the full frame
        prop_assert!(Frame::decode(bytes.get(..cut).unwrap_or_default()).is_err());
    }

    #[test]
    fn bit_flips_surface_as_typed_corruption(
        choice in 0u8..6,
        conn in 0u64..1 << 32,
        rid in 0u64..1 << 32,
        blob in proptest::collection::vec(any::<u8>(), 0..64),
        at in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = sample_frame(choice, conn, rid, blob).encode();
        let at = at % bytes.len();
        if let Some(byte) = bytes.get_mut(at) {
            *byte ^= 1 << bit;
        }
        // Anywhere the flip lands — envelope, payload, or the trailer
        // itself — the checksum mismatch is what reports it.
        prop_assert!(matches!(Frame::decode(&bytes), Err(MinosError::Corrupt(_))));
    }

    #[test]
    fn mutated_envelope_tags_are_rejected(
        conn in 0u64..1 << 32,
        rid in 0u64..1 << 32,
        tag in 3u8..=255,
    ) {
        let bytes = frame_with_payload_tag(conn, rid, tag);
        prop_assert!(matches!(Frame::decode(&bytes), Err(MinosError::Codec(_))));
    }

    #[test]
    fn mutated_priority_bytes_are_rejected(
        conn in 0u64..1 << 32,
        rid in 0u64..1 << 32,
        priority in 3u8..=255,
    ) {
        // Valid envelope, valid payload, recomputed CRC — only the
        // priority byte is outside the vocabulary, so the typed rejection
        // comes from the class dispatch, never from the checksum.
        let mut bytes = Frame::request(conn, rid, ServerRequest::Probe).encode();
        let at = (minos::types::varint_len(conn) + minos::types::varint_len(rid)) as usize;
        bytes[at] = priority;
        let body = bytes.len() - 4;
        let crc = crc32(&bytes[..body]);
        bytes.truncate(body);
        bytes.extend_from_slice(&crc.to_le_bytes());
        prop_assert!(matches!(Frame::decode(&bytes), Err(MinosError::Codec(_))));
    }

    #[test]
    fn truncated_overload_messages_fail_typed(
        epoch in any::<u64>(),
        micros in any::<u64>(),
        cut in any::<usize>(),
    ) {
        // The epoch handshake and busy rejection: whole messages round-trip
        // exactly; every strict prefix is a typed error, never an alias.
        let hello = ServerRequest::Hello { epoch };
        let bytes = hello.encode();
        prop_assert_eq!(ServerRequest::decode(&bytes).unwrap(), hello);
        prop_assert!(ServerRequest::decode(&bytes[..cut % bytes.len()]).is_err());

        let welcome = ServerResponse::Welcome { epoch };
        let bytes = welcome.encode();
        prop_assert_eq!(ServerResponse::decode(&bytes).unwrap(), welcome);
        prop_assert!(ServerResponse::decode(&bytes[..cut % bytes.len()]).is_err());

        let busy = ServerResponse::Busy { retry_after: SimDuration::from_micros(micros) };
        let bytes = busy.encode();
        prop_assert_eq!(ServerResponse::decode(&bytes).unwrap(), busy);
        prop_assert!(ServerResponse::decode(&bytes[..cut % bytes.len()]).is_err());
    }

    #[test]
    fn mutated_protocol_tags_are_rejected(tag in 10u8..=255, id in any::<u64>()) {
        // Overwrite the leading tag byte of valid protocol bytes with a
        // tag outside the vocabulary of either direction.
        let mut request = ServerRequest::FetchObject { id: ObjectId::new(id) }.encode();
        if let Some(lead) = request.get_mut(0) {
            *lead = tag;
        }
        prop_assert!(matches!(ServerRequest::decode(&request), Err(MinosError::Codec(_))));
        let mut response = ServerResponse::Hits(vec![ObjectId::new(id)]).encode();
        if let Some(lead) = response.get_mut(0) {
            *lead = tag;
        }
        prop_assert!(matches!(ServerResponse::decode(&response), Err(MinosError::Codec(_))));
    }

    #[test]
    fn inflated_counts_are_bounded_before_allocation(
        tag in proptest::sample::select(vec![5u8, 7u8]),
        count in (1u64 << 32)..=u64::MAX,
    ) {
        // A claimed element count of billions with a few bytes of input
        // must be rejected by the count bound, not by an allocation or a
        // long loop.
        let mut e = Encoder::new();
        e.put_u8(tag);
        e.put_varint(count);
        let bytes = e.finish();
        prop_assert!(ServerRequest::decode(&bytes).is_err());
        prop_assert!(ServerResponse::decode(&bytes).is_err());
    }

    #[test]
    fn borrowed_spans_match_owned_and_reject_truncation(
        blob in proptest::collection::vec(any::<u8>(), 0..128),
        cut in any::<usize>(),
    ) {
        // The zero-copy decode path: `get_bytes_ref` borrows the same
        // block `get_bytes` copies, and every strict prefix of the
        // encoding fails the borrowed path with a typed error — whether
        // the cut lands in the length varint or inside the payload.
        let mut e = Encoder::new();
        e.put_bytes(&blob);
        let bytes = e.finish();
        let mut owned = Decoder::new(&bytes);
        let mut borrowed = Decoder::new(&bytes);
        prop_assert_eq!(owned.get_bytes().unwrap(), borrowed.get_bytes_ref().unwrap());
        let cut = cut % bytes.len();
        let mut short = Decoder::new(bytes.get(..cut).unwrap_or_default());
        prop_assert!(matches!(short.get_bytes_ref(), Err(MinosError::Codec(_))));
    }

    #[test]
    fn inflated_span_lengths_are_rejected_before_the_checksum(
        conn in 0u64..1 << 32,
        rid in 0u64..1 << 32,
        inflate in 1u64..1 << 20,
    ) {
        // A frame whose interior payload-length varint claims more bytes
        // than the buffer holds, with the CRC recomputed so the trailer is
        // *valid*: the rejection must come from the borrowed span's bounds
        // check (a `Codec` error), never from an over-read or the checksum.
        let payload_bytes = {
            let mut p = Encoder::new();
            p.put_u8(1);
            p.put_bytes(&ServerRequest::Probe.encode());
            p.finish()
        };
        let mut e = Encoder::new();
        e.put_varint(conn);
        e.put_varint(rid);
        e.put_u8(Priority::Demand.wire_tag());
        e.put_varint(payload_bytes.len() as u64 + inflate); // lies about the span
        let mut bytes = e.finish();
        bytes.extend_from_slice(&payload_bytes);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        prop_assert!(matches!(Frame::decode(&bytes), Err(MinosError::Codec(_))));
    }

    #[test]
    fn arbitrary_bytes_never_panic_any_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = Frame::decode(&bytes);
        let _ = ServerRequest::decode(&bytes);
        let _ = ServerResponse::decode(&bytes);
    }

    #[test]
    fn fault_mangled_frames_never_decode_to_a_different_frame(
        choice in 0u8..6,
        blob in proptest::collection::vec(any::<u8>(), 0..64),
        seed in any::<u64>(),
    ) {
        // Whatever a chaotic link does to the bytes, a successful decode
        // is always the frame that was sent (a duplicated delivery), never
        // a silently different one.
        let frame = sample_frame(choice, 3, 11, blob);
        let plan = FaultPlan::chaos(seed, 0.8);
        let mut rng = FaultRng::new(seed);
        let mut stats = FaultStats::default();
        let sent = frame.encode();
        let deliveries: Vec<Delivery> = plan.apply(&mut rng, &sent, &mut stats);
        for delivery in deliveries {
            if let Ok(decoded) = Frame::decode(&delivery.bytes) {
                prop_assert_eq!(&decoded, &frame);
            }
        }
    }
}
