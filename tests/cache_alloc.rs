//! Allocation regression test for the block cache hit path.
//!
//! A cache hit used to clone the whole resident block before slicing out
//! the requested span; this pins the fix by counting heap bytes allocated
//! during a warm read. Lives in the facade tests because the storage crate
//! itself forbids the `unsafe` a `#[global_allocator]` needs.

use minos::storage::{BlockCache, BlockDevice, OpticalDisk};
use minos::types::ByteSpan;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts this thread's heap allocations, so the assertion is immune to
/// other tests running on parallel threads.
struct CountingAllocator;

thread_local! {
    static ALLOCATED: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATED.try_with(|a| a.set(a.get() + layout.size() as u64));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn cache_hits_do_not_clone_the_block() {
    let mut disk = OpticalDisk::with_capacity(1 << 20);
    let data: Vec<u8> = (0..40_960u32).map(|i| (i % 251) as u8).collect();
    disk.append(&data).unwrap();
    let mut cache = BlockCache::new(disk, 4_096, 4);

    let span = ByteSpan::at(100, 64); // one 4 KB block, 64-byte slice
    cache.read_at(span).unwrap(); // cold: block enters the cache

    let before = ALLOCATED.with(|a| a.get());
    let (bytes, _) = cache.read_at(span).unwrap();
    let allocated = ALLOCATED.with(|a| a.get()) - before;

    assert_eq!(bytes.len(), 64);
    assert_eq!(cache.hits(), 1);
    // The warm read may allocate the 64-byte output vector (plus a few
    // bytes of LRU bookkeeping) but must not re-clone the 4 KB block.
    assert!(allocated < 1_024, "cache hit allocated {allocated} bytes");
}
