//! Experiment E1 — the symmetry thesis.
//!
//! "The information system should provide symmetric capabilities for
//! entering, presenting, and browsing through voice or text." (§1)
//!
//! One source text is entered twice: as a visual-mode text object and as an
//! audio-mode dictation of the same words. The *same* command scripts must
//! be accepted by both, and position-equivalent commands must land both
//! sessions on the same word of the underlying content.

use minos::object::{DrivingMode, MultimediaObject, VoiceSegment};
use minos::presentation::{BrowseCommand, BrowseEvent, BrowsingSession};
use minos::text::{LogicalLevel, PaginateConfig};
use minos::types::{ObjectId, SimDuration};
use minos::voice::recognize::{Recognizer, RecognizerConfig};
use minos::voice::synth::SpeakerProfile;
use std::collections::HashMap;

const SOURCE: &str = "\
the presentation manager treats text and voice alike. both media carry the same words.\n\
logical units let the reader or the listener jump by paragraph. pattern search lands on spoken or written words.\n\
the final paragraph closes the argument. symmetric browsing needs no second vocabulary.";

fn twin_objects() -> (MultimediaObject, MultimediaObject) {
    // Visual twin: same paragraphs as markup.
    let markup: String = SOURCE.split('\n').map(|p| format!(".pp\n{p}\n")).collect();
    let mut visual = MultimediaObject::new(ObjectId::new(1), "text-twin", DrivingMode::Visual);
    visual.text_segments.push(minos::text::parse_markup(&markup).unwrap());
    visual.archive().unwrap();

    // Audio twin: the same words dictated, fully marked and recognized.
    let recognizer = Recognizer::new(
        ["pattern", "paragraph", "symmetric", "vocabulary"],
        RecognizerConfig { hit_rate: 1.0, false_alarm_rate: 0.0, seed: 1 },
    );
    let mut audio = MultimediaObject::new(ObjectId::new(2), "voice-twin", DrivingMode::Audio);
    audio.voice_segments.push(
        VoiceSegment::dictate(SOURCE, &SpeakerProfile::CLEAR, 1)
            .with_marks(&[LogicalLevel::Paragraph, LogicalLevel::Sentence, LogicalLevel::Word])
            .with_recognition(&recognizer),
    );
    audio.archive().unwrap();
    (visual, audio)
}

type Session = BrowsingSession<HashMap<ObjectId, MultimediaObject>>;

fn open_both() -> (Session, Session) {
    let (visual, audio) = twin_objects();
    let mut store = HashMap::new();
    store.insert(visual.id, visual);
    store.insert(audio.id, audio);
    let (vs, _) = BrowsingSession::open(
        store.clone(),
        ObjectId::new(1),
        PaginateConfig::default(),
        SimDuration::from_secs(5),
    )
    .unwrap();
    let (as_, _) = BrowsingSession::open(
        store,
        ObjectId::new(2),
        PaginateConfig::default(),
        SimDuration::from_secs(5),
    )
    .unwrap();
    (vs, as_)
}

/// The word index the visual session currently points at (the word whose
/// span contains or follows the exact engine position).
fn visual_word(session: &Session) -> usize {
    let doc = &session.object().text_segments[0];
    let pos = session.visual_position().unwrap();
    doc.tree().words.partition_point(|w| w.start <= pos).saturating_sub(1)
}

/// The word index the audio session currently points at.
fn audio_word(session: &Session) -> usize {
    let seg = &session.object().voice_segments[0];
    let t = session.audio().unwrap().position();
    seg.transcript.words.partition_point(|w| w.span.start <= t).saturating_sub(1)
}

#[test]
fn both_modes_accept_the_same_command_script() {
    let (mut visual, mut audio) = open_both();
    let script = [
        BrowseCommand::NextPage,
        BrowseCommand::PreviousPage,
        BrowseCommand::AdvancePages(1),
        BrowseCommand::NextUnit(LogicalLevel::Paragraph),
        BrowseCommand::PreviousUnit(LogicalLevel::Paragraph),
        BrowseCommand::FindPattern("symmetric".into()),
    ];
    for cmd in &script {
        visual.apply(cmd.clone()).unwrap_or_else(|e| panic!("visual rejected {cmd:?}: {e}"));
        audio.apply(cmd.clone()).unwrap_or_else(|e| panic!("audio rejected {cmd:?}: {e}"));
    }
}

#[test]
fn paragraph_navigation_lands_on_the_same_words() {
    let (mut visual, mut audio) = open_both();
    // Jump to paragraph 2 in both media.
    visual.apply(BrowseCommand::NextUnit(LogicalLevel::Paragraph)).unwrap();
    audio.apply(BrowseCommand::NextUnit(LogicalLevel::Paragraph)).unwrap();

    let vdoc = &visual.object().text_segments[0];
    let vpos = visual.visual_position().unwrap();
    let v_para = vdoc.tree().paragraphs.partition_point(|p| p.start <= vpos);
    let a_t = audio.audio().unwrap().position();
    let a_para =
        audio.object().voice_segments[0].transcript.paragraph_starts.partition_point(|&s| s <= a_t);
    assert_eq!(v_para, a_para, "paragraph landing differs between media");
}

#[test]
fn pattern_search_finds_the_same_word_occurrence() {
    let (mut visual, mut audio) = open_both();
    let v_events = visual.apply(BrowseCommand::FindPattern("symmetric".into())).unwrap();
    let a_events = audio.apply(BrowseCommand::FindPattern("symmetric".into())).unwrap();
    assert!(
        v_events.iter().any(|e| matches!(e, BrowseEvent::PatternFound { .. })),
        "visual search failed"
    );
    assert!(
        a_events.iter().any(|e| matches!(e, BrowseEvent::PatternFound { .. })),
        "audio search failed"
    );
    // Both landed on the same word of the source: "symmetric" occurs once.
    let source_words: Vec<&str> = SOURCE.split_whitespace().collect();
    let target = source_words.iter().position(|w| w.starts_with("symmetric")).unwrap();
    let a_word = audio_word(&audio);
    assert_eq!(a_word, target, "audio landed on word {a_word}, expected {target}");
    let v_word = visual_word(&visual);
    assert_eq!(v_word, target, "visual landed on word {v_word}, expected {target}");
    // The visual hit is on the page containing that word.
    let v_page_span = visual.visual_view().unwrap().page.span.unwrap();
    let vdoc = &visual.object().text_segments[0];
    let word_span = vdoc.tree().words[target];
    assert!(
        v_page_span.overlaps(&word_span),
        "visual page {v_page_span:?} does not show word {word_span:?}"
    );
}

#[test]
fn menus_share_the_symmetric_core() {
    let (visual, audio) = open_both();
    let v: Vec<String> = visual.menu().items().iter().map(|i| i.label.clone()).collect();
    let a: Vec<String> = audio.menu().items().iter().map(|i| i.label.clone()).collect();
    for shared in [
        "next page",
        "previous page",
        "advance pages",
        "goto page",
        "find pattern",
        "next paragraph",
        "previous paragraph",
    ] {
        assert!(v.contains(&shared.to_string()), "visual menu lacks {shared}");
        assert!(a.contains(&shared.to_string()), "audio menu lacks {shared}");
    }
    // Voice-specific options only on the audio object.
    for voice_only in ["interrupt", "resume", "rewind short pauses"] {
        assert!(!v.contains(&voice_only.to_string()));
        assert!(a.contains(&voice_only.to_string()));
    }
}

#[test]
fn word_positions_stay_aligned_through_mixed_browsing() {
    let (mut visual, mut audio) = open_both();
    // A realistic interleaving of commands applied identically.
    let script = [
        BrowseCommand::NextUnit(LogicalLevel::Paragraph),
        BrowseCommand::NextUnit(LogicalLevel::Sentence),
        BrowseCommand::NextUnit(LogicalLevel::Sentence),
        BrowseCommand::PreviousUnit(LogicalLevel::Paragraph),
        BrowseCommand::NextUnit(LogicalLevel::Word),
    ];
    for cmd in &script {
        visual.apply(cmd.clone()).unwrap();
        audio.apply(cmd.clone()).unwrap();
    }
    // Both sessions point into the same sentence of the shared source.
    let vdoc = &visual.object().text_segments[0];
    let v_word = visual_word(&visual);
    let a_word = audio_word(&audio);
    // Positions may differ by page rounding on the visual side; they must
    // lie within the same sentence.
    let sentence_of = |word: usize| {
        let span = vdoc.tree().words[word.min(vdoc.tree().words.len() - 1)];
        vdoc.tree().sentences.iter().position(|s| s.contains_span(&span))
    };
    assert_eq!(sentence_of(v_word), sentence_of(a_word));
}
