//! Deterministic-rendering tests: the same object composes to the same
//! framebuffer, byte for byte, run after run — the property every golden
//! figure reproduction depends on.

use minos::corpus;
use minos::presentation::{compose_screen, BrowseCommand, BrowsingSession};
use minos::screen::Screen;
use minos::text::{LogicalLevel, PaginateConfig};
use minos::types::{ObjectId, SimDuration};
use std::collections::HashMap;

type Store = HashMap<ObjectId, minos::object::MultimediaObject>;

fn open(object: minos::object::MultimediaObject, config: PaginateConfig) -> BrowsingSession<Store> {
    let id = object.id;
    let mut store = Store::new();
    store.insert(id, object);
    BrowsingSession::open(store, id, config, SimDuration::from_secs(5)).unwrap().0
}

fn config_for(screen: &Screen) -> PaginateConfig {
    PaginateConfig { page_size: screen.display_region().size, margin: 24, block_gap: 10 }
}

#[test]
fn composition_is_deterministic() {
    let compose_once = || {
        let mut screen = Screen::new();
        let config = config_for(&screen);
        let mut session = open(corpus::medical_report(ObjectId::new(1), 42), config);
        session.apply(BrowseCommand::NextUnit(LogicalLevel::Chapter)).unwrap();
        compose_screen(&session, &mut screen, config).unwrap();
        screen.framebuffer().clone()
    };
    let a = compose_once();
    let b = compose_once();
    assert_eq!(a, b, "two identical sessions must render identical framebuffers");
    assert!(!a.is_blank());
}

#[test]
fn different_pages_render_differently() {
    let mut screen = Screen::new();
    let config = config_for(&screen);
    let mut session = open(corpus::office_document(ObjectId::new(1), 7, 8), config);
    compose_screen(&session, &mut screen, config).unwrap();
    let page1 = screen.framebuffer().clone();
    session.apply(BrowseCommand::NextPage).unwrap();
    compose_screen(&session, &mut screen, config).unwrap();
    let page2 = screen.framebuffer().clone();
    assert_ne!(page1, page2);
    // The menu column is identical across pages of the same object.
    let menu_region = screen.menu_region();
    assert_eq!(page1.extract(menu_region).unwrap(), page2.extract(menu_region).unwrap());
}

#[test]
fn ascii_screen_dump_is_stable() {
    let mut screen = Screen::new();
    let config = config_for(&screen);
    let session = open(corpus::medical_report(ObjectId::new(1), 42), config);
    compose_screen(&session, &mut screen, config).unwrap();
    let rows = screen.to_ascii(96);
    assert_eq!(rows.len(), screen.to_ascii(96).len());
    // Structural invariants rather than a brittle pixel snapshot: text ink
    // in the upper display area, menu ink at the right edge.
    let top_ink: usize = rows[..10].iter().map(|r| r.chars().filter(|&c| c == '#').count()).sum();
    assert!(top_ink > 10, "page text missing from the dump");
    let menu_cols: usize =
        rows.iter().map(|r| r.chars().rev().take(18).filter(|&c| c == '#').count()).sum();
    assert!(menu_cols > 20, "menu column missing from the dump");
}
