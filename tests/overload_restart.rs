//! Integration pins for experiment E14: overload robustness and session
//! resume across server restarts.
//!
//! The acceptance bar from the admission-control work: under a 4x offered
//! load the server sheds prefetch-class traffic only — demand and audio
//! requests are never turned away while a prefetch remains sheddable, the
//! queue stays under its cap, and the audio tail latency beats the
//! unbounded baseline's collapse. And a browsing session checkpointed
//! mid-browse resumes byte-identically after the server restarts: the
//! archive is durable, the queues are not, and the user cannot tell.

use std::cell::RefCell;
use std::rc::Rc;

use minos::corpus::objects::archived_form;
use minos::corpus::{audio_xray_report, medical_report, subway_map_object};
use minos::net::{Link, ServerRequest, ServerResponse};
use minos::object::MultimediaObject;
use minos::presentation::{
    simulate_overload_workload, BrowseCommand, BrowsingSession, Connection, ObjectStore,
    SessionCheckpoint,
};
use minos::server::{ObjectServer, ServiceConfig};
use minos::text::PaginateConfig;
use minos::types::{ByteSpan, MinosError, ObjectId, Result, SimDuration};

const SESSIONS: usize = 48;
const PAGES: usize = 8;
const PAGE_LEN: u64 = 8_192;

#[test]
fn admission_control_bounds_the_queue_and_the_audio_tail() {
    let admitted =
        simulate_overload_workload(SESSIONS, PAGES, PAGE_LEN, ServiceConfig::default()).unwrap();
    let unbounded =
        simulate_overload_workload(SESSIONS, PAGES, PAGE_LEN, ServiceConfig::unbounded()).unwrap();

    // Full goodput either way: shedding costs speculation, never a page.
    assert_eq!(admitted.pages, (SESSIONS * PAGES) as u64);
    assert_eq!(unbounded.pages, (SESSIONS * PAGES) as u64);
    assert_eq!(admitted.audio_pages, PAGES as u64);

    // The shed policy held: prefetches were shed, demand and audio were
    // never rejected outright while a prefetch victim remained.
    assert!(admitted.shed > 0, "{admitted:?}");
    assert_eq!(admitted.busy_rejections, 0, "{admitted:?}");
    assert_eq!(unbounded.shed, 0);

    // The queue really is bounded by the configured cap — and without
    // admission control it is not.
    assert!(admitted.queue_high_water <= ServiceConfig::DEFAULT_GLOBAL_CAP as u64, "{admitted:?}");
    assert!(unbounded.queue_high_water > ServiceConfig::DEFAULT_GLOBAL_CAP as u64, "{unbounded:?}");

    // The payoff: the audio-class tail stays below the unbounded
    // collapse, and demand goodput is higher because the device never
    // burns time on speculation the user will not wait for.
    assert!(
        admitted.audio_p99 < unbounded.audio_p99,
        "audio p99 {:?} (admitted) vs {:?} (unbounded)",
        admitted.audio_p99,
        unbounded.audio_p99
    );
    assert!(admitted.goodput_pages_per_sec() > unbounded.goodput_pages_per_sec());
}

#[test]
fn in_flight_window_replays_byte_identically_across_a_restart() {
    let build = || {
        let mut server = ObjectServer::new();
        let data: Vec<u8> = (0..PAGE_LEN * 4).map(|i| (i % 251) as u8).collect();
        let (record, _) = server.archiver_mut().store(ObjectId::new(1), &data).unwrap();
        (server, record.span.start)
    };
    let spans = |base: u64| -> Vec<ByteSpan> {
        (0..4u64).map(|i| ByteSpan::at(base + i * PAGE_LEN, PAGE_LEN)).collect()
    };

    let (server, base) = build();
    let mut baseline = Connection::new(server, Link::ethernet());
    let expect: Vec<ServerResponse> = spans(base)
        .into_iter()
        .map(|span| {
            let t = baseline.submit(ServerRequest::FetchSpan { span });
            baseline.wait(t).unwrap().0
        })
        .collect();

    let (server, base) = build();
    let mut conn = Connection::new(server, Link::ethernet());
    let tickets: Vec<_> = spans(base)
        .into_iter()
        .map(|span| conn.submit(ServerRequest::FetchSpan { span }))
        .collect();
    // The server dies and comes back with the whole window in flight.
    conn.endpoint_mut().restart();
    assert_eq!(conn.endpoint().epoch(), 1);
    let got: Vec<ServerResponse> = tickets.into_iter().map(|t| conn.wait(t).unwrap().0).collect();
    assert_eq!(got, expect, "the replayed window is byte-identical");
    let stats = conn.transport_stats();
    assert_eq!(stats.epoch_resyncs, 1, "one handshake per restart: {stats:?}");
    assert_eq!(stats.replays, 4, "every in-flight request replayed once: {stats:?}");
}

/// An [`ObjectStore`] over the server's durable archive — the store a
/// workstation would reach over the wire, reduced to its durability
/// semantics: a restart clears the server's queues, never its residents.
struct ArchiveStore {
    server: Rc<RefCell<ObjectServer>>,
}

impl ObjectStore for ArchiveStore {
    fn fetch(&mut self, id: ObjectId) -> Result<MultimediaObject> {
        self.server
            .borrow()
            .resident_object(id)
            .cloned()
            .ok_or_else(|| MinosError::UnknownObject(id.to_string()))
    }
}

fn published_server() -> Rc<RefCell<ObjectServer>> {
    let mut server = ObjectServer::new();
    let report = medical_report(ObjectId::new(1), 42);
    server.publish(report.clone(), &archived_form(&report)).unwrap();
    let dictation = audio_xray_report(ObjectId::new(2), 7);
    server.publish(dictation.clone(), &archived_form(&dictation)).unwrap();
    let (parent, overlays) =
        subway_map_object(ObjectId::new(3), ObjectId::new(4), ObjectId::new(5), 11);
    server.publish(parent.clone(), &archived_form(&parent)).unwrap();
    for o in overlays {
        let a = archived_form(&o);
        server.publish(o, &a).unwrap();
    }
    Rc::new(RefCell::new(server))
}

#[test]
fn checkpointed_session_resumes_byte_identically_after_restart() {
    let server = published_server();
    let store = || ArchiveStore { server: Rc::clone(&server) };
    let config = PaginateConfig::default();
    let page = SimDuration::from_secs(5);

    // Browse mid-way into a nested relevant object.
    let (mut session, _) = BrowsingSession::open(store(), ObjectId::new(3), config, page).unwrap();
    session.apply(BrowseCommand::SelectRelevant(1)).unwrap();
    session.apply(BrowseCommand::NextPage).unwrap();
    let record = session.checkpoint().encode();

    // The server restarts: its epoch bumps and its volatile queues drop,
    // but the archive — and with it the checkpoint's objects — survives.
    server.borrow_mut().restart();
    assert_eq!(server.borrow().epoch(), 1);
    assert_eq!(server.borrow().pending_frames(), 0);

    let decoded = SessionCheckpoint::decode(&record).unwrap();
    let mut resumed = BrowsingSession::resume(store(), &decoded, config, page).unwrap();
    assert_eq!(resumed.depth(), session.depth());
    assert_eq!(resumed.object().id, session.object().id);
    assert_eq!(resumed.visual_position(), session.visual_position());
    assert_eq!(resumed.menu(), session.menu());

    // No duplicated side effects: the resumed session replays nothing —
    // from here on both sessions emit identical event streams.
    for cmd in [
        BrowseCommand::NextPage,
        BrowseCommand::PreviousPage,
        BrowseCommand::ReturnFromRelevant,
        BrowseCommand::SelectRelevant(0),
    ] {
        let expect = session.apply(cmd.clone()).unwrap();
        let got = resumed.apply(cmd).unwrap();
        assert_eq!(got, expect, "post-resume streams diverged");
    }
}

#[test]
fn audio_checkpoint_survives_a_restart_mid_playback() {
    let server = published_server();
    let store = || ArchiveStore { server: Rc::clone(&server) };
    let config = PaginateConfig::default();
    let page = SimDuration::from_secs(5);

    let (mut session, _) = BrowsingSession::open(store(), ObjectId::new(2), config, page).unwrap();
    session.tick(SimDuration::from_secs(7));
    let record = session.checkpoint().encode();

    server.borrow_mut().restart();

    let decoded = SessionCheckpoint::decode(&record).unwrap();
    let mut resumed = BrowsingSession::resume(store(), &decoded, config, page).unwrap();
    let original = session.audio().unwrap();
    let restored = resumed.audio().unwrap();
    assert_eq!(restored.position(), original.position(), "voice position restored");
    assert_eq!(restored.state(), original.state(), "playback keeps playing");
    // Playback continues in lockstep — the listener never notices.
    let expect = session.tick(SimDuration::from_secs(4));
    assert_eq!(resumed.tick(SimDuration::from_secs(4)), expect);
}
