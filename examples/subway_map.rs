//! Figures 7–8: relevant objects over the subway map, plus label browsing
//! and remote views.
//!
//! ```sh
//! cargo run --example subway_map
//! ```

use minos::corpus;
use minos::corpus::objects::archived_form;
use minos::image::view::MoveDirection;
use minos::image::{BlitMode, LabelIndex};
use minos::net::Link;
use minos::presentation::remote::RemoteView;
use minos::presentation::{BrowseCommand, BrowsingSession, Workstation};
use minos::server::ObjectServer;
use minos::text::PaginateConfig;
use minos::types::{ObjectId, Point, SimDuration, Size};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (parent, overlays) =
        corpus::subway_map_object(ObjectId::new(1), ObjectId::new(2), ObjectId::new(3), 11);

    // -- Relevant-object browsing (Figures 7-8) --------------------------
    let mut store = HashMap::new();
    for o in overlays.iter().chain([&parent]) {
        store.insert(o.id, o.clone());
    }
    let (mut session, _) = BrowsingSession::open(
        store,
        ObjectId::new(1),
        PaginateConfig::default(),
        SimDuration::from_secs(20),
    )?;
    println!("relevant object indicators on the map:");
    for (i, link) in session.visible_relevant() {
        println!("  [{i}] {}", link.label);
    }
    session.apply(BrowseCommand::SelectRelevant(0))?;
    println!("selected 'hospitals' -> now browsing {:?}", session.object().name);
    // The overlay is a transparency superimposed on the map.
    let map = parent.images[0].render();
    let overlay = session.object().images[0].render();
    let mut superimposed = map.clone();
    superimposed.blit(&overlay, Point::ORIGIN, BlitMode::Or);
    println!(
        "map ink {} + hospital markers {} -> superimposed {}",
        map.count_ink(),
        overlay.count_ink(),
        superimposed.count_ink()
    );
    session.apply(BrowseCommand::ReturnFromRelevant)?;
    println!("returned to {:?}\n", session.object().name);

    // -- Label browsing (§2's road-map facility) -------------------------
    let graphics = parent.images[0].as_graphics().unwrap();
    let index = LabelIndex::new(graphics);
    let hits = index.highlight("hospital");
    println!("stations whose label matches 'hospital': {}", hits.len());
    if let Some((_, bbox)) = hits.first() {
        if let Some(activation) = index.activate(bbox.center()) {
            println!("mouse-select on the first hit -> {activation:?}");
        }
    }

    // -- Remote views (§2: only the view's data is retrieved) ------------
    let mut server = ObjectServer::new();
    server.publish(parent.clone(), &archived_form(&parent))?;
    let mut ws = Workstation::new(server, Link::ethernet());
    let mut rv =
        RemoteView::open(ObjectId::new(1), 0, parent.images[0].size(), Size::new(220, 160), 48)?;
    rv.fetch(&mut ws)?;
    rv.view_mut().step(MoveDirection::Right);
    rv.fetch(&mut ws)?;
    rv.view_mut().step(MoveDirection::Down);
    rv.fetch(&mut ws)?;
    let full_image_bytes = parent.images[0].render().byte_size();
    println!(
        "\n3 view fetches moved {} bytes over the link; the whole map is {} bytes",
        ws.bytes_transferred(),
        full_image_bytes
    );
    Ok(())
}
