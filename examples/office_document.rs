//! Figures 1–2: visual pages with text, graphics and bitmaps, menu options
//! at the right hand side of the screen.
//!
//! ```sh
//! cargo run --example office_document
//! ```

use minos::corpus;
use minos::presentation::{BrowseCommand, BrowsingSession};
use minos::screen::{render_page, Screen};
use minos::text::PaginateConfig;
use minos::types::{ObjectId, SimDuration};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let object = corpus::office_document(ObjectId::new(1), 7, 8);
    let images: Vec<minos::image::Bitmap> = object.images.iter().map(|i| i.render()).collect();

    let mut screen = Screen::new();
    let config =
        PaginateConfig { page_size: screen.display_region().size, margin: 24, block_gap: 10 };
    let mut store = HashMap::new();
    store.insert(object.id, object);
    let (mut session, _) =
        BrowsingSession::open(store, ObjectId::new(1), config, SimDuration::from_secs(20))?;

    // Compose the workstation screen: page in the display region, menu in
    // the right-hand column (Figures 1-2's layout).
    let view = session.visual_view().unwrap();
    let page_bitmap = render_page(&view.page, config, |idx| images.get(idx).cloned());
    screen.show(&page_bitmap, screen.display_region());
    let menu = session.menu();
    let menu_bitmap = menu.render(screen.menu_region());
    screen.show(&menu_bitmap, screen.menu_region());

    println!(
        "page {}/{} of {:?}; menu offers {} options",
        view.page_index + 1,
        view.page_count,
        session.object().name,
        menu.len()
    );
    println!("\nworkstation screen (ASCII rendering, menu column at right):\n");
    for row in screen.to_ascii(110) {
        println!("{row}");
    }

    // Page through the document the way a reader would.
    println!("\npage texts while browsing:");
    for _ in 0..3 {
        session.apply(BrowseCommand::NextPage)?;
        let v = session.visual_view().unwrap();
        let first_line = v.page.text_lines().into_iter().next().unwrap_or_default();
        println!("  page {:>2}: {first_line}", v.page_index + 1);
    }
    Ok(())
}
