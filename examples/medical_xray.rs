//! Figures 3–6: the medical information system scenario.
//!
//! * Figures 3–4 — a visual logical message: the x-ray stays pinned at the
//!   top while the doctor pages through the related findings text; the
//!   image is stored once in the object.
//! * Figures 5–6 — a transparency set: annotation sheets (a circle around
//!   the shadow plus a note) superimpose on the x-ray page by page.
//!
//! ```sh
//! cargo run --example medical_xray
//! ```

use minos::corpus;
use minos::presentation::{BrowseCommand, BrowseEvent, BrowsingSession, TransparencyViewer};
use minos::text::PaginateConfig;
use minos::types::{ObjectId, SimDuration};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let object = corpus::medical_report(ObjectId::new(1), 42);
    let transparencies = TransparencyViewer::new(&object, 0)?;
    let mut store = HashMap::new();
    store.insert(object.id, object);
    let config =
        PaginateConfig { page_size: minos::types::Size::new(560, 420), margin: 16, block_gap: 8 };
    let (mut session, _) =
        BrowsingSession::open(store, ObjectId::new(1), config, SimDuration::from_secs(20))?;

    println!("== Figures 3-4: pinned x-ray over the related text ==\n");
    // Walk into the findings chapter.
    let events = session.apply(BrowseCommand::NextUnit(minos::text::LogicalLevel::Chapter))?;
    let pinned = events.iter().any(|e| matches!(e, BrowseEvent::VisualMessagePinned(_)));
    println!("entered findings chapter; x-ray pinned: {pinned}");
    let mut page_turns = 0;
    loop {
        let view = session.visual_view().unwrap();
        match view.pinned_message {
            Some(_) => println!(
                "  [x-ray on top, {}px reserved] related-text page {}/{}: {}",
                view.reserved_top,
                view.page_index + 1,
                view.page_count,
                view.page.text_lines().first().cloned().unwrap_or_default()
            ),
            None => {
                println!("  [x-ray removed] back on ordinary page {}", view.page_index + 1);
                break;
            }
        }
        session.apply(BrowseCommand::NextPage)?;
        page_turns += 1;
        assert!(page_turns < 50, "runaway paging");
    }
    println!("({page_turns} page turns through the related text)\n");

    println!("== Figures 5-6: transparencies over the x-ray ==\n");
    let mut viewer = transparencies;
    println!("base x-ray ink: {}", viewer.current()?.count_ink());
    let one = viewer.next_page()?;
    println!("+ sheet 1 (circle around the shadow): ink {}", one.count_ink());
    let two = viewer.next_page()?;
    println!("+ sheet 2 (stacked annotation):        ink {}", two.count_ink());
    let user_pick = viewer.superimpose(&[1])?;
    println!("user projects only sheet 2:            ink {}", user_pick.count_ink());
    Ok(())
}
