//! The symmetric audio side: browsing a dictated audio-mode object.
//!
//! The doctor dictated the x-ray report; the x-ray appears on screen only
//! while the related section of speech plays (§3). The same page/logical/
//! pattern commands work as on text, plus the voice-specific interrupt,
//! resume and pause-rewind operations.
//!
//! ```sh
//! cargo run --example voice_dictation
//! ```

use minos::corpus;
use minos::presentation::{BrowseCommand, BrowseEvent, BrowsingSession};
use minos::text::{LogicalLevel, PaginateConfig};
use minos::types::{ObjectId, SimDuration};
use minos::voice::PauseKind;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let object = corpus::audio_xray_report(ObjectId::new(1), 7);
    let duration = object.voice_segments[0].duration();
    let words = object.voice_segments[0].transcript.words.len();
    println!("dictation: {words} words, {duration} of digitized speech");
    println!(
        "recognized utterances stored with the object: {}",
        object.voice_segments[0].utterances.len()
    );

    let mut store = HashMap::new();
    store.insert(object.id, object);
    let (mut session, _) = BrowsingSession::open(
        store,
        ObjectId::new(1),
        PaginateConfig::default(),
        SimDuration::from_secs(5),
    )?;

    println!("\nmenu (note the voice operations text objects never offer):");
    for item in session.menu().items() {
        println!("  [{}]", item.label);
    }

    // Let the speech play; watch the x-ray appear and disappear with the
    // related paragraph.
    println!("\nplaying:");
    let mut shown = false;
    for _ in 0..40 {
        for event in session.tick(SimDuration::from_millis(900)) {
            match event {
                BrowseEvent::VisualMessagePinned(_) => {
                    shown = true;
                    println!("  -> the x-ray appears (finding paragraph playing)");
                }
                BrowseEvent::VisualMessageUnpinned => {
                    println!("  -> the x-ray is removed (finding paragraph over)");
                }
                BrowseEvent::CrossedIntoPage(p) => {
                    println!("  crossed into audio page {}", p + 1);
                }
                BrowseEvent::PlaybackFinished => println!("  playback finished"),
                _ => {}
            }
        }
    }
    assert!(shown, "the x-ray never appeared");

    // The browsing-near-the-context facility: interrupt, rewind two short
    // pauses (about two words), resume.
    println!("\ninterrupt / rewind / resume:");
    session.apply(BrowseCommand::GotoPage(minos::types::PageNumber::new(2).unwrap()))?;
    session.tick(SimDuration::from_secs(3));
    session.apply(BrowseCommand::Interrupt)?;
    let at = session.audio().unwrap().position();
    println!("  interrupted at {at}");
    session.apply(BrowseCommand::RewindPauses(PauseKind::Short, 2))?;
    println!("  rewound 2 short pauses -> {}", session.audio().unwrap().position());
    session.apply(BrowseCommand::RewindPauses(PauseKind::Long, 1))?;
    println!("  rewound 1 long pause  -> {}", session.audio().unwrap().position());

    // Logical and pattern browsing, symmetric with text.
    session.apply(BrowseCommand::NextUnit(LogicalLevel::Paragraph))?;
    println!("  next paragraph        -> {}", session.audio().unwrap().position());
    let events = session.apply(BrowseCommand::FindPattern("shadow".into()))?;
    let found = events.iter().any(|e| matches!(e, BrowseEvent::PatternFound { .. }));
    println!("  spoken pattern 'shadow' found: {found}");
    Ok(())
}
