//! The full §5 architecture in one run: a populated archive, a content
//! query, the sequential miniature browsing interface, selection, and a
//! browsing session whose relevant-object fetches travel over the link.
//!
//! ```sh
//! cargo run --example archive_browser
//! ```

use minos::corpus;
use minos::corpus::objects::archived_form;
use minos::net::Link;
use minos::presentation::{BrowseCommand, BrowsingSession, MiniatureBrowser, Workstation};
use minos::server::ObjectServer;
use minos::text::PaginateConfig;
use minos::types::{ObjectId, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Populate the archive: reports, office documents, the subway bundle.
    let mut server = ObjectServer::new();
    let mut publish = |obj: minos::object::MultimediaObject| {
        let archived = archived_form(&obj);
        server.publish(obj, &archived).unwrap();
    };
    publish(corpus::medical_report(ObjectId::new(1), 42));
    publish(corpus::office_document(ObjectId::new(2), 7, 3));
    let (map, overlays) =
        corpus::subway_map_object(ObjectId::new(3), ObjectId::new(4), ObjectId::new(5), 11);
    publish(map);
    for o in overlays {
        publish(o);
    }
    publish(corpus::office_document(ObjectId::new(6), 9, 2));
    println!(
        "archive holds {} objects, {} distinct indexed words",
        server.object_count(),
        server.index().vocabulary_size()
    );

    // Query by content from the workstation.
    let mut ws = Workstation::new(server, Link::ethernet());
    let mut browser = MiniatureBrowser::query(&mut ws, &["shadow"])?;
    println!(
        "\nquery ['shadow'] -> {} qualifying objects ({} bytes over the link so far)",
        browser.len(),
        ws.bytes_transferred()
    );

    // Walk the miniature strip.
    while let Some((id, mini)) = browser.current() {
        println!(
            "  miniature of {id}: {}x{} px, {} ink",
            mini.width(),
            mini.height(),
            mini.count_ink()
        );
        if browser.select() == Some(ObjectId::new(1)) {
            break;
        }
        browser.advance();
    }

    // Select and browse: the session's object store *is* the workstation,
    // so every object fetch is charged to the link.
    let selected = browser.select().expect("a hit was selected");
    println!("\nselected {selected}; opening the presentation manager…");
    let (mut session, _) =
        BrowsingSession::open(ws, selected, PaginateConfig::default(), SimDuration::from_secs(20))?;
    println!("browsing {:?} ({:?} mode)", session.object().name, session.object().driving_mode);
    session.apply(BrowseCommand::FindPattern("shadow".into()))?;
    let view = session.visual_view().unwrap();
    println!(
        "pattern 'shadow' found on page {}/{}; first line: {}",
        view.page_index + 1,
        view.page_count,
        view.page.text_lines().first().cloned().unwrap_or_default()
    );
    Ok(())
}
