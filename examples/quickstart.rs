//! Quickstart: author a multimedia object, archive it, and browse it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use minos::object::{DrivingMode, FormatterSession, MultimediaObject};
use minos::presentation::{BrowseCommand, BrowsingSession};
use minos::text::PaginateConfig;
use minos::types::{ObjectId, SimDuration};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Author an object with the declarative formatter (§4): the
    //    synthesis file mixes markup and data references.
    let mut formatter = FormatterSession::new(ObjectId::new(1));
    formatter.set_synthesis(
        "@object quickstart\n\
         @mode visual\n\
         @attr author you\n\
         .ti A First MINOS Object\n\
         .ab\n\
         This object demonstrates authoring and browsing.\n\
         .ch Getting Started\n\
         The presentation manager browses archived multimedia objects. \
         Page, logical and *pattern* commands share one vocabulary across \
         text and voice.\n\
         .ch Going Further\n\
         See the other examples for the paper's figures: the medical x-ray, \
         the subway map, and the guided city walk.\n",
    )?;
    let file = formatter.build()?;
    println!(
        "formatted object {:?}: {} descriptor entries, {} composition bytes",
        file.descriptor.name,
        file.descriptor.entries.len(),
        file.composition.len()
    );

    // 2. Assemble the typed object and archive it (browsing requires the
    //    archived state, §2).
    let mut object = MultimediaObject::new(ObjectId::new(1), "quickstart", DrivingMode::Visual);
    object.text_segments.push(minos::text::parse_markup(
        &file
            .synthesis
            .items
            .iter()
            .filter_map(|i| match i {
                minos::object::SynthesisItem::Markup(m) => Some(m.as_str()),
                _ => None,
            })
            .collect::<Vec<_>>()
            .join("\n"),
    )?);
    object.archive()?;

    // 3. Browse it.
    let mut store = HashMap::new();
    store.insert(object.id, object);
    let (mut session, events) = BrowsingSession::open(
        store,
        ObjectId::new(1),
        PaginateConfig::default(),
        SimDuration::from_secs(20),
    )?;
    println!("opened: {events:?}");

    println!("\nmenu options:");
    for item in session.menu().items() {
        println!("  [{}]", item.label);
    }

    println!("\nfirst page:");
    for line in session.visual_view().unwrap().page.text_lines() {
        println!("  {line}");
    }

    let events = session.apply(BrowseCommand::FindPattern("pattern".into()))?;
    println!("\nfind 'pattern' -> {events:?}");
    let events = session.apply(BrowseCommand::NextUnit(minos::text::LogicalLevel::Chapter))?;
    println!("next chapter -> {events:?}");
    println!("\ncurrent page:");
    for line in session.visual_view().unwrap().page.text_lines() {
        println!("  {line}");
    }
    Ok(())
}
