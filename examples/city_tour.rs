//! Figures 9–10: process simulation — a guided walk through the city told
//! with one image, overwrites, and voice narrations that gate the page
//! turns.
//!
//! ```sh
//! cargo run --example city_tour
//! ```

use minos::corpus;
use minos::image::tour::TourState;
use minos::presentation::process::{ProcessEvent, ProcessRunner};
use minos::presentation::{TourEvent, TourRunner};
use minos::types::{ObjectId, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let object = corpus::city_walk_object(ObjectId::new(1), 3);
    let mut runner = ProcessRunner::new(&object, 0)?;
    println!(
        "city walk: {} stops, page interval {} (narrations extend the hold)",
        runner.len(),
        SimDuration::from_secs(3)
    );

    let narrations: Vec<String> =
        object.voice_segments.iter().map(|s| s.transcript.text()).collect();

    let mut clock = SimDuration::ZERO;
    let step_dt = SimDuration::from_millis(500);
    let before_ink = runner.current_page().count_ink();
    while runner.state() != minos::presentation::ProcessState::Finished {
        for event in runner.tick(step_dt) {
            match event {
                ProcessEvent::StepShown(i) => {
                    println!(
                        "t+{clock}: page {i} turned (route blanked through stop {i}), ink {}",
                        runner.current_page().count_ink()
                    );
                }
                ProcessEvent::MessagePlayed(m) => {
                    println!("          narration: \"{}\"", narrations[m]);
                }
                ProcessEvent::Finished => println!("t+{clock}: walk complete"),
            }
        }
        clock += step_dt;
        if clock > SimDuration::from_secs(600) {
            panic!("walk never finished");
        }
    }
    let after_ink = runner.current_page().count_ink();
    println!(
        "\nblank spots mark the whole route: ink {before_ink} -> {after_ink} \
         ({} pixels blanked)",
        before_ink - after_ink
    );

    // The user can interrupt, change speed, and resume.
    let mut replay = ProcessRunner::new(&object, 0)?;
    replay.tick(SimDuration::from_millis(1));
    replay.interrupt();
    println!("\ninterrupted after the first stop; the view is frozen at step {}", replay.shown());
    replay.set_interval(SimDuration::from_millis(500));
    replay.resume();
    replay.tick(SimDuration::from_secs(120));
    println!("resumed at a faster page speed; finished: {:?}", replay.state());

    // A designer tour over the harbor map, with the voice option turned on:
    // voice labels play as the window passes their sites (§2).
    println!(
        "
== bonus: a designer tour with the voice option on ==
"
    );
    let harbor = corpus::harbor_tour_object(ObjectId::new(2), 5);
    let mut tour = TourRunner::new(&harbor, 0, true)?;
    let mut t = SimDuration::ZERO;
    while tour.state() != TourState::Finished {
        for event in tour.tick(SimDuration::from_secs(1)) {
            match event {
                TourEvent::StopEntered(i) => {
                    println!("t+{t}: window glides to stop {i} ({:?})", tour.current_rect())
                }
                TourEvent::VoiceMessagePlayed(m) => println!("          narration message #{m}"),
                TourEvent::VisualMessageShown(m) => println!("          caption message #{m}"),
                TourEvent::VoiceLabelPlayed(tag) => println!("          voice label plays: {tag}"),
                TourEvent::Finished => println!("t+{t}: tour complete"),
            }
        }
        t += SimDuration::from_secs(1);
        if t > SimDuration::from_secs(300) {
            panic!("tour never finished");
        }
    }
    Ok(())
}
