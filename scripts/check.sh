#!/usr/bin/env sh
# Repo-wide static checks: lints as errors, formatting, and the test suite
# gate used by CI. Run from anywhere inside the repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> minos-xtask lint"
cargo run -q -p minos-xtask -- lint

echo "==> minos-xtask spec --check"
cargo run -q -p minos-xtask -- spec --check

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> exp_pipeline --smoke"
cargo bench -p minos-bench --bench exp_pipeline -- --smoke

echo "==> exp_faults --smoke"
cargo bench -p minos-bench --bench exp_faults -- --smoke

echo "==> exp_overload --smoke"
cargo bench -p minos-bench --bench exp_overload -- --smoke

echo "==> exp_sched --smoke"
cargo bench -p minos-bench --bench exp_sched -- --smoke

echo "==> exp_fleet --smoke"
cargo bench -p minos-bench --bench exp_fleet -- --smoke

echo "==> exp_chaos --smoke"
cargo bench -p minos-bench --bench exp_chaos -- --smoke

echo "All checks passed."
