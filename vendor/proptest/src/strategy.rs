//! Value-generation strategies: the sampling core of the stand-in.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// The full-domain strategy for `T` — see [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing any value of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                // Mix edge values in: uniform sampling alone essentially
                // never produces 0, MAX, or small values for wide types.
                match rng.next_u64() % 8 {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => (rng.next_u64() % 16) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<char> {
    type Value = char;

    fn sample(&self, rng: &mut TestRng) -> char {
        // Printable ASCII, with occasional multi-byte code points to
        // exercise UTF-8 handling.
        match rng.next_u64() % 8 {
            0 => 'é',
            1 => '雪',
            _ => (b' ' + (rng.next_u64() % 95) as u8) as char,
        }
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// One parsed element of a pattern: a character class with repetition
/// bounds.
#[derive(Clone, Debug)]
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Character pool for `.` — printable ASCII plus a few multi-byte code
/// points so codec round-trip properties see real UTF-8.
fn dot_chars() -> Vec<char> {
    let mut pool: Vec<char> = (b' '..=b'~').map(|b| b as char).collect();
    pool.extend(['é', 'ß', '雪', '→']);
    pool
}

/// Parses the regex subset the workspace's string strategies use:
/// literals, `.`, `[class]` (with ranges), and the quantifiers `{n}`,
/// `{m,n}`, `*`, `+`, `?`.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class = match chars[i] {
            '.' => {
                i += 1;
                dot_chars()
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let body = &chars[i + 1..i + close];
                i += close + 1;
                let mut set = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                        assert!(lo <= hi, "inverted class range in {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                set
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 16)
            }
            Some('+') => {
                i += 1;
                (1, 16)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed quantifier in {pattern:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        atoms.push(Atom { chars: class, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let count = atom.min + rng.index(atom.max - atom.min + 1);
            for _ in 0..count {
                out.push(atom.chars[rng.index(atom.chars.len())]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        self.as_str().sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parser_handles_the_workspace_subset() {
        let atoms = parse_pattern("[a-c ]{0,8}");
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].chars, vec!['a', 'b', 'c', ' ']);
        assert_eq!((atoms[0].min, atoms[0].max), (0, 8));

        let atoms = parse_pattern("ab?.{3}");
        assert_eq!(atoms.len(), 3);
        assert_eq!((atoms[0].min, atoms[0].max), (1, 1));
        assert_eq!((atoms[1].min, atoms[1].max), (0, 1));
        assert_eq!((atoms[2].min, atoms[2].max), (3, 3));
    }

    #[test]
    fn any_hits_edge_values() {
        let mut rng = TestRng::for_test("edges");
        let samples: Vec<u64> = (0..200).map(|_| any::<u64>().sample(&mut rng)).collect();
        assert!(samples.contains(&0));
        assert!(samples.contains(&u64::MAX));
    }

    #[test]
    fn literal_patterns_emit_themselves() {
        let mut rng = TestRng::for_test("literal");
        assert_eq!(Strategy::sample(&"abc", &mut rng), "abc");
    }
}
