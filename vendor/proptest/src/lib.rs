//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the proptest API its property tests use: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, integer range
//! strategies, a regex-subset string strategy, tuple strategies,
//! `collection::vec`, `sample::select`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, by design:
//!
//! * sampling is plain randomized testing — no shrinking. A failure panics
//!   with the usual assert message; re-running reproduces it because the
//!   RNG is seeded from the test's name.
//! * string strategies implement the regex subset the workspace actually
//!   writes (`.`, `[class]`, `{m,n}`, `{n}`, `*`, `+`, `?`, literals), not
//!   full regex.

pub mod strategy;

/// Runtime configuration for a `proptest!` block.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to execute.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The deterministic per-test generator (SplitMix64 seeded from the
    /// test name, so failures reproduce without a persistence file).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for the named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// The next uniformly distributed 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform index in `[0, bound)`.
        pub fn index(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "cannot sample an empty collection");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size` (half-open, like the upstream `SizeRange` from a range).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.start + rng.index(self.size.end - self.size.start);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies over explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy drawing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "cannot select from an empty list");
        Select { options }
    }

    /// See [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.index(self.options.len())].clone()
        }
    }
}

/// The common imports property tests expect.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property holds, failing the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two values are equal within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two values differ within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(binding in strategy, …) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            <$crate::test_runner::ProptestConfig as ::core::default::Default>::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $binding =
                    $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Doc comments and config attributes both parse.
        #[test]
        fn ranges_stay_in_bounds(
            a in 0u32..10,
            b in 1u64..=3,
            v in crate::collection::vec(any::<u8>(), 0..5),
        ) {
            prop_assert!(a < 10);
            prop_assert!((1..=3).contains(&b));
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn tuples_and_select(
            (x, y) in (0i32..4, 0i32..4),
            pick in crate::sample::select(vec![10u64, 20, 30]),
        ) {
            prop_assert!(x < 4 && y < 4);
            prop_assert!(pick % 10 == 0);
        }
    }

    #[test]
    fn string_patterns_honor_class_and_bounds() {
        let mut rng = TestRng::for_test("string_patterns");
        for _ in 0..200 {
            let s = Strategy::sample(&"[ab ]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "ab ".contains(c)), "{s:?}");
            let t = Strategy::sample(&".{0,12}", &mut rng);
            assert!(t.chars().count() <= 12);
            let u = Strategy::sample(&".*", &mut rng);
            assert!(u.chars().count() <= 16);
        }
    }

    #[test]
    fn same_test_name_reproduces_the_stream() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(
            (0..20).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..20).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn vec_lengths_cover_the_range() {
        let mut rng = TestRng::for_test("vec_lengths");
        let strat = crate::collection::vec(any::<u8>(), 2..6);
        let mut seen = [false; 6];
        for _ in 0..200 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            seen[v.len()] = true;
        }
        assert!(seen[2] && seen[3] && seen[4] && seen[5]);
    }
}
