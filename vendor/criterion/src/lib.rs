//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the Criterion API its `benches/` targets use: `Criterion`
//! configuration, benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, the `criterion_group!` / `criterion_main!`
//! macros, and `black_box`.
//!
//! Timing is a plain wall-clock loop: each benchmark warms up briefly, then
//! runs for the configured measurement window and reports the mean
//! iteration time on stdout. No statistics, plots, or comparison baselines
//! — the MINOS experiment *series* (the `[En] …` rows every bench prints
//! first) carry the reproducible numbers; Criterion timing is advisory.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a benchmark
/// body.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Throughput annotation for a benchmark group (accepted, not reported).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// A benchmark id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies command-line overrides (accepted and ignored here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let report = run_bench(self, name, &mut f);
        println!("{report}");
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput (ignored).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let report = run_bench(self.criterion, &label, &mut f);
        println!("{report}");
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Conversion into [`BenchmarkId`], so group methods accept both ids and
/// plain strings.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    deadline: Instant,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement window closes.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        loop {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, f: &mut F) -> String {
    // Warm-up pass: run the body for the warm-up window, discard timing.
    let mut warm = Bencher {
        deadline: Instant::now() + config.warm_up_time,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    // Measurement pass: the sample count scales the window like Criterion's
    // sample_size scales total work, coarsely.
    let window = config.measurement_time.max(Duration::from_millis(1))
        * (config.sample_size.max(1) as u32)
        / 10;
    let mut bencher = Bencher {
        deadline: Instant::now() + window.max(Duration::from_millis(10)),
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean_ns =
        if bencher.iters == 0 { 0 } else { bencher.elapsed.as_nanos() / bencher.iters as u128 };
    format!("bench: {label:<60} {mean_ns:>12} ns/iter ({} iters)", bencher.iters)
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("detect", "fast").label, "detect/fast");
        assert_eq!(BenchmarkId::from_parameter(64).label, "64");
    }
}
