//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the `rand 0.8` API its corpus generators and error models
//! use: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen_range,
//! gen_bool, gen}` over integer and float ranges.
//!
//! The generator is SplitMix64 — deterministic, seedable, and statistically
//! far better than the corpus needs. It is *not* the same stream as the
//! real `StdRng` (ChaCha12), so corpora generated under this stand-in are
//! internally reproducible but differ from corpora generated with upstream
//! `rand`. Every consumer in this workspace only relies on determinism for
//! a fixed seed, which this preserves.

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit word source behind [`Rng`].
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Draws one uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 in this stand-in).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let v = rng.gen_range(-8i32..8);
            assert!((-8..8).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1_200).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
