//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the tiny slice of `parking_lot` it actually uses: a
//! [`Mutex`] whose `lock()` returns a guard directly (no `LockResult`).
//! Backed by `std::sync::Mutex`; a poisoned lock panics, which matches
//! `parking_lot`'s abort-on-poison behaviour closely enough for this
//! workspace (guards never unwind while holding the lock).

use std::sync::MutexGuard as StdMutexGuard;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// An RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(());
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }
}
