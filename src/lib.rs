//! # MINOS — a reproduction of the SIGMOD 1986 multimedia presentation manager
//!
//! This facade crate re-exports the full public API of the workspace:
//! the presentation manager itself ([`presentation`]) and every substrate it
//! is built on. See `README.md` for a tour and `DESIGN.md` for the system
//! inventory.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use minos_corpus as corpus;
pub use minos_image as image;
pub use minos_net as net;
pub use minos_object as object;
pub use minos_presentation as presentation;
pub use minos_screen as screen;
pub use minos_server as server;
pub use minos_storage as storage;
pub use minos_text as text;
pub use minos_types as types;
pub use minos_voice as voice;
