//! Synthetic corpora for the MINOS reproduction.
//!
//! The paper's figures use office documents, medical x-rays, a subway map
//! and a city walk. None of that data survives, so this crate generates
//! seeded, reproducible stand-ins of controllable size:
//!
//! * [`documents`] — office/report markup text;
//! * [`speech`] — dictation scripts for the voice synthesizer;
//! * [`images`] — x-ray bitmaps, subway-map graphics, city views;
//! * [`objects`] — fully assembled multimedia objects reproducing each
//!   figure's scenario (see DESIGN.md's experiment index).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod documents;
pub mod images;
pub mod objects;
pub mod speech;

pub use objects::{
    audio_xray_report, city_walk_object, harbor_tour_object, medical_report, office_document,
    subway_map_object,
};
