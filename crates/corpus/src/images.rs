//! Synthetic images: x-rays, the subway map, the city view.

use minos_image::raster::{draw_circle, draw_line, fill_circle};
use minos_image::{Bitmap, GraphicsImage, GraphicsObject, Label, LabelContent, Shape};
use minos_types::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic chest film: a rib-cage pattern of arcs with a small round
/// "shadow" whose position is returned alongside (the finding the
/// transparencies of Figures 5–6 circle).
pub fn xray_bitmap(seed: u64, width: u32, height: u32) -> (Bitmap, Point) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0b5e);
    let mut bm = Bitmap::new(width, height);
    // Lung outline: two large ellipse-ish circles of dotted texture.
    let cx = width as i32 / 2;
    let cy = height as i32 / 2;
    for side in [-1i32, 1] {
        let lung_cx = cx + side * width as i32 / 5;
        for r in (8..height.min(width) / 3).step_by(9) {
            draw_circle(&mut bm, Point::new(lung_cx, cy), r);
        }
    }
    // Spine: vertical line.
    draw_line(&mut bm, Point::new(cx, 4), Point::new(cx, height as i32 - 5));
    // The shadow: a small filled circle in the upper left lung field.
    let shadow = Point::new(
        cx - width as i32 / 5 + rng.gen_range(-8..8),
        cy - height as i32 / 6 + rng.gen_range(-8..8),
    );
    fill_circle(&mut bm, shadow, (width / 40).max(3));
    (bm, shadow)
}

/// One station of the generated subway map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Station {
    /// Position on the map.
    pub at: Point,
    /// Station name (searchable label text).
    pub name: String,
    /// Whether a hospital is adjacent (drives the Figure 7–8 relevant
    /// transparency).
    pub hospital: bool,
    /// Whether a university site is adjacent.
    pub university: bool,
}

/// The generated subway map: the graphics image plus its stations.
pub struct SubwayMap {
    /// The map drawing with labelled station objects.
    pub image: GraphicsImage,
    /// Ground truth about the stations.
    pub stations: Vec<Station>,
}

/// Generates a subway map with `lines` lines of `stations_per` stations
/// each (Figures 7–8).
pub fn subway_map(
    seed: u64,
    width: u32,
    height: u32,
    lines: usize,
    stations_per: usize,
) -> SubwayMap {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5b);
    let mut image = GraphicsImage::new(width, height);
    let mut stations = Vec::new();
    let names = [
        "central",
        "harbor",
        "university",
        "hospital",
        "market",
        "stadium",
        "airport",
        "park",
        "museum",
        "castle",
        "bridge",
        "garden",
    ];
    for line in 0..lines.max(1) {
        // A subway line: a polyline from one edge to the other.
        let y0 = ((line + 1) * height as usize / (lines + 1)) as i32;
        let mut points = Vec::new();
        for s in 0..stations_per.max(2) {
            let x = (s * (width as usize - 40) / (stations_per - 1).max(1)) as i32 + 20;
            let y = y0 + rng.gen_range(-(height as i32) / 8..height as i32 / 8);
            points.push(Point::new(x, y));
        }
        image.push(GraphicsObject::new(Shape::Polyline(points.clone())));
        for (s, &at) in points.iter().enumerate() {
            let base = names[(line * stations_per + s) % names.len()];
            let name = format!("{base} {line}{s}");
            let hospital = base == "hospital" || rng.gen_bool(0.15);
            let university = base == "university" || rng.gen_bool(0.15);
            image.push(
                GraphicsObject::new(Shape::Circle { center: at, radius: 5, filled: s % 2 == 0 })
                    .with_label(Label {
                        content: LabelContent::Text(name.clone()),
                        anchor: at.offset(8, -8),
                        visible: true,
                    }),
            );
            stations.push(Station { at, name, hospital, university });
        }
    }
    SubwayMap { image, stations }
}

/// A transparency sheet marking the given map positions with circles —
/// how Figures 7–8 overlay hospitals/university sites on the map.
pub fn marker_transparency(width: u32, height: u32, positions: &[Point]) -> Bitmap {
    let mut bm = Bitmap::new(width, height);
    for &p in positions {
        draw_circle(&mut bm, p, 10);
        draw_circle(&mut bm, p, 11);
    }
    bm
}

/// A synthetic city view for the Figure 9–10 walk: building blocks along
/// streets; returns the bitmap and the walk's route points.
pub fn city_view(seed: u64, width: u32, height: u32, route_stops: usize) -> (Bitmap, Vec<Point>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc17);
    let mut bm = Bitmap::new(width, height);
    // Street grid.
    for gx in (0..width as i32).step_by((width / 6) as usize) {
        draw_line(&mut bm, Point::new(gx, 0), Point::new(gx, height as i32 - 1));
    }
    for gy in (0..height as i32).step_by((height / 5) as usize) {
        draw_line(&mut bm, Point::new(0, gy), Point::new(width as i32 - 1, gy));
    }
    // Buildings: filled blocks inside cells.
    for _ in 0..24 {
        let x = rng.gen_range(0..width.saturating_sub(30)) as i32;
        let y = rng.gen_range(0..height.saturating_sub(24)) as i32;
        bm.fill_rect(Rect::new(x + 3, y + 3, rng.gen_range(10..26), rng.gen_range(8..20)), true);
    }
    // The walking route: stops along a diagonal-ish path.
    let stops = (0..route_stops.max(2))
        .map(|i| {
            Point::new(
                (20 + i * (width as usize - 60) / (route_stops - 1).max(1)) as i32,
                (20 + i * (height as usize - 60) / (route_stops - 1).max(1)) as i32,
            )
        })
        .collect();
    (bm, stops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xray_is_deterministic_with_shadow_inside() {
        let (a, shadow_a) = xray_bitmap(4, 400, 300);
        let (b, shadow_b) = xray_bitmap(4, 400, 300);
        assert_eq!(a, b);
        assert_eq!(shadow_a, shadow_b);
        assert!(a.bounds().contains(shadow_a));
        assert!(a.get(shadow_a.x, shadow_a.y), "shadow must be inked");
        let (c, _) = xray_bitmap(5, 400, 300);
        assert_ne!(a, c);
    }

    #[test]
    fn subway_map_has_labelled_stations() {
        let map = subway_map(2, 600, 400, 3, 5);
        assert_eq!(map.stations.len(), 15);
        // Every station is selectable and labelled.
        for s in &map.stations {
            let hit = map.image.object_at(s.at);
            assert!(hit.is_some(), "station {} not selectable", s.name);
        }
        // Label search finds stations by name fragment.
        assert!(!map.image.objects_with_label_pattern("central").is_empty());
    }

    #[test]
    fn marker_transparency_marks_positions() {
        let t = marker_transparency(200, 200, &[Point::new(50, 50), Point::new(150, 100)]);
        assert!(t.get(60, 50)); // radius-10 ring
        assert!(t.get(160, 100));
        assert!(!t.get(100, 180));
    }

    #[test]
    fn city_view_route_is_inside() {
        let (bm, route) = city_view(9, 500, 400, 5);
        assert_eq!(route.len(), 5);
        for p in &route {
            assert!(bm.bounds().contains(*p));
        }
        assert!(bm.count_ink() > 1_000);
    }
}
