//! Dictation scripts for the voice synthesizer.

use crate::documents::WORDS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A doctor's x-ray dictation: the Figure 3–6 scenario text. Paragraph one
/// describes the film; paragraph two the finding; paragraph three the plan.
pub fn xray_dictation() -> &'static str {
    "this is the chest film of the patient taken on tuesday morning. \
     the exposure is good and the positioning is adequate.\n\
     there is a small round shadow in the upper left lung field. \
     the shadow measures about one centimeter. the margins are smooth. \
     no other abnormality is seen.\n\
     i recommend a follow up film in three months. \
     if the shadow grows a biopsy will be necessary."
}

/// A generated dictation of `paragraphs` paragraphs with
/// `sentences_per` sentences each, deterministic in `seed`.
pub fn dictation(seed: u64, paragraphs: usize, sentences_per: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut out = String::new();
    for p in 0..paragraphs.max(1) {
        if p > 0 {
            out.push('\n');
        }
        let sentences: Vec<String> = (0..sentences_per.max(1))
            .map(|_| {
                let len = rng.gen_range(5..12);
                let words: Vec<&str> =
                    (0..len).map(|_| WORDS[rng.gen_range(0..WORDS.len())]).collect();
                format!("{}.", words.join(" "))
            })
            .collect();
        out.push_str(&sentences.join(" "));
    }
    out
}

/// Short voice-label scripts for map objects.
pub fn tour_narrations() -> [&'static str; 4] {
    [
        "we start at the old city gate built in the twelfth century.",
        "this is the market square with the famous clock tower.",
        "the cathedral on your left took two hundred years to complete.",
        "finally the river promenade where the walk ends.",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictation_is_deterministic_and_sized() {
        assert_eq!(dictation(5, 3, 4), dictation(5, 3, 4));
        let d = dictation(5, 3, 4);
        assert_eq!(d.split('\n').count(), 3);
        for para in d.split('\n') {
            assert_eq!(para.matches('.').count(), 4);
        }
    }

    #[test]
    fn xray_dictation_has_three_paragraphs() {
        assert_eq!(xray_dictation().split('\n').count(), 3);
        assert!(xray_dictation().contains("shadow"));
    }

    #[test]
    fn narrations_are_nonempty() {
        for n in tour_narrations() {
            assert!(n.split_whitespace().count() > 4);
        }
    }
}
