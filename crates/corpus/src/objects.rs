//! Fully assembled multimedia objects reproducing the paper's figures.
//!
//! Each constructor returns archived, validated objects ready for the
//! presentation manager; `archived_form` derives the descriptor +
//! composition byte form the server stores.

use crate::images::{city_view, marker_transparency, subway_map, xray_bitmap};
use crate::speech::{tour_narrations, xray_dictation};
use minos_image::{Bitmap, Image, Overwrite, TransparencyDisplay};
use minos_object::{
    Anchor, ArchivedObject, Attribute, CompositionFile, DataKind, DataLocation, DataPayload,
    DescriptorEntry, DrivingMode, LogicalMessage, MessageBody, MultimediaObject, ObjectDescriptor,
    Relevance, RelevantLink, TransparencySetSpec, VisualMessageContent, VoiceSegment,
};
use minos_text::LogicalLevel;
use minos_types::{CharSpan, ObjectId, Point, Rect, SimDuration};
use minos_voice::recognize::{Recognizer, RecognizerConfig};
use minos_voice::synth::SpeakerProfile;

/// Derives the archivable byte form of an object: one descriptor entry and
/// composition record per part, in part order.
pub fn archived_form(obj: &MultimediaObject) -> ArchivedObject {
    let mut composition = CompositionFile::new();
    let mut entries = Vec::new();
    for (i, doc) in obj.text_segments.iter().enumerate() {
        let tag = format!("text{i}");
        let payload = DataPayload::text(&doc.text());
        let span = composition.append(&tag, &payload.bytes);
        entries.push(DescriptorEntry {
            tag,
            kind: DataKind::Text,
            location: DataLocation::Composition(span),
        });
    }
    for (i, image) in obj.images.iter().enumerate() {
        let tag = format!("img{i}");
        let payload = DataPayload::image(&image.render());
        let span = composition.append(&tag, &payload.bytes);
        entries.push(DescriptorEntry {
            tag,
            kind: DataKind::Image,
            location: DataLocation::Composition(span),
        });
    }
    for (i, seg) in obj.voice_segments.iter().enumerate() {
        let tag = format!("voice{i}");
        let payload = DataPayload::voice(seg.audio.samples(), seg.audio.sample_rate());
        let span = composition.append(&tag, &payload.bytes);
        entries.push(DescriptorEntry {
            tag,
            kind: DataKind::Voice,
            location: DataLocation::Composition(span),
        });
    }
    ArchivedObject {
        descriptor: ObjectDescriptor {
            object_id: obj.id,
            name: obj.name.clone(),
            driving_mode: obj.driving_mode,
            attributes: obj.attributes.iter().map(|a| (a.name.clone(), a.value.clone())).collect(),
            entries,
        },
        composition,
    }
}

/// A transparency sheet for the x-ray: a circle pinpointing the shadow with
/// a short annotation bar under the image area (Figures 5–6).
fn xray_annotation_sheet(size: minos_types::Size, shadow: Point, offset: i32) -> Bitmap {
    let mut sheet = Bitmap::new(size.width, size.height);
    minos_image::raster::draw_circle(&mut sheet, shadow, (14 + offset * 4) as u32);
    // Annotation bar: a distinct stripe near the bottom per sheet.
    let y = size.height as i32 - 12 - offset * 6;
    for x in 10..(size.width as i32 - 10) {
        sheet.set(x, y, true);
    }
    sheet
}

/// Figures 1–2 + 3–6 (visual half): the visual-mode examination report.
///
/// Text segment 0 holds the findings; image 0 is the x-ray, pinned as a
/// visual logical message over the findings chapter so the doctor "can
/// browse through the related text by keeping continuously the x-ray in
/// front of him"; images 1–2 are the annotation transparencies.
pub fn medical_report(id: ObjectId, seed: u64) -> MultimediaObject {
    let (xray, shadow) = xray_bitmap(seed, 400, 260);
    // The dictated findings plus the elaborations a written report carries;
    // long enough that the related text spans several pages under the
    // pinned x-ray, as in Figures 3-4 ("Three pages are needed in this
    // particular example").
    const ELABORATIONS: [&str; 4] = [
        "comparison with the prior film of last year shows no change in the \
         surrounding tissue and the heart outline remains normal in size and \
         shape throughout the examined region.",
        "the costophrenic angles are sharp on both sides. the bony structures \
         of the thorax show no lesion and the soft tissues are unremarkable \
         in every respect that this examination can establish.",
        "the trachea is central and the mediastinum is not widened. both hila \
         are of normal density and position. the visualized portions of the \
         upper abdomen appear normal.",
        "exposure technique and patient positioning were verified against the \
         standing protocol of the department and found satisfactory for \
         diagnostic purposes.",
    ];
    let mut findings = String::new();
    for (i, para) in xray_dictation().split('\n').enumerate() {
        findings.push_str(&format!(".pp\n{para}\n"));
        findings.push_str(&format!(".pp\n{}\n", ELABORATIONS[i % ELABORATIONS.len()]));
        findings.push_str(&format!(".pp\n{}\n", ELABORATIONS[(i + 2) % ELABORATIONS.len()]));
    }
    let markup = format!(
        ".ti Examination Report {}\n.ab\nChest film examination with annotated findings.\n\
         .ch Findings\n{findings}.ch Conclusion\nFollow up in three months.\n",
        id.raw()
    );
    let doc = minos_text::parse_markup(&markup).expect("report markup parses");
    // Anchor: the findings chapter's span.
    let findings_span = doc.tree().chapters[0].span;
    let sheet_a = xray_annotation_sheet(xray.size(), shadow, 0);
    let sheet_b = xray_annotation_sheet(xray.size(), shadow, 1);

    let mut obj = MultimediaObject::new(id, format!("report-{}", id.raw()), DrivingMode::Visual);
    obj.attributes.push(Attribute { name: "author".into(), value: "doctor jones".into() });
    obj.attributes.push(Attribute { name: "kind".into(), value: "radiology report".into() });
    obj.text_segments.push(doc);
    obj.images.push(Image::Bitmap(xray));
    obj.images.push(Image::Bitmap(sheet_a));
    obj.images.push(Image::Bitmap(sheet_b));
    obj.messages.push(LogicalMessage {
        anchor: Anchor::TextSegment { segment: 0, span: findings_span },
        body: MessageBody::Visual {
            content: VisualMessageContent { text: Some("patient x-ray".into()), image: Some(0) },
            show_once: false,
        },
    });
    obj.transparency_sets.push(TransparencySetSpec {
        base_image: 0,
        sheets: vec![1, 2],
        display: TransparencyDisplay::Stacked,
    });
    obj.archive().expect("medical report is consistent");
    obj
}

/// Figures 3–6 (audio half): the audio-mode dictation with the x-ray
/// attached as a visual logical message to the section of speech that
/// describes it — "the x-ray will only appear on the screen of the
/// workstation during the related section of the speech" (§3).
pub fn audio_xray_report(id: ObjectId, seed: u64) -> MultimediaObject {
    let recognizer = Recognizer::new(
        ["shadow", "film", "biopsy", "lung", "patient"],
        RecognizerConfig { hit_rate: 0.9, false_alarm_rate: 0.01, seed },
    );
    let segment = VoiceSegment::dictate(xray_dictation(), &SpeakerProfile::CLEAR, seed)
        .with_marks(&[LogicalLevel::Paragraph, LogicalLevel::Sentence])
        .with_recognition(&recognizer);
    // The finding is paragraph 2 of the dictation.
    let para_starts = &segment.transcript.paragraph_starts;
    let finding_span = minos_types::TimeSpan::new(
        para_starts[1],
        para_starts.get(2).copied().unwrap_or(minos_types::SimInstant::EPOCH + segment.duration()),
    );
    let (xray, _) = xray_bitmap(seed, 400, 260);

    let mut obj = MultimediaObject::new(id, format!("dictation-{}", id.raw()), DrivingMode::Audio);
    obj.attributes.push(Attribute { name: "author".into(), value: "doctor jones".into() });
    obj.voice_segments.push(segment);
    obj.images.push(Image::Bitmap(xray));
    obj.messages.push(LogicalMessage {
        anchor: Anchor::VoiceSegment { segment: 0, span: finding_span },
        body: MessageBody::Visual {
            content: VisualMessageContent {
                text: Some("the film under discussion".into()),
                image: Some(0),
            },
            show_once: false,
        },
    });
    obj.archive().expect("audio report is consistent");
    obj
}

/// Figures 7–8: the subway map with relevant objects. Returns the parent
/// map object plus the two relevant objects (hospital sites, university
/// sites) whose images are marker transparencies superimposed on the map
/// when their indicator is selected.
pub fn subway_map_object(
    parent_id: ObjectId,
    hospitals_id: ObjectId,
    university_id: ObjectId,
    seed: u64,
) -> (MultimediaObject, Vec<MultimediaObject>) {
    let map = subway_map(seed, 900, 700, 3, 6);
    let size = minos_types::Size::new(900, 700);
    let hospital_points: Vec<Point> =
        map.stations.iter().filter(|s| s.hospital).map(|s| s.at).collect();
    let university_points: Vec<Point> =
        map.stations.iter().filter(|s| s.university).map(|s| s.at).collect();

    let make_overlay = |id: ObjectId, name: &str, points: &[Point]| {
        let mut o = MultimediaObject::new(id, name, DrivingMode::Visual);
        o.images.push(Image::Bitmap(marker_transparency(size.width, size.height, points)));
        o.text_segments.push(
            minos_text::parse_markup(&format!("{name} sites of the city shown on the map.\n"))
                .expect("overlay markup"),
        );
        o.archive().expect("overlay consistent");
        o
    };
    let hospitals = make_overlay(hospitals_id, "hospitals", &hospital_points);
    let university = make_overlay(university_id, "university", &university_points);

    let mut parent = MultimediaObject::new(parent_id, "subway-map", DrivingMode::Visual);
    parent.images.push(Image::Graphics(map.image));
    parent.relevant.push(RelevantLink {
        label: "hospitals".into(),
        target: hospitals_id,
        anchor: Anchor::Image { image: 0 },
        relevances: hospital_points
            .iter()
            .map(|p| Relevance::ImagePolygon {
                image: 0,
                vertices: vec![
                    p.offset(-12, -12),
                    p.offset(12, -12),
                    p.offset(12, 12),
                    p.offset(-12, 12),
                ],
            })
            .collect(),
    });
    parent.relevant.push(RelevantLink {
        label: "university".into(),
        target: university_id,
        anchor: Anchor::Image { image: 0 },
        relevances: vec![],
    });
    parent.archive().expect("subway map consistent");
    (parent, vec![hospitals, university])
}

/// Figures 9–10: the guided city walk as a process simulation — "done with
/// a single image and overwrites on the top of it. The overwrites have
/// logical voice messages associated with them" (§3). The blank spots mark
/// the route walked so far.
pub fn city_walk_object(id: ObjectId, seed: u64) -> MultimediaObject {
    let narrations = tour_narrations();
    let (mut city, route) = city_view(seed, 700, 500, narrations.len());
    // Draw a solid site marker at every stop: the walk's overwrites blank
    // these markers one by one ("The blank spots identify the route
    // followed so far").
    for stop in &route {
        city.fill_rect(Rect::new(stop.x - 8, stop.y - 8, 16, 16), true);
    }
    let mut obj = MultimediaObject::new(id, "city-walk", DrivingMode::Visual);
    obj.images.push(Image::Bitmap(city));

    let mut steps = Vec::new();
    for (i, (stop, narration)) in route.iter().zip(narrations.iter()).enumerate() {
        let segment = VoiceSegment::dictate(narration, &SpeakerProfile::CLEAR, seed + i as u64);
        let duration = segment.duration();
        obj.voice_segments.push(segment);
        obj.messages.push(LogicalMessage {
            anchor: Anchor::Image { image: 0 },
            body: MessageBody::Voice { segment: i, duration },
        });
        steps.push(minos_object::model::ProcessStep {
            overwrite: Overwrite::blank(Rect::new(stop.x - 8, stop.y - 8, 16, 16)),
            message: Some(i),
        });
    }
    obj.process_sims.push(minos_object::model::ProcessSimulation {
        base_image: 0,
        steps,
        interval: SimDuration::from_secs(3),
    });
    obj.archive().expect("city walk consistent");
    obj
}

/// Figures 1–2: an ordinary office document (text, headings, a figure).
pub fn office_document(id: ObjectId, seed: u64, chapters: usize) -> MultimediaObject {
    let markup = crate::documents::office_markup(seed, chapters, 2, 3);
    let doc = minos_text::parse_markup(&markup).expect("office markup parses");
    let (figure, _) = xray_bitmap(seed + 17, 300, 180);
    let mut obj = MultimediaObject::new(id, format!("office-{}", id.raw()), DrivingMode::Visual);
    obj.attributes.push(Attribute { name: "kind".into(), value: "office document".into() });
    obj.text_segments.push(doc);
    obj.images.push(Image::Bitmap(figure));
    obj.archive().expect("office document consistent");
    obj
}

/// Attaches a voice logical message to a span of the object's first text
/// segment (used in tests of overlapping-message semantics).
pub fn attach_voice_note(
    obj: &mut MultimediaObject,
    span: CharSpan,
    note_text: &str,
    seed: u64,
) -> usize {
    let segment = VoiceSegment::dictate(note_text, &SpeakerProfile::CLEAR, seed);
    let duration = segment.duration();
    obj.voice_segments.push(segment);
    let voice_index = obj.voice_segments.len() - 1;
    obj.messages.push(LogicalMessage {
        anchor: Anchor::TextSegment { segment: 0, span },
        body: MessageBody::Voice { segment: voice_index, duration },
    });
    obj.messages.len() - 1
}

/// A harbor-city map with voice-labelled sites and a designer tour over it
/// (§2's tour + voice-label facilities; used by the tour runner tests and
/// the tourist-information scenario of §3).
pub fn harbor_tour_object(id: ObjectId, seed: u64) -> MultimediaObject {
    use minos_image::{GraphicsImage, GraphicsObject, Label, LabelContent, Shape, Tour, TourStop};

    let narrations = tour_narrations();
    let mut map = GraphicsImage::new(900, 700);
    // Waterfront: a polyline across the map.
    map.push(GraphicsObject::new(Shape::Polyline(vec![
        Point::new(0, 620),
        Point::new(300, 560),
        Point::new(600, 640),
        Point::new(899, 580),
    ])));
    // Sites with voice labels, spread along the walk's diagonal.
    let site_names =
        ["city gate", "market square", "cathedral", "promenade", "old crane", "fish hall"];
    let mut sites = Vec::new();
    for (i, name) in site_names.iter().enumerate() {
        let at = Point::new(80 + i as i32 * 140, 90 + i as i32 * 90);
        map.push(
            GraphicsObject::new(Shape::Circle { center: at, radius: 12, filled: i % 2 == 0 })
                .with_label(Label {
                    content: LabelContent::Voice {
                        tag: format!("site-{i}"),
                        transcript: (*name).to_string(),
                    },
                    anchor: at.offset(16, -10),
                    visible: true,
                }),
        );
        sites.push(at);
    }

    let mut obj = MultimediaObject::new(id, "harbor-tour", DrivingMode::Visual);
    obj.images.push(Image::Graphics(map));

    // Narrated voice messages for the first stops, a visual note for the
    // rest — tours may attach either kind (§2).
    let mut stops = Vec::new();
    for (i, &site) in sites.iter().enumerate().take(4) {
        let message = if i < narrations.len().min(2) {
            let segment =
                VoiceSegment::dictate(narrations[i], &SpeakerProfile::CLEAR, seed + i as u64);
            let duration = segment.duration();
            obj.voice_segments.push(segment);
            obj.messages.push(LogicalMessage {
                anchor: Anchor::Image { image: 0 },
                body: MessageBody::Voice { segment: obj.voice_segments.len() - 1, duration },
            });
            Some(obj.messages.len() - 1)
        } else {
            obj.messages.push(LogicalMessage {
                anchor: Anchor::Image { image: 0 },
                body: MessageBody::Visual {
                    content: VisualMessageContent {
                        text: Some(format!("tour stop {}", i + 1)),
                        image: None,
                    },
                    show_once: false,
                },
            });
            Some(obj.messages.len() - 1)
        };
        stops.push(TourStop {
            position: site.offset(-110, -80),
            message,
            dwell: SimDuration::from_secs(3),
        });
    }
    let tour = Tour::new(minos_types::Size::new(900, 700), minos_types::Size::new(260, 200), stops)
        .expect("tour is well formed");
    obj.tours.push(minos_object::TourSpec { image: 0, tour });
    obj.archive().expect("harbor tour consistent");
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medical_report_is_archived_and_consistent() {
        let obj = medical_report(ObjectId::new(1), 42);
        assert!(obj.is_archived());
        assert_eq!(obj.images.len(), 3);
        assert_eq!(obj.messages.len(), 1);
        assert_eq!(obj.transparency_sets.len(), 1);
        obj.validate().unwrap();
        // The pinned message anchors the findings chapter.
        match obj.messages[0].anchor {
            Anchor::TextSegment { segment: 0, span } => {
                let text = obj.text_segments[0].slice(span);
                assert!(text.contains("shadow"));
            }
            ref other => panic!("unexpected anchor {other:?}"),
        }
    }

    #[test]
    fn audio_report_attaches_xray_to_finding_speech() {
        let obj = audio_xray_report(ObjectId::new(2), 7);
        assert_eq!(obj.driving_mode, DrivingMode::Audio);
        let seg = &obj.voice_segments[0];
        assert!(!seg.utterances.is_empty(), "recognition ran");
        assert!(!seg.marks.available_levels().is_empty(), "marks recorded");
        match obj.messages[0].anchor {
            Anchor::VoiceSegment { segment: 0, span } => {
                // The anchored span is paragraph 2.
                assert_eq!(span.start, seg.transcript.paragraph_starts[1]);
            }
            ref other => panic!("unexpected anchor {other:?}"),
        }
    }

    #[test]
    fn subway_bundle_links_to_overlays() {
        let (parent, overlays) =
            subway_map_object(ObjectId::new(3), ObjectId::new(4), ObjectId::new(5), 11);
        assert_eq!(parent.relevant.len(), 2);
        assert_eq!(overlays.len(), 2);
        assert_eq!(parent.relevant[0].target, overlays[0].id);
        assert!(overlays.iter().all(|o| o.is_archived()));
        // Overlay images share the map's size so superposition is aligned.
        assert_eq!(overlays[0].images[0].size(), parent.images[0].size());
    }

    #[test]
    fn city_walk_steps_carry_voice_messages() {
        let obj = city_walk_object(ObjectId::new(6), 3);
        let sim = &obj.process_sims[0];
        assert_eq!(sim.steps.len(), 4);
        assert_eq!(obj.voice_segments.len(), 4);
        for step in &sim.steps {
            let m = step.message.expect("every step narrated");
            assert!(obj.messages[m].body.is_voice());
        }
    }

    #[test]
    fn archived_form_round_trips_each_part() {
        let obj = medical_report(ObjectId::new(7), 5);
        let archived = archived_form(&obj);
        assert_eq!(archived.descriptor.entries.len(), 1 + 3);
        // Text payload reads back as the document text.
        let entry = archived.descriptor.entry("text0").unwrap();
        let bytes = archived.composition.read(entry.location.span()).unwrap();
        let text = String::from_utf8(bytes.to_vec()).unwrap();
        assert!(text.contains("Findings"));
        // Image payload decodes to the x-ray's raster.
        let entry = archived.descriptor.entry("img0").unwrap();
        let bytes = archived.composition.read(entry.location.span()).unwrap();
        let payload = DataPayload { kind: DataKind::Image, bytes: bytes.to_vec() };
        assert_eq!(payload.as_image().unwrap(), obj.images[0].render());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = medical_report(ObjectId::new(9), 3);
        let b = medical_report(ObjectId::new(9), 3);
        assert_eq!(a.text_segments[0].text(), b.text_segments[0].text());
        assert_eq!(a.images[0].render(), b.images[0].render());
    }

    #[test]
    fn attach_voice_note_appends_message() {
        let mut obj = MultimediaObject::new(ObjectId::new(10), "notes", DrivingMode::Visual);
        obj.text_segments.push(minos_text::parse_markup("a paragraph to annotate\n").unwrap());
        let idx = attach_voice_note(&mut obj, CharSpan::new(0, 5), "listen to this note", 1);
        assert_eq!(idx, 0);
        assert_eq!(obj.voice_segments.len(), 1);
        obj.validate().unwrap();
    }
}
