//! Office-document text generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The word pool: enough distinct words for interesting indexes and
/// pattern-search targets, biased toward the paper's own vocabulary.
pub const WORDS: &[&str] = &[
    "multimedia",
    "object",
    "presentation",
    "manager",
    "browsing",
    "voice",
    "text",
    "image",
    "workstation",
    "optical",
    "disk",
    "archive",
    "server",
    "page",
    "chapter",
    "section",
    "paragraph",
    "sentence",
    "word",
    "pattern",
    "menu",
    "option",
    "screen",
    "bitmap",
    "graphics",
    "label",
    "view",
    "tour",
    "transparency",
    "overwrite",
    "miniature",
    "descriptor",
    "synthesis",
    "composition",
    "attribute",
    "segment",
    "pause",
    "recognition",
    "symmetric",
    "driving",
    "mode",
    "relevant",
    "indicator",
    "message",
    "logical",
    "doctor",
    "patient",
    "x-ray",
    "shadow",
    "hospital",
    "report",
    "office",
    "document",
    "system",
    "information",
    "bandwidth",
    "communication",
    "storage",
    "retrieval",
    "query",
    "content",
    "keyword",
    "index",
];

/// A deterministic pseudo-sentence of `len` words ending with a period.
pub fn sentence(rng: &mut StdRng, len: usize) -> String {
    let mut out = String::new();
    for i in 0..len.max(1) {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out.push('.');
    out
}

/// A paragraph of `sentences` sentences.
pub fn paragraph(rng: &mut StdRng, sentences: usize) -> String {
    (0..sentences.max(1))
        .map(|_| {
            let len = rng.gen_range(6..14);
            sentence(rng, len)
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Generates a full office document in MINOS markup: title, abstract,
/// `chapters` chapters of `sections_per` sections with
/// `paragraphs_per` paragraphs each, and references.
pub fn office_markup(
    seed: u64,
    chapters: usize,
    sections_per: usize,
    paragraphs_per: usize,
) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    out.push_str(&format!(".ti Report number {} on multimedia presentation\n", seed % 1000));
    out.push_str(".ab\n");
    out.push_str(&paragraph(&mut rng, 2));
    out.push('\n');
    for c in 0..chapters.max(1) {
        out.push_str(&format!(".ch Chapter {} {}\n", c + 1, WORDS[c % WORDS.len()]));
        out.push_str(&paragraph(&mut rng, 2));
        out.push('\n');
        for s in 0..sections_per {
            out.push_str(&format!(".se Section {}.{}\n", c + 1, s + 1));
            for _ in 0..paragraphs_per.max(1) {
                out.push_str(".pp\n");
                let n_sentences = rng.gen_range(2..5);
                out.push_str(&paragraph(&mut rng, n_sentences));
                out.push('\n');
            }
        }
    }
    out.push_str(".rf\n[Christodoulakis 85] Issues in the architecture of a document archiver.\n");
    out
}

/// Parses a generated office document straight into a [`minos_text::Document`].
pub fn office_document_text(seed: u64, chapters: usize) -> minos_text::Document {
    minos_text::parse_markup(&office_markup(seed, chapters, 2, 3)).expect("generated markup parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_text::LogicalLevel;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(office_markup(7, 3, 2, 2), office_markup(7, 3, 2, 2));
        assert_ne!(office_markup(7, 3, 2, 2), office_markup(8, 3, 2, 2));
    }

    #[test]
    fn generated_markup_parses_with_requested_structure() {
        let doc = office_document_text(3, 4);
        let tree = doc.tree();
        assert_eq!(tree.chapters.len(), 4);
        assert!(tree.title.is_some());
        assert!(tree.abstract_span.is_some());
        assert!(tree.references.is_some());
        assert_eq!(tree.chapters[0].sections.len(), 2);
        assert!(tree.count(LogicalLevel::Paragraph) >= 4 * 2 * 3);
    }

    #[test]
    fn size_scales_with_parameters() {
        let small = office_markup(1, 1, 1, 1).len();
        let large = office_markup(1, 8, 3, 5).len();
        assert!(large > small * 5);
    }

    #[test]
    fn sentences_end_with_periods() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sentence(&mut rng, 8);
        assert!(s.ends_with('.'));
        assert_eq!(s.split_whitespace().count(), 8);
    }
}
