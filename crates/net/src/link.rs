//! The link model.
//!
//! A link charges a fixed per-message latency plus size/bandwidth transfer
//! time, and counts every byte. The defaults model the paper's Ethernet
//! (10 Mbit/s ≈ 1.25 MB/s with a couple of milliseconds of protocol
//! latency).

use minos_types::SimDuration;

/// Transfer accounting for one link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages sent in either direction.
    pub messages: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Total simulated time spent on the wire.
    pub busy: SimDuration,
}

/// A point-to-point link.
#[derive(Clone, Debug)]
pub struct Link {
    latency: SimDuration,
    bytes_per_sec: u64,
    stats: LinkStats,
}

/// The paper's Ethernet: 10 Mbit/s, 2 ms per-message latency.
pub const ETHERNET_10MBIT: (SimDuration, u64) = (SimDuration::from_millis(2), 1_250_000);

impl Link {
    /// Creates a link with the given latency and bandwidth (bytes/second).
    pub fn new(latency: SimDuration, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        Link { latency, bytes_per_sec, stats: LinkStats::default() }
    }

    /// A 10 Mbit/s Ethernet link.
    pub fn ethernet() -> Self {
        Link::new(ETHERNET_10MBIT.0, ETHERNET_10MBIT.1)
    }

    /// Pure cost query for transferring `bytes`.
    ///
    /// Transfer time rounds up to the next microsecond: a payload always
    /// costs at least as much wire time as the bandwidth allows, and the
    /// widened arithmetic cannot saturate for any `u64` payload (the old
    /// `bytes * 1_000_000` overflowed past ~18 TB and silently pinned the
    /// numerator at `u64::MAX`).
    pub fn transfer_cost(&self, bytes: u64) -> SimDuration {
        let micros = (bytes as u128 * 1_000_000).div_ceil(self.bytes_per_sec as u128);
        self.latency + SimDuration::from_micros_saturating(micros)
    }

    /// Transfers `bytes`, recording stats and returning the time charged.
    pub fn transfer(&mut self, bytes: u64) -> SimDuration {
        let took = self.transfer_cost(bytes);
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        self.stats.busy += took;
        took
    }

    /// Accounting so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Resets the accounting (between experiment runs).
    pub fn reset_stats(&mut self) {
        self.stats = LinkStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_latency_plus_transfer() {
        let link = Link::new(SimDuration::from_millis(2), 1_000_000);
        assert_eq!(link.transfer_cost(0), SimDuration::from_millis(2));
        assert_eq!(link.transfer_cost(1_000_000), SimDuration::from_millis(1_002));
    }

    #[test]
    fn ethernet_profile() {
        let link = Link::ethernet();
        // 1.25 MB at 1.25 MB/s = 1 s + 2 ms latency.
        assert_eq!(link.transfer_cost(1_250_000), SimDuration::from_millis(1_002));
    }

    #[test]
    fn transfer_accumulates_stats() {
        let mut link = Link::ethernet();
        link.transfer(1_000);
        link.transfer(2_000);
        let s = link.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 3_000);
        assert_eq!(s.busy, link.transfer_cost(1_000) + link.transfer_cost(2_000));
        link.reset_stats();
        assert_eq!(link.stats(), LinkStats::default());
    }

    #[test]
    fn bigger_transfers_cost_more() {
        let link = Link::ethernet();
        assert!(link.transfer_cost(1 << 20) > link.transfer_cost(1 << 10));
    }

    #[test]
    fn sub_microsecond_transfers_round_up() {
        // 1 byte at 1.25 MB/s is 0.8 µs of wire time; truncation used to
        // charge 0 extra microseconds, making tiny messages free.
        let link = Link::ethernet();
        assert_eq!(link.transfer_cost(1), ETHERNET_10MBIT.0 + SimDuration::from_micros(1));
        assert!(link.transfer_cost(1) > link.transfer_cost(0));
    }

    #[test]
    fn huge_transfers_do_not_saturate() {
        // 20 TB at 1.25 MB/s: the old u64 numerator saturated and pinned
        // the cost at ~14762 s; the widened math reports the true 16 Ms.
        let link = Link::ethernet();
        let bytes = 20_u64 * 1_000_000_000_000;
        let expect = SimDuration::from_micros(bytes / 1_250_000 * 1_000_000);
        assert_eq!(link.transfer_cost(bytes), ETHERNET_10MBIT.0 + expect);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Link::new(SimDuration::ZERO, 0);
    }
}
