//! The framed transport envelope (§5 pipelining).
//!
//! The blocking request path serialized every interaction: one request on
//! the wire, one response back, nothing else in flight. To overlap server
//! work with link transfer — and to let one server interleave several
//! workstations — every [`ServerRequest`]/[`ServerResponse`] now travels
//! inside a [`Frame`]: a `(conn_id, request_id)` envelope that lets
//! responses complete out of order and still find their way back to the
//! submitting session. The inner wire tags of the protocol enums are
//! untouched; the envelope is purely additive framing.
//!
//! [`InflightWindow`] is the per-connection flow-control companion: it
//! bounds how many request frames may be unacknowledged at once, so a
//! pipelined client cannot bury the server queue arbitrarily deep.

use crate::protocol::{ServerRequest, ServerResponse};
use minos_types::{varint_len, Decoder, Encoder, MinosError, Result};
use std::collections::BTreeSet;

/// Bytes of the CRC32 trailer every encoded frame carries.
const CRC_TRAILER_LEN: usize = 4;

/// CRC-32 (IEEE 802.3, reflected polynomial). Bitwise rather than
/// table-driven: frames are small and the sim never transfers enough bytes
/// for the table to matter, while the bitwise form stays branch- and
/// index-free (the net crate is panic-audited).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// The service class a frame travels under (§5 overload policy).
///
/// One wire byte in the [`Frame`] envelope, ordered by urgency: the
/// server's admission control sheds [`Priority::Prefetch`] traffic first
/// and preserves [`Priority::Audio`] and [`Priority::Demand`] requests,
/// so speculation never starves the work a user is actually waiting on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Continuous-media traffic with a playback deadline (never shed).
    Audio,
    /// A synchronous user-facing fetch the session is blocked on (never
    /// shed while any prefetch remains sheddable).
    Demand,
    /// Speculative read-ahead; the first class dropped under overload.
    Prefetch,
}

impl Priority {
    /// The envelope byte for this class.
    pub fn wire_tag(self) -> u8 {
        match self {
            Priority::Audio => 0,
            Priority::Demand => 1,
            Priority::Prefetch => 2,
        }
    }

    /// Decodes an envelope byte; unknown classes are typed codec errors.
    pub fn from_wire(tag: u8) -> Result<Priority> {
        match tag {
            0 => Ok(Priority::Audio),
            1 => Ok(Priority::Demand),
            2 => Ok(Priority::Prefetch),
            other => Err(MinosError::Codec(format!("unknown frame priority {other}"))),
        }
    }

    /// Whether the admission policy may drop this class under overload.
    pub fn is_sheddable(self) -> bool {
        matches!(self, Priority::Prefetch)
    }
}

/// The direction-discriminated payload of a [`Frame`].
///
/// Wire layout: one envelope tag byte (`1` = request, `2` = response)
/// followed by the length-prefixed inner protocol encoding. The inner
/// bytes are exactly what the unframed protocol would have sent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FramePayload {
    /// A workstation → server request.
    Request(ServerRequest),
    /// A server → workstation response.
    Response(ServerResponse),
}

impl FramePayload {
    /// Encodes the envelope tag plus the inner protocol bytes into an
    /// existing encoder. The inner message's length prefix is computed
    /// arithmetically from its `wire_size`, then the message encodes in
    /// place — no intermediate buffer, which is what keeps
    /// [`Frame::encode_into`] allocation-free on a pooled buffer.
    pub fn encode_to(&self, e: &mut Encoder) {
        match self {
            FramePayload::Request(request) => {
                e.put_u8(1);
                e.put_varint(request.wire_size());
                request.encode_to(e);
            }
            FramePayload::Response(response) => {
                e.put_u8(2);
                e.put_varint(response.wire_size());
                response.encode_to(e);
            }
        }
    }

    /// Encodes the envelope tag plus the inner protocol bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode_to(&mut e);
        e.finish()
    }

    /// Bytes [`FramePayload::encode`] produces, computed without encoding:
    /// one tag byte plus the length-prefixed inner message.
    pub fn wire_size(&self) -> u64 {
        let inner = match self {
            FramePayload::Request(request) => request.wire_size(),
            FramePayload::Response(response) => response.wire_size(),
        };
        1 + varint_len(inner) + inner
    }

    /// Decodes an envelope payload produced by [`FramePayload::encode`].
    pub fn decode(bytes: &[u8]) -> Result<FramePayload> {
        let mut d = Decoder::new(bytes);
        let payload = match d.get_u8()? {
            1 => FramePayload::Request(ServerRequest::decode(d.get_bytes_ref()?)?),
            2 => FramePayload::Response(ServerResponse::decode(d.get_bytes_ref()?)?),
            other => return Err(MinosError::Codec(format!("unknown frame payload tag {other}"))),
        };
        d.expect_end()?;
        Ok(payload)
    }
}

/// One framed protocol message: which connection it belongs to, which
/// outstanding request it answers (or opens), and the payload itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The connection (workstation session) this frame belongs to.
    pub conn_id: u64,
    /// The per-connection request this frame opens or answers. Responses
    /// carry the id of the request they answer, which is what lets them
    /// complete out of order.
    pub request_id: u64,
    /// The service class the frame travels under; responses echo the
    /// class of the request they answer.
    pub priority: Priority,
    /// The enveloped protocol message.
    pub payload: FramePayload,
}

impl Frame {
    /// Wraps a request for submission on `conn_id` as `request_id`
    /// (demand class — the historical default for synchronous fetches).
    pub fn request(conn_id: u64, request_id: u64, request: ServerRequest) -> Frame {
        Frame::request_with_priority(conn_id, request_id, Priority::Demand, request)
    }

    /// Wraps a request travelling under an explicit service class.
    pub fn request_with_priority(
        conn_id: u64,
        request_id: u64,
        priority: Priority,
        request: ServerRequest,
    ) -> Frame {
        Frame { conn_id, request_id, priority, payload: FramePayload::Request(request) }
    }

    /// Wraps a response answering `request_id` on `conn_id`.
    pub fn response(conn_id: u64, request_id: u64, response: ServerResponse) -> Frame {
        Frame {
            conn_id,
            request_id,
            priority: Priority::Demand,
            payload: FramePayload::Response(response),
        }
    }

    /// Echoes this frame's service class onto a response frame.
    pub fn reply(&self, response: ServerResponse) -> Frame {
        Frame {
            conn_id: self.conn_id,
            request_id: self.request_id,
            priority: self.priority,
            payload: FramePayload::Response(response),
        }
    }

    /// Encodes the envelope: varint `conn_id`, varint `request_id`, the
    /// priority byte, the tagged payload, then a CRC32 trailer over
    /// everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encodes the envelope into `out` (cleared first), reusing its
    /// capacity — the pooled transmit path. Every length prefix is
    /// computed arithmetically from `wire_size`, so a warm buffer encodes
    /// a whole frame without a single allocation. Byte-for-byte identical
    /// to [`Frame::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut e = Encoder::reuse(std::mem::take(out));
        e.put_varint(self.conn_id);
        e.put_varint(self.request_id);
        e.put_u8(self.priority.wire_tag());
        e.put_varint(self.payload.wire_size());
        self.payload.encode_to(&mut e);
        let mut bytes = e.finish();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        *out = bytes;
    }

    /// Encodes a request frame's wire bytes straight from a borrowed
    /// request into `out` — byte-identical to building the [`Frame`] and
    /// calling [`Frame::encode_into`], without taking ownership of the
    /// request. This is the transmit path for retransmission state that
    /// keeps only encoded bytes: the caller encodes once from a borrow,
    /// resends verbatim ever after.
    pub fn encode_request_into(
        conn_id: u64,
        request_id: u64,
        priority: Priority,
        request: &ServerRequest,
        out: &mut Vec<u8>,
    ) {
        let mut e = Encoder::reuse(std::mem::take(out));
        e.put_varint(conn_id);
        e.put_varint(request_id);
        e.put_u8(priority.wire_tag());
        // The FramePayload::Request layout, inlined from the borrow.
        let inner = request.wire_size();
        e.put_varint(1 + varint_len(inner) + inner);
        e.put_u8(1);
        e.put_varint(inner);
        request.encode_to(&mut e);
        let mut bytes = e.finish();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        *out = bytes;
    }

    /// Decodes a frame produced by [`Frame::encode`], verifying the CRC32
    /// trailer first: bytes altered in transit surface as a typed
    /// [`MinosError::Corrupt`] instead of a garbage decode.
    pub fn decode(bytes: &[u8]) -> Result<Frame> {
        let Some(body_len) = bytes.len().checked_sub(CRC_TRAILER_LEN) else {
            return Err(MinosError::Codec(format!(
                "frame of {} bytes is shorter than its checksum trailer",
                bytes.len()
            )));
        };
        let (body, trailer) =
            (bytes.get(..body_len).unwrap_or_default(), bytes.get(body_len..).unwrap_or_default());
        let mut t = Decoder::new(trailer);
        let stated = t.get_u32()?;
        let actual = crc32(body);
        if stated != actual {
            return Err(MinosError::Corrupt(format!(
                "frame checksum mismatch: trailer {stated:#010x}, computed {actual:#010x}"
            )));
        }
        let mut d = Decoder::new(body);
        let conn_id = d.get_varint()?;
        let request_id = d.get_varint()?;
        let priority = Priority::from_wire(d.get_u8()?)?;
        let payload = FramePayload::decode(d.get_bytes_ref()?)?;
        d.expect_end()?;
        Ok(Frame { conn_id, request_id, priority, payload })
    }

    /// Bytes this frame occupies on the wire, computed arithmetically —
    /// measuring a frame never copies its payload (this sits on the
    /// per-submission hot path of `core::remote`).
    pub fn wire_size(&self) -> u64 {
        let payload = self.payload.wire_size();
        varint_len(self.conn_id)
            + varint_len(self.request_id)
            + 1
            + varint_len(payload)
            + payload
            + CRC_TRAILER_LEN as u64
    }

    /// The enveloped request, if this is a request frame.
    pub fn as_request(&self) -> Option<&ServerRequest> {
        match &self.payload {
            FramePayload::Request(request) => Some(request),
            FramePayload::Response(_) => None,
        }
    }
}

/// Per-connection flow control: the set of request ids submitted but not
/// yet delivered back, bounded by a fixed capacity.
///
/// The window is the pipelining budget — a client keeps submitting until
/// [`InflightWindow::is_full`], then must wait for a delivery before the
/// next submit. Capacity 1 degenerates to the old blocking discipline.
#[derive(Clone, Debug)]
pub struct InflightWindow {
    capacity: usize,
    ids: BTreeSet<u64>,
}

impl InflightWindow {
    /// A window admitting up to `capacity` unacknowledged requests
    /// (a zero capacity is bumped to 1: a window that can never open
    /// would deadlock the pipeline).
    pub fn new(capacity: usize) -> Self {
        InflightWindow { capacity: capacity.max(1), ids: BTreeSet::new() }
    }

    /// The maximum number of in-flight requests.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently in flight.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether the window is exhausted (submit must wait).
    pub fn is_full(&self) -> bool {
        self.ids.len() >= self.capacity
    }

    /// Admits `request_id`; returns `false` (and admits nothing) if the
    /// window is full or the id is already in flight.
    pub fn open(&mut self, request_id: u64) -> bool {
        if self.is_full() || self.ids.contains(&request_id) {
            return false;
        }
        self.ids.insert(request_id)
    }

    /// Retires `request_id` on delivery; returns `false` if it was not in
    /// flight.
    pub fn close(&mut self, request_id: u64) -> bool {
        self.ids.remove(&request_id)
    }

    /// The oldest (smallest) in-flight request id — the one a blocked
    /// submitter should wait on.
    pub fn oldest(&self) -> Option<u64> {
        self.ids.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_types::{ByteSpan, ObjectId};
    use proptest::prelude::*;

    fn sample_request() -> ServerRequest {
        ServerRequest::FetchSpan { span: ByteSpan::at(1_024, 4_096) }
    }

    #[test]
    fn request_frames_round_trip() {
        let frame = Frame::request(7, 42, sample_request());
        let back = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.as_request(), Some(&sample_request()));
    }

    #[test]
    fn response_frames_round_trip() {
        let frame = Frame::response(1, 9, ServerResponse::Hits(vec![ObjectId::new(3)]));
        let back = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(back, frame);
        assert!(back.as_request().is_none());
    }

    #[test]
    fn envelope_overhead_is_small() {
        let inner = sample_request().wire_size();
        let framed = Frame::request(1, 1, sample_request()).wire_size();
        assert!(framed > inner);
        assert!(framed - inner < 16, "envelope overhead {} bytes", framed - inner);
    }

    #[test]
    fn unknown_payload_tag_is_rejected() {
        let mut e = Encoder::new();
        e.put_varint(1);
        e.put_varint(1);
        e.put_u8(Priority::Demand.wire_tag());
        e.put_bytes(&[10, 0]);
        let mut bytes = e.finish();
        // With a valid checksum the decoder reaches the tag check itself.
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(Frame::decode(&bytes), Err(MinosError::Codec(_))));
    }

    #[test]
    fn unknown_priority_byte_is_rejected() {
        let mut e = Encoder::new();
        e.put_varint(1);
        e.put_varint(1);
        e.put_u8(7);
        e.put_bytes(&FramePayload::Request(sample_request()).encode());
        let mut bytes = e.finish();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(Frame::decode(&bytes), Err(MinosError::Codec(_))));
    }

    #[test]
    fn priority_classes_round_trip() {
        for priority in [Priority::Audio, Priority::Demand, Priority::Prefetch] {
            let frame = Frame::request_with_priority(4, 11, priority, sample_request());
            let back = Frame::decode(&frame.encode()).unwrap();
            assert_eq!(back.priority, priority);
            assert_eq!(back, frame);
            assert_eq!(Priority::from_wire(priority.wire_tag()).unwrap(), priority);
        }
        assert!(Priority::from_wire(3).is_err());
        assert!(Priority::Prefetch.is_sheddable());
        assert!(!Priority::Audio.is_sheddable());
        assert!(!Priority::Demand.is_sheddable());
    }

    #[test]
    fn replies_echo_the_request_class() {
        let request = Frame::request_with_priority(4, 11, Priority::Audio, sample_request());
        let reply = request.reply(ServerResponse::Span(vec![1, 2, 3]));
        assert_eq!(reply.conn_id, 4);
        assert_eq!(reply.request_id, 11);
        assert_eq!(reply.priority, Priority::Audio);
        assert!(reply.as_request().is_none());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Frame::request(1, 1, sample_request()).encode();
        bytes.push(0);
        assert!(Frame::decode(&bytes).is_err());
    }

    #[test]
    fn wire_size_matches_encoding_without_materializing_it() {
        let frames = vec![
            Frame::request(1, 1, sample_request()),
            Frame::request(u64::MAX, 1 << 40, sample_request()),
            Frame::request(
                3,
                9,
                ServerRequest::Query { keywords: vec!["x-ray".into(), "shadow".into()] },
            ),
            Frame::request(
                2,
                5,
                ServerRequest::Batch {
                    requests: vec![sample_request(), ServerRequest::Query { keywords: vec![] }],
                },
            ),
            Frame::response(7, 42, ServerResponse::Span(vec![0xa5; 10_000])),
            Frame::response(1, 2, ServerResponse::Hits(vec![ObjectId::new(1 << 50)])),
            Frame::response(1, 3, ServerResponse::Error("lost".into())),
            Frame::response(
                1,
                4,
                ServerResponse::Batch(vec![
                    ServerResponse::Span(vec![1, 2, 3]),
                    ServerResponse::Error("missing".into()),
                ]),
            ),
            Frame::request(5, 0, ServerRequest::Hello { epoch: u64::MAX }),
            Frame::request(5, 6, ServerRequest::Probe),
            Frame::response(5, 0, ServerResponse::Welcome { epoch: 1 << 33 }),
            Frame::response(
                5,
                6,
                ServerResponse::Busy {
                    retry_after: minos_types::SimDuration::from_micros(1 << 20),
                },
            ),
            Frame::request_with_priority(
                6,
                7,
                Priority::Prefetch,
                ServerRequest::FetchSpan { span: ByteSpan::at(0, 8192) },
            ),
        ];
        for frame in frames {
            assert_eq!(
                frame.wire_size(),
                frame.encode().len() as u64,
                "wire_size must equal the encoded length for {frame:?}"
            );
        }
    }

    #[test]
    fn encode_into_is_byte_identical_and_reuses_the_buffer() {
        let frames = vec![
            Frame::request(1, 1, sample_request()),
            Frame::request(
                2,
                5,
                ServerRequest::Batch {
                    requests: vec![sample_request(), ServerRequest::Query { keywords: vec![] }],
                },
            ),
            Frame::response(7, 42, ServerResponse::Span(vec![0xa5; 4_096])),
            Frame::response(
                1,
                4,
                ServerResponse::Batch(vec![
                    ServerResponse::Span(vec![1, 2, 3]),
                    ServerResponse::Error("missing".into()),
                ]),
            ),
            Frame::request_with_priority(6, 7, Priority::Prefetch, sample_request()),
        ];
        let mut buf = Vec::with_capacity(8_192);
        let cap = buf.capacity();
        for frame in frames {
            buf.extend_from_slice(b"stale bytes from the previous frame");
            frame.encode_into(&mut buf);
            assert_eq!(buf, frame.encode(), "encode_into must match encode for {frame:?}");
            assert_eq!(Frame::decode(&buf).unwrap(), frame);
            assert_eq!(buf.capacity(), cap, "a warm buffer encodes without reallocating");
        }
    }

    #[test]
    fn encode_request_into_matches_the_owning_encode() {
        let requests = vec![
            sample_request(),
            ServerRequest::Query { keywords: vec!["x-ray".into(), "shadow".into()] },
            ServerRequest::Batch {
                requests: vec![sample_request(), ServerRequest::Query { keywords: vec![] }],
            },
            ServerRequest::Hello { epoch: u64::MAX },
            ServerRequest::Probe,
        ];
        let mut buf = Vec::new();
        for request in requests {
            for priority in [Priority::Audio, Priority::Demand, Priority::Prefetch] {
                Frame::encode_request_into(9, 1 << 33, priority, &request, &mut buf);
                let owned = Frame::request_with_priority(9, 1 << 33, priority, request.clone());
                assert_eq!(buf, owned.encode(), "borrow-encode of {request:?}");
            }
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = Frame::request(3, 17, sample_request()).encode();
        for at in 0..bytes.len() {
            for bit in 0..8 {
                let mut mangled = bytes.clone();
                mangled[at] ^= 1 << bit;
                assert!(
                    Frame::decode(&mangled).is_err(),
                    "flip of bit {bit} at byte {at} went undetected"
                );
            }
        }
    }

    #[test]
    fn corruption_is_typed() {
        let mut bytes = Frame::request(1, 1, sample_request()).encode();
        bytes[0] ^= 0x40;
        assert!(matches!(Frame::decode(&bytes), Err(MinosError::Corrupt(_))));
    }

    #[test]
    fn sub_trailer_frames_are_codec_errors() {
        assert!(matches!(Frame::decode(&[]), Err(MinosError::Codec(_))));
        assert!(matches!(Frame::decode(&[1, 2, 3]), Err(MinosError::Codec(_))));
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn window_admits_up_to_capacity() {
        let mut w = InflightWindow::new(2);
        assert_eq!(w.capacity(), 2);
        assert!(w.open(1));
        assert!(w.open(2));
        assert!(w.is_full());
        assert!(!w.open(3), "full window admits nothing");
        assert!(!w.open(1), "duplicate ids rejected");
        assert_eq!(w.oldest(), Some(1));
        assert!(w.close(1));
        assert!(!w.close(1), "double close rejected");
        assert!(w.open(3));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn zero_capacity_window_still_opens() {
        let mut w = InflightWindow::new(0);
        assert_eq!(w.capacity(), 1);
        assert!(w.open(1));
        assert!(w.is_full());
    }

    proptest! {
        #[test]
        fn frame_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Frame::decode(&bytes);
            let _ = FramePayload::decode(&bytes);
        }

        #[test]
        fn frame_encode_decode_identity(conn in 0u64..1 << 40, rid in 0u64..1 << 40) {
            let frame = Frame::request(conn, rid, sample_request());
            prop_assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
        }
    }
}
