//! Pooled transmit and payload buffers for the frame hot path.
//!
//! The framed transport (§5) moves one presentation page per request, and
//! at pipelined window depths every message used to pay a fresh `Vec`
//! allocation on encode, another on decode, and a third for the retransmit
//! copy. This module supplies the lease/recycle discipline that removes
//! them: a [`BufferPool`] keeps a small free list of byte buffers, a
//! [`PooledBuf`] lease returns its buffer to the pool when dropped, and
//! explicit [`BufferPool::lease_vec`]/[`BufferPool::recycle`] serve the
//! call sites where the buffer must cross an owning API boundary (a
//! response payload travelling inside a [`crate::ServerResponse`]).
//!
//! The pool is deliberately single-threaded (`Rc`/`RefCell`): the
//! simulation drives one connection at a time, and the crate forbids
//! `unsafe`. [`PoolStats`] counts hits, misses, and recycles so the
//! transport accounting can report allocations-per-page — the number the
//! E12/E14 experiments pin near zero.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::{Rc, Weak};

/// Lease/recycle accounting for one [`BufferPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Leases served from the free list (no allocation).
    pub hits: u64,
    /// Leases that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the free list.
    pub recycled: u64,
    /// Returned buffers dropped because the free list was at its
    /// retention cap.
    pub discarded: u64,
    /// Most buffers ever held on the free list at once.
    pub high_water: u64,
    /// Buffers stocked up front by [`BufferPool::prewarm`], counted apart
    /// from `recycled` so warmup never reads as steady-state traffic.
    pub prewarmed: u64,
}

/// The shared state behind a pool handle and its outstanding leases.
#[derive(Debug)]
struct PoolInner {
    free: Vec<Vec<u8>>,
    retain_cap: usize,
    stats: PoolStats,
}

impl PoolInner {
    /// Returns `buf` to the free list, or drops it at the retention cap.
    /// Zero-capacity buffers (a detached lease's husk) are never retained.
    fn give_back(&mut self, buf: Vec<u8>) {
        if buf.capacity() == 0 || self.free.len() >= self.retain_cap {
            self.stats.discarded += 1;
            return;
        }
        self.stats.recycled += 1;
        self.free.push(buf);
        self.stats.high_water = self.stats.high_water.max(self.free.len() as u64);
    }
}

/// A free list of reusable byte buffers. Cloning the handle shares the
/// pool; dropping the last handle drops the retained buffers.
#[derive(Clone, Debug)]
pub struct BufferPool {
    inner: Rc<RefCell<PoolInner>>,
}

impl BufferPool {
    /// Default retention cap: buffers kept on the free list beyond this
    /// are dropped instead of retained. Sized to a full pipelined window
    /// per direction with headroom; raise it with
    /// [`BufferPool::with_retain_cap`] for wider fleets.
    pub const DEFAULT_RETAIN_CAP: usize = 64;

    /// A pool with the default retention cap.
    pub fn new() -> Self {
        Self::with_retain_cap(Self::DEFAULT_RETAIN_CAP)
    }

    /// A pool retaining at most `retain_cap` free buffers.
    pub fn with_retain_cap(retain_cap: usize) -> Self {
        BufferPool {
            inner: Rc::new(RefCell::new(PoolInner {
                free: Vec::new(),
                retain_cap,
                stats: PoolStats::default(),
            })),
        }
    }

    /// Leases a cleared buffer that returns itself to the pool on drop.
    pub fn lease(&self) -> PooledBuf {
        PooledBuf { buf: self.lease_vec(), home: Rc::downgrade(&self.inner) }
    }

    /// Leases a cleared raw `Vec` for payloads that must own their bytes
    /// across an API boundary. Pair with [`BufferPool::recycle`] when the
    /// consumer is done with it.
    pub fn lease_vec(&self) -> Vec<u8> {
        let mut inner = self.inner.borrow_mut();
        match inner.free.pop() {
            Some(mut buf) => {
                inner.stats.hits += 1;
                buf.clear();
                buf
            }
            None => {
                inner.stats.misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a raw buffer to the free list (dropped beyond the
    /// retention cap).
    pub fn recycle(&self, buf: Vec<u8>) {
        self.inner.borrow_mut().give_back(buf);
    }

    /// Stocks the free list with up to `buffers` empty buffers of
    /// `capacity` bytes each, bounded by the retention cap. Cold-start
    /// leases then hit the free list instead of allocating, so small-run
    /// alloc metrics measure the steady state, not first-lease warmup.
    /// Prewarmed buffers are counted in [`PoolStats::prewarmed`], not
    /// `recycled`.
    pub fn prewarm(&self, buffers: usize, capacity: usize) {
        let mut inner = self.inner.borrow_mut();
        let capacity = capacity.max(1);
        let mut added = 0;
        while added < buffers && inner.free.len() < inner.retain_cap {
            added += 1;
            inner.stats.prewarmed += 1;
            inner.free.push(Vec::with_capacity(capacity));
            inner.stats.high_water = inner.stats.high_water.max(inner.free.len() as u64);
        }
    }

    /// Buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.inner.borrow().free.len()
    }

    /// Lease/recycle accounting so far.
    pub fn stats(&self) -> PoolStats {
        self.inner.borrow().stats
    }

    /// Zeroes the accounting; retained buffers are untouched.
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().stats = PoolStats::default();
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

/// A leased buffer that returns itself to its pool when dropped.
///
/// Derefs to `Vec<u8>`, so encode paths write into it directly. Use
/// [`PooledBuf::detach`] to move the bytes out permanently (the pool sees
/// a discard, not a recycle).
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    home: Weak<RefCell<PoolInner>>,
}

impl PooledBuf {
    /// Moves the bytes out of the lease; nothing returns to the pool.
    pub fn detach(mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(home) = self.home.upgrade() {
            home.borrow_mut().give_back(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_lease_misses_then_recycled_buffers_hit() {
        let pool = BufferPool::new();
        let mut buf = pool.lease_vec();
        buf.extend_from_slice(&[1, 2, 3]);
        let cap = buf.capacity();
        pool.recycle(buf);
        assert_eq!(pool.free_buffers(), 1);
        let again = pool.lease_vec();
        assert!(again.is_empty(), "leases come back cleared");
        assert_eq!(again.capacity(), cap, "the allocation is reused");
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.recycled), (1, 1, 1));
    }

    #[test]
    fn dropping_a_lease_returns_it_to_the_pool() {
        let pool = BufferPool::new();
        {
            let mut lease = pool.lease();
            lease.extend_from_slice(&[7; 32]);
        }
        assert_eq!(pool.free_buffers(), 1);
        assert_eq!(pool.stats().recycled, 1);
        let lease = pool.lease();
        assert!(lease.capacity() >= 32, "the dropped lease's allocation came back");
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn detached_leases_never_return() {
        let pool = BufferPool::new();
        let mut lease = pool.lease();
        lease.extend_from_slice(&[9; 8]);
        let owned = lease.detach();
        assert_eq!(owned, vec![9; 8]);
        assert_eq!(pool.free_buffers(), 0);
        // The drained husk is not retained either.
        assert_eq!(pool.stats().recycled, 0);
    }

    #[test]
    fn retention_cap_bounds_the_free_list() {
        let pool = BufferPool::with_retain_cap(2);
        for _ in 0..4 {
            let mut v = pool.lease_vec();
            v.push(1);
            pool.recycle(v);
            let _ = pool.lease_vec();
        }
        let mut extras: Vec<Vec<u8>> = (0..4).map(|_| pool.lease_vec()).collect();
        for v in &mut extras {
            v.push(1);
        }
        for v in extras {
            pool.recycle(v);
        }
        assert!(pool.free_buffers() <= 2, "retention cap holds");
        assert!(pool.stats().discarded > 0);
        assert!(pool.stats().high_water <= 2);
    }

    #[test]
    fn empty_returns_are_discarded_not_retained() {
        let pool = BufferPool::new();
        pool.recycle(Vec::new());
        assert_eq!(pool.free_buffers(), 0);
        assert_eq!(pool.stats().discarded, 1);
    }

    #[test]
    fn leases_outliving_the_pool_are_harmless() {
        let lease = {
            let pool = BufferPool::new();
            let mut l = pool.lease();
            l.push(1);
            l
        };
        drop(lease); // the pool is gone; the buffer is simply freed
    }

    #[test]
    fn prewarmed_leases_hit_without_counting_as_recycles() {
        let pool = BufferPool::new();
        pool.prewarm(4, 4_096);
        assert_eq!(pool.free_buffers(), 4);
        let stats = pool.stats();
        assert_eq!(stats.prewarmed, 4);
        assert_eq!(stats.recycled, 0);
        let buf = pool.lease_vec();
        assert!(buf.capacity() >= 4_096, "prewarmed capacity is real");
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "cold start is a hit now");
        // Prewarm respects the retention cap.
        let small = BufferPool::with_retain_cap(2);
        small.prewarm(10, 64);
        assert_eq!(small.free_buffers(), 2);
        assert_eq!(small.stats().prewarmed, 2);
    }

    #[test]
    fn reset_stats_zeroes_accounting_and_keeps_buffers() {
        let pool = BufferPool::new();
        let mut v = pool.lease_vec();
        v.push(1);
        pool.recycle(v);
        pool.reset_stats();
        assert_eq!(pool.stats(), PoolStats::default());
        assert_eq!(pool.free_buffers(), 1, "retained buffers survive a stats reset");
    }
}
