//! Communication substrate: the workstation ↔ server links.
//!
//! "We envision the overall system architecture for MINOS as being composed
//! of a multimedia object server subsystem and a number of workstations
//! interconnected through high capacity links. … The workstation is
//! connected to several other machines through Ethernet." (§5)
//!
//! The reproduction models a link as latency plus bandwidth with transfer
//! accounting (experiments E5/E6 are about bytes moved over this link), and
//! defines the binary request/response protocol between the presentation
//! manager and the object server.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fault;
pub mod frame;
pub mod link;
pub mod pool;
pub mod protocol;

pub use fault::{Delivery, FaultPlan, FaultRng, FaultStats, FaultyLink};
pub use frame::{crc32, Frame, FramePayload, InflightWindow, Priority};
pub use link::{Link, LinkStats, ETHERNET_10MBIT};
pub use pool::{BufferPool, PoolStats, PooledBuf};
pub use protocol::{ServerRequest, ServerResponse};
