//! The workstation ↔ server protocol.
//!
//! "The multimedia object presentation manager resides in the user's
//! workstation and requests the appropriate pieces of information from the
//! multimedia object server subsystems." (§5)
//!
//! The request vocabulary mirrors what the presentation manager needs:
//! whole archived objects, descriptor-pointed spans, *view windows* of
//! large images (so only the view's data crosses the link, §2), miniatures,
//! and content queries. Both directions have a binary encoding with
//! round-trip tests; encoded size is what the link model charges.

use minos_types::{
    varint_len, ByteSpan, Decoder, Encoder, MinosError, ObjectId, Rect, Result, SimDuration,
};

/// Wire bytes of a length-prefixed string or byte block.
fn prefixed_len(len: usize) -> u64 {
    prefixed_len_of(len as u64)
}

/// Wire bytes of a length-prefixed block whose body is `len` bytes.
fn prefixed_len_of(len: u64) -> u64 {
    varint_len(len) + len
}

/// A request from the workstation to the server.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServerRequest {
    /// Fetch the whole archived form of an object (descriptor +
    /// composition).
    FetchObject {
        /// The object wanted.
        id: ObjectId,
    },
    /// Fetch raw archiver bytes a descriptor pointer names.
    FetchSpan {
        /// The absolute archiver span.
        span: ByteSpan,
    },
    /// Fetch only the window of an image — the E5 path.
    FetchView {
        /// The owning object.
        id: ObjectId,
        /// The image's data tag within the object.
        tag: String,
        /// The requested window in image coordinates.
        rect: Rect,
    },
    /// Fetch an object's miniature for the sequential browsing interface.
    FetchMiniature {
        /// The object wanted.
        id: ObjectId,
    },
    /// Evaluate a content query: all keywords must match.
    Query {
        /// Conjunctive keywords.
        keywords: Vec<String>,
    },
    /// Evaluate an attribute query: exact attribute name/value match
    /// (attributes are the object's formatted data, §2).
    QueryAttribute {
        /// Attribute name.
        name: String,
        /// Attribute value.
        value: String,
    },
    /// Several requests answered in one round trip — the anticipatory
    /// prefetch path (§5). The presentation manager predicts the next
    /// pages/windows and bundles their fetches so the link latency and the
    /// optical actuator overhead are paid once per batch, not once per
    /// page. Batches never nest.
    Batch {
        /// The bundled requests, answered in order. None may itself be a
        /// batch.
        requests: Vec<ServerRequest>,
    },
    /// (Re-)establishes a connection with the server, announcing the last
    /// server epoch the workstation saw. The server answers with
    /// [`ServerResponse::Welcome`] carrying its current epoch; a mismatch
    /// tells the client its in-flight window was lost to a restart and
    /// must be replayed.
    Hello {
        /// The server epoch the client last observed (0 before any
        /// handshake).
        epoch: u64,
    },
    /// Asks the server how loaded it is without queueing any work. The
    /// server answers with [`ServerResponse::Busy`] whose `retry_after`
    /// is zero when the service queue is idle.
    Probe,
    /// A heartbeat from the health monitor. The server answers from
    /// memory with [`ServerResponse::Pong`] echoing the nonce and
    /// reporting its current epoch, so an *idle* connection still
    /// notices a restart (the epoch bumps) and a silent member is
    /// detected by the missing echo.
    Ping {
        /// Matches the heartbeat to its echo across reordering.
        nonce: u64,
    },
}

/// A response from the server.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServerResponse {
    /// Whole-object bytes.
    Object(Vec<u8>),
    /// Raw span bytes.
    Span(Vec<u8>),
    /// A view window's pixels (image-payload encoded).
    View(Vec<u8>),
    /// A miniature (image-payload encoded).
    Miniature(Vec<u8>),
    /// Ids of qualifying objects.
    Hits(Vec<ObjectId>),
    /// Server-side failure.
    Error(String),
    /// One response per request of a [`ServerRequest::Batch`], in request
    /// order. Individual failures appear as inline [`ServerResponse::Error`]
    /// entries; the batch itself still succeeds.
    Batch(Vec<ServerResponse>),
    /// Answers [`ServerRequest::Hello`] with the server's current epoch.
    Welcome {
        /// The server's current epoch; bumped by every restart.
        epoch: u64,
    },
    /// The admission-control rejection: the service queue is over its cap
    /// and this request was shed (§5 overload policy). Also answers
    /// [`ServerRequest::Probe`] as a pure load report.
    Busy {
        /// How long the client should wait before resubmitting.
        retry_after: SimDuration,
    },
    /// Answers [`ServerRequest::Ping`]: the heartbeat echo, carrying the
    /// server's current epoch so restart detection is not request-driven.
    Pong {
        /// The nonce of the `Ping` being answered.
        nonce: u64,
        /// The server's current epoch; bumped by every restart.
        epoch: u64,
    },
}

impl ServerRequest {
    /// Encodes this request into an existing encoder — the inline form
    /// the framed transport's pooled encode path uses, so wrapping a
    /// request in a [`crate::Frame`] never materializes an intermediate
    /// `Vec` per message. [`ServerRequest::encode`] is the owning wrapper.
    pub fn encode_to(&self, e: &mut Encoder) {
        match self {
            ServerRequest::FetchObject { id } => {
                e.put_u8(1);
                e.put_u64(id.raw());
            }
            ServerRequest::FetchSpan { span } => {
                e.put_u8(2);
                e.put_varint(span.start);
                e.put_varint(span.end);
            }
            ServerRequest::FetchView { id, tag, rect } => {
                e.put_u8(3);
                e.put_u64(id.raw());
                e.put_str(tag);
                e.put_i32(rect.origin.x);
                e.put_i32(rect.origin.y);
                e.put_u32(rect.size.width);
                e.put_u32(rect.size.height);
            }
            ServerRequest::FetchMiniature { id } => {
                e.put_u8(4);
                e.put_u64(id.raw());
            }
            ServerRequest::Query { keywords } => {
                e.put_u8(5);
                e.put_varint(keywords.len() as u64);
                for k in keywords {
                    e.put_str(k);
                }
            }
            ServerRequest::QueryAttribute { name, value } => {
                e.put_u8(6);
                e.put_str(name);
                e.put_str(value);
            }
            ServerRequest::Batch { requests } => {
                e.put_u8(7);
                e.put_varint(requests.len() as u64);
                for r in requests {
                    // Length prefix computed arithmetically, body encoded
                    // in place: no per-sub-request buffer.
                    e.put_varint(r.wire_size());
                    r.encode_to(e);
                }
            }
            ServerRequest::Hello { epoch } => {
                e.put_u8(8);
                e.put_varint(*epoch);
            }
            ServerRequest::Probe => {
                e.put_u8(9);
            }
            ServerRequest::Ping { nonce } => {
                e.put_u8(10);
                e.put_varint(*nonce);
            }
        }
    }

    /// Encodes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode_to(&mut e);
        e.finish()
    }

    /// Decodes from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<ServerRequest> {
        let mut d = Decoder::new(bytes);
        let req = match d.get_u8()? {
            1 => ServerRequest::FetchObject { id: ObjectId::new(d.get_u64()?) },
            2 => {
                let start = d.get_varint()?;
                let end = d.get_varint()?;
                if start > end {
                    return Err(MinosError::Codec("inverted span in request".into()));
                }
                ServerRequest::FetchSpan { span: ByteSpan::new(start, end) }
            }
            3 => {
                let id = ObjectId::new(d.get_u64()?);
                let tag = d.get_str()?;
                let x = d.get_i32()?;
                let y = d.get_i32()?;
                let w = d.get_u32()?;
                let h = d.get_u32()?;
                ServerRequest::FetchView { id, tag, rect: Rect::new(x, y, w, h) }
            }
            4 => ServerRequest::FetchMiniature { id: ObjectId::new(d.get_u64()?) },
            5 => {
                // Element counts go through `get_len`: every element costs
                // at least one byte, so a count beyond the remaining input
                // is rejected before any allocation or loop.
                let n = d.get_len()?;
                let mut keywords = Vec::with_capacity(n);
                for _ in 0..n {
                    keywords.push(d.get_str()?);
                }
                ServerRequest::Query { keywords }
            }
            6 => ServerRequest::QueryAttribute { name: d.get_str()?, value: d.get_str()? },
            7 => {
                let n = d.get_len()?;
                let mut requests = Vec::with_capacity(n);
                for _ in 0..n {
                    let sub = ServerRequest::decode(d.get_bytes_ref()?)?;
                    if matches!(sub, ServerRequest::Batch { .. }) {
                        return Err(MinosError::Codec("nested request batch".into()));
                    }
                    requests.push(sub);
                }
                ServerRequest::Batch { requests }
            }
            8 => ServerRequest::Hello { epoch: d.get_varint()? },
            9 => ServerRequest::Probe,
            10 => ServerRequest::Ping { nonce: d.get_varint()? },
            other => return Err(MinosError::Codec(format!("unknown request tag {other}"))),
        };
        d.expect_end()?;
        Ok(req)
    }

    /// Bytes on the wire, computed arithmetically — measuring a request
    /// never materializes its encoding.
    pub fn wire_size(&self) -> u64 {
        1 + match self {
            ServerRequest::FetchObject { .. } | ServerRequest::FetchMiniature { .. } => 8,
            ServerRequest::FetchSpan { span } => varint_len(span.start) + varint_len(span.end),
            ServerRequest::FetchView { tag, .. } => 8 + prefixed_len(tag.len()) + 16,
            ServerRequest::Query { keywords } => {
                varint_len(keywords.len() as u64)
                    + keywords.iter().map(|k| prefixed_len(k.len())).sum::<u64>()
            }
            ServerRequest::QueryAttribute { name, value } => {
                prefixed_len(name.len()) + prefixed_len(value.len())
            }
            ServerRequest::Batch { requests } => {
                varint_len(requests.len() as u64)
                    + requests.iter().map(|r| prefixed_len_of(r.wire_size())).sum::<u64>()
            }
            ServerRequest::Hello { epoch } => varint_len(*epoch),
            ServerRequest::Probe => 0,
            ServerRequest::Ping { nonce } => varint_len(*nonce),
        }
    }

    /// A field-by-field copy for the heap-free request variants — the
    /// control-plane messages (`FetchObject`, `FetchSpan`,
    /// `FetchMiniature`, `Hello`, `Probe`, `Ping`) that a borrowing
    /// submit path can duplicate without touching the allocator. Returns
    /// `None` for the heap-carrying variants, which must go through the
    /// pooled encode path instead.
    pub fn plain_copy(&self) -> Option<ServerRequest> {
        match self {
            ServerRequest::FetchObject { id } => Some(ServerRequest::FetchObject { id: *id }),
            ServerRequest::FetchSpan { span } => Some(ServerRequest::FetchSpan { span: *span }),
            ServerRequest::FetchMiniature { id } => Some(ServerRequest::FetchMiniature { id: *id }),
            ServerRequest::Hello { epoch } => Some(ServerRequest::Hello { epoch: *epoch }),
            ServerRequest::Probe => Some(ServerRequest::Probe),
            ServerRequest::Ping { nonce } => Some(ServerRequest::Ping { nonce: *nonce }),
            ServerRequest::FetchView { .. }
            | ServerRequest::Query { .. }
            | ServerRequest::QueryAttribute { .. }
            | ServerRequest::Batch { .. } => None,
        }
    }

    /// The fetched span, if this is a span fetch (used by transports that
    /// coalesce adjacent span requests into one device read).
    pub fn as_span(&self) -> Option<ByteSpan> {
        match self {
            ServerRequest::FetchSpan { span } => Some(*span),
            _ => None,
        }
    }
}

impl ServerResponse {
    /// Encodes this response into an existing encoder — the inline form
    /// the framed transport's pooled encode path uses.
    /// [`ServerResponse::encode`] is the owning wrapper.
    pub fn encode_to(&self, e: &mut Encoder) {
        match self {
            ServerResponse::Object(b) => {
                e.put_u8(1);
                e.put_bytes(b);
            }
            ServerResponse::Span(b) => {
                e.put_u8(2);
                e.put_bytes(b);
            }
            ServerResponse::View(b) => {
                e.put_u8(3);
                e.put_bytes(b);
            }
            ServerResponse::Miniature(b) => {
                e.put_u8(4);
                e.put_bytes(b);
            }
            ServerResponse::Hits(ids) => {
                e.put_u8(5);
                e.put_varint(ids.len() as u64);
                for id in ids {
                    e.put_varint(id.raw());
                }
            }
            ServerResponse::Error(msg) => {
                e.put_u8(6);
                e.put_str(msg);
            }
            ServerResponse::Batch(responses) => {
                e.put_u8(7);
                e.put_varint(responses.len() as u64);
                for r in responses {
                    e.put_varint(r.wire_size());
                    r.encode_to(e);
                }
            }
            ServerResponse::Welcome { epoch } => {
                e.put_u8(8);
                e.put_varint(*epoch);
            }
            ServerResponse::Busy { retry_after } => {
                e.put_u8(9);
                e.put_varint(retry_after.as_micros());
            }
            ServerResponse::Pong { nonce, epoch } => {
                e.put_u8(10);
                e.put_varint(*nonce);
                e.put_varint(*epoch);
            }
        }
    }

    /// Encodes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode_to(&mut e);
        e.finish()
    }

    /// Decodes from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<ServerResponse> {
        let mut d = Decoder::new(bytes);
        let resp = match d.get_u8()? {
            1 => ServerResponse::Object(d.get_bytes()?),
            2 => ServerResponse::Span(d.get_bytes()?),
            3 => ServerResponse::View(d.get_bytes()?),
            4 => ServerResponse::Miniature(d.get_bytes()?),
            5 => {
                // Bounded against remaining input, as in request decoding.
                let n = d.get_len()?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(ObjectId::new(d.get_varint()?));
                }
                ServerResponse::Hits(ids)
            }
            6 => ServerResponse::Error(d.get_str()?),
            7 => {
                let n = d.get_len()?;
                let mut responses = Vec::with_capacity(n);
                for _ in 0..n {
                    let sub = ServerResponse::decode(d.get_bytes_ref()?)?;
                    if matches!(sub, ServerResponse::Batch(_)) {
                        return Err(MinosError::Codec("nested response batch".into()));
                    }
                    responses.push(sub);
                }
                ServerResponse::Batch(responses)
            }
            8 => ServerResponse::Welcome { epoch: d.get_varint()? },
            9 => ServerResponse::Busy { retry_after: SimDuration::from_micros(d.get_varint()?) },
            10 => {
                let nonce = d.get_varint()?;
                let epoch = d.get_varint()?;
                ServerResponse::Pong { nonce, epoch }
            }
            other => return Err(MinosError::Codec(format!("unknown response tag {other}"))),
        };
        d.expect_end()?;
        Ok(resp)
    }

    /// Bytes on the wire — what the link charges for this response —
    /// computed arithmetically, never copying the payload.
    pub fn wire_size(&self) -> u64 {
        1 + match self {
            ServerResponse::Object(b)
            | ServerResponse::Span(b)
            | ServerResponse::View(b)
            | ServerResponse::Miniature(b) => prefixed_len(b.len()),
            ServerResponse::Hits(ids) => {
                varint_len(ids.len() as u64)
                    + ids.iter().map(|id| varint_len(id.raw())).sum::<u64>()
            }
            ServerResponse::Error(msg) => prefixed_len(msg.len()),
            ServerResponse::Batch(responses) => {
                varint_len(responses.len() as u64)
                    + responses.iter().map(|r| prefixed_len_of(r.wire_size())).sum::<u64>()
            }
            ServerResponse::Welcome { epoch } => varint_len(*epoch),
            ServerResponse::Busy { retry_after } => varint_len(retry_after.as_micros()),
            ServerResponse::Pong { nonce, epoch } => varint_len(*nonce) + varint_len(*epoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_requests() -> Vec<ServerRequest> {
        vec![
            ServerRequest::FetchObject { id: ObjectId::new(7) },
            ServerRequest::FetchSpan { span: ByteSpan::at(1_000, 500) },
            ServerRequest::FetchView {
                id: ObjectId::new(3),
                tag: "map".into(),
                rect: Rect::new(-5, 10, 200, 100),
            },
            ServerRequest::FetchMiniature { id: ObjectId::new(1) },
            ServerRequest::Query { keywords: vec!["x-ray".into(), "shadow".into()] },
            ServerRequest::Query { keywords: vec![] },
            ServerRequest::QueryAttribute { name: "author".into(), value: "dr jones".into() },
            ServerRequest::Hello { epoch: 3 },
            ServerRequest::Hello { epoch: u64::MAX },
            ServerRequest::Probe,
            ServerRequest::Ping { nonce: 0 },
            ServerRequest::Ping { nonce: u64::MAX },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in all_requests() {
            let bytes = req.encode();
            assert_eq!(ServerRequest::decode(&bytes).unwrap(), req, "{req:?}");
            assert_eq!(req.wire_size(), bytes.len() as u64);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            ServerResponse::Object(vec![1, 2, 3]),
            ServerResponse::Span(vec![]),
            ServerResponse::View(vec![9; 100]),
            ServerResponse::Miniature(vec![4; 10]),
            ServerResponse::Hits(vec![ObjectId::new(1), ObjectId::new(99)]),
            ServerResponse::Hits(vec![]),
            ServerResponse::Error("no such object".into()),
            ServerResponse::Welcome { epoch: 0 },
            ServerResponse::Welcome { epoch: u64::MAX },
            ServerResponse::Busy { retry_after: SimDuration::ZERO },
            ServerResponse::Busy { retry_after: SimDuration::from_micros(12_500) },
            ServerResponse::Pong { nonce: 0, epoch: 0 },
            ServerResponse::Pong { nonce: u64::MAX, epoch: 17 },
        ];
        for resp in responses {
            let bytes = resp.encode();
            assert_eq!(ServerResponse::decode(&bytes).unwrap(), resp, "{resp:?}");
            assert_eq!(resp.wire_size(), bytes.len() as u64, "wire_size of {resp:?}");
        }
    }

    #[test]
    fn batch_wire_sizes_match_encoding() {
        let req = ServerRequest::Batch { requests: all_requests() };
        assert_eq!(req.wire_size(), req.encode().len() as u64);
        let resp = ServerResponse::Batch(vec![
            ServerResponse::Span(vec![7; 300]),
            ServerResponse::Error("missing".into()),
            ServerResponse::Hits(vec![ObjectId::new(u64::MAX)]),
        ]);
        assert_eq!(resp.wire_size(), resp.encode().len() as u64);
    }

    #[test]
    fn huge_claimed_counts_are_rejected_before_allocation() {
        // A count varint claiming ~2^62 elements with two bytes of input
        // left must fail the bound check, not size a Vec or spin a loop.
        let mut e = Encoder::new();
        e.put_u8(5); // Query / Hits tag in either direction.
        e.put_varint(1 << 62);
        e.put_raw(&[0, 0]);
        let bytes = e.finish();
        assert!(matches!(ServerRequest::decode(&bytes), Err(MinosError::Codec(_))));
        assert!(matches!(ServerResponse::decode(&bytes), Err(MinosError::Codec(_))));
        let mut e = Encoder::new();
        e.put_u8(7); // Batch tag.
        e.put_varint(u64::MAX);
        let bytes = e.finish();
        assert!(ServerRequest::decode(&bytes).is_err());
        assert!(ServerResponse::decode(&bytes).is_err());
    }

    #[test]
    fn bad_tags_and_truncation_rejected() {
        assert!(ServerRequest::decode(&[99]).is_err());
        assert!(ServerResponse::decode(&[0]).is_err());
        assert!(ServerRequest::decode(&[]).is_err());
        let bytes = ServerRequest::FetchObject { id: ObjectId::new(1) }.encode();
        assert!(ServerRequest::decode(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage rejected.
        let mut bytes = ServerResponse::Error("x".into()).encode();
        bytes.push(0);
        assert!(ServerResponse::decode(&bytes).is_err());
    }

    #[test]
    fn batches_round_trip() {
        let req = ServerRequest::Batch { requests: all_requests() };
        assert_eq!(ServerRequest::decode(&req.encode()).unwrap(), req);
        let empty = ServerRequest::Batch { requests: vec![] };
        assert_eq!(ServerRequest::decode(&empty.encode()).unwrap(), empty);

        let resp = ServerResponse::Batch(vec![
            ServerResponse::Span(vec![1, 2, 3]),
            ServerResponse::Error("missing".into()),
            ServerResponse::Object(vec![]),
        ]);
        assert_eq!(ServerResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn nested_batches_rejected() {
        let nested =
            ServerRequest::Batch { requests: vec![ServerRequest::Batch { requests: vec![] }] };
        assert!(ServerRequest::decode(&nested.encode()).is_err());
        let nested = ServerResponse::Batch(vec![ServerResponse::Batch(vec![])]);
        assert!(ServerResponse::decode(&nested.encode()).is_err());
    }

    #[test]
    fn batch_wire_overhead_is_small() {
        // Batching adds framing only: one tag + count + per-item length
        // prefixes. The whole point is that it is much cheaper than the
        // per-message link latency it replaces.
        let requests = all_requests();
        let singles: u64 = requests.iter().map(ServerRequest::wire_size).sum();
        let batch = ServerRequest::Batch { requests };
        assert!(batch.wire_size() < singles + 16);
    }

    #[test]
    fn view_request_is_small_regardless_of_window() {
        let small = ServerRequest::FetchView {
            id: ObjectId::new(1),
            tag: "map".into(),
            rect: Rect::new(0, 0, 10, 10),
        };
        let huge = ServerRequest::FetchView {
            id: ObjectId::new(1),
            tag: "map".into(),
            rect: Rect::new(0, 0, 100_000, 100_000),
        };
        assert_eq!(small.wire_size(), huge.wire_size());
        assert!(small.wire_size() < 64);
    }

    proptest! {
        #[test]
        fn query_round_trips(keywords in proptest::collection::vec(".{0,12}", 0..8)) {
            let req = ServerRequest::Query { keywords };
            prop_assert_eq!(ServerRequest::decode(&req.encode()).unwrap(), req);
        }

        #[test]
        fn hits_round_trip(ids in proptest::collection::vec(any::<u64>(), 0..32)) {
            let resp = ServerResponse::Hits(ids.into_iter().map(ObjectId::new).collect());
            prop_assert_eq!(ServerResponse::decode(&resp.encode()).unwrap(), resp);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = ServerRequest::decode(&bytes);
            let _ = ServerResponse::decode(&bytes);
        }
    }
}
