//! Deterministic link-fault injection.
//!
//! The paper's §5 architecture assumes the presentation manager survives
//! whatever the shared LAN does to its frames. This module supplies the
//! adversary: a [`FaultyLink`] wraps a [`Link`] and, driven by a seeded
//! [`FaultPlan`], can drop, bit-flip, truncate, duplicate, and delay
//! (reorder) the frames that cross it. Every decision comes from a
//! deterministic generator seeded by the plan, so a failing run replays
//! exactly from its seed.
//!
//! Two invariants shape the model:
//!
//! - **Wire time is charged for lost bytes.** A dropped or mangled frame
//!   occupied the link for its full original length; the fault layer only
//!   decides what (if anything) comes out the far end.
//! - **The fault layer never interprets bytes.** It mangles the encoded
//!   frame; integrity is the receiver's job (the CRC32 trailer added by
//!   `Frame::encode`), recovery is the connection's job (deadlines and
//!   retransmission in `core::remote`).

use crate::link::{Link, LinkStats};
use minos_types::SimDuration;
use std::borrow::Cow;

/// A deterministic pseudo-random stream for fault decisions (SplitMix64).
///
/// Small, seedable, and statistically adequate for Bernoulli draws; kept
/// local so the fault model needs no external randomness dependency.
#[derive(Clone, Debug)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from `seed`; equal seeds replay equal streams.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Bernoulli draw: `true` with probability `p`. Probabilities at or
    /// below zero (and at or above one) are decided without consuming a
    /// draw, so disabling one fault kind does not shift the stream of
    /// another plan sharing the seed.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits, the standard unit-interval construction.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform draw in `0..n` (`0` when `n` is zero).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }
}

/// What a link is allowed to do to frames, as independent per-frame
/// probabilities. All zeros (see [`FaultPlan::none`]) is the perfect link
/// every transport had before this module existed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the decision stream; equal seeds replay equal fault
    /// sequences.
    pub seed: u64,
    /// Probability a frame vanishes entirely (wire time still charged).
    pub drop: f64,
    /// Probability one bit of the frame is flipped.
    pub corrupt: f64,
    /// Probability the frame is cut short at a random length.
    pub truncate: f64,
    /// Probability the frame is delivered twice.
    pub duplicate: f64,
    /// Probability the frame is delayed by [`FaultPlan::reorder_delay`],
    /// letting later frames overtake it.
    pub reorder: f64,
    /// How long a reordered frame is held back.
    pub reorder_delay: SimDuration,
}

impl FaultPlan {
    /// The perfect link: no faults, ever.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            corrupt: 0.0,
            truncate: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_delay: SimDuration::ZERO,
        }
    }

    /// A plan that only flips bits, at `rate` per frame — the E13 axis.
    pub fn corrupting(seed: u64, rate: f64) -> Self {
        FaultPlan { seed, corrupt: rate, ..FaultPlan::none() }
    }

    /// A plan that only drops frames, at `rate` per frame.
    pub fn dropping(seed: u64, rate: f64) -> Self {
        FaultPlan { seed, drop: rate, ..FaultPlan::none() }
    }

    /// A plan that exercises every fault kind at `rate`, with a 10 ms
    /// reorder hold — the fuzz-corpus shape.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            drop: rate,
            corrupt: rate,
            truncate: rate,
            duplicate: rate,
            reorder: rate,
            reorder_delay: SimDuration::from_millis(10),
        }
    }

    /// Whether this plan can never alter a frame. Clean plans let
    /// transports keep their zero-copy fast path.
    pub fn is_clean(&self) -> bool {
        self.drop <= 0.0
            && self.corrupt <= 0.0
            && self.truncate <= 0.0
            && self.duplicate <= 0.0
            && self.reorder <= 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Counts of what the fault layer actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames presented to the fault layer.
    pub frames: u64,
    /// Frames that vanished.
    pub dropped: u64,
    /// Frames with a flipped bit.
    pub corrupted: u64,
    /// Frames cut short.
    pub truncated: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames held back by the reorder delay.
    pub delayed: u64,
}

/// One copy of a frame that made it out of the fault layer: the (possibly
/// mangled) bytes and any extra delivery delay beyond the wire transfer.
///
/// Pristine copies *borrow* the sender's encoded bytes — the clean path
/// and unmangled duplicates cost nothing — and the bytes are owned only
/// when a corruption or truncation actually rewrote them. Receivers that
/// must keep a copy past the sender's buffer call
/// [`Cow::into_owned`] on [`Delivery::bytes`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery<'a> {
    /// The bytes the receiver sees.
    pub bytes: Cow<'a, [u8]>,
    /// Extra hold beyond the transfer time (zero unless reordered).
    pub delay: SimDuration,
}

impl FaultPlan {
    /// Runs one frame through the plan: zero deliveries for a drop, two
    /// for a duplicate, otherwise one — mangled or pristine. Decisions are
    /// drawn from `rng` in a fixed order (drop, corrupt, truncate,
    /// reorder, duplicate) so runs replay exactly.
    pub fn apply<'a>(
        &self,
        rng: &mut FaultRng,
        bytes: &'a [u8],
        stats: &mut FaultStats,
    ) -> Vec<Delivery<'a>> {
        stats.frames += 1;
        if self.is_clean() {
            return vec![Delivery { bytes: Cow::Borrowed(bytes), delay: SimDuration::ZERO }];
        }
        if rng.chance(self.drop) {
            stats.dropped += 1;
            return Vec::new();
        }
        // Copy-on-mangle: the frame stays borrowed until a fault actually
        // rewrites it.
        let mut out: Cow<'a, [u8]> = Cow::Borrowed(bytes);
        if rng.chance(self.corrupt) && !out.is_empty() {
            stats.corrupted += 1;
            let at = rng.below(out.len() as u64) as usize;
            let mask = 1u8 << rng.below(8);
            if let Some(byte) = out.to_mut().get_mut(at) {
                *byte ^= mask;
            }
        }
        if rng.chance(self.truncate) && !out.is_empty() {
            stats.truncated += 1;
            let keep = rng.below(out.len() as u64) as usize;
            out.to_mut().truncate(keep);
        }
        let delay = if rng.chance(self.reorder) {
            stats.delayed += 1;
            self.reorder_delay
        } else {
            SimDuration::ZERO
        };
        let mut deliveries = vec![Delivery { bytes: out, delay }];
        if rng.chance(self.duplicate) {
            stats.duplicated += 1;
            // A pristine duplicate borrows too; only a mangled one clones.
            let copy = deliveries.first().map(|d| d.bytes.clone()).unwrap_or(Cow::Borrowed(bytes));
            deliveries.push(Delivery { bytes: copy, delay: SimDuration::ZERO });
        }
        deliveries
    }
}

/// A [`Link`] with a fault plan attached.
///
/// Transfers charge the wrapped link for the *original* frame length —
/// dropped and mangled bytes still occupied the wire — and then hand the
/// plan's deliveries back to the caller, which decodes (or fails to
/// decode) each copy on its own.
#[derive(Clone, Debug)]
pub struct FaultyLink {
    link: Link,
    plan: FaultPlan,
    rng: FaultRng,
    stats: FaultStats,
}

impl FaultyLink {
    /// Attaches `plan` to `link`.
    pub fn new(link: Link, plan: FaultPlan) -> Self {
        FaultyLink { link, plan, rng: FaultRng::new(plan.seed), stats: FaultStats::default() }
    }

    /// A faulty link whose plan is clean — behaves exactly like the bare
    /// `link`.
    pub fn clean(link: Link) -> Self {
        FaultyLink::new(link, FaultPlan::none())
    }

    /// Whether the plan can never alter a frame.
    pub fn is_clean(&self) -> bool {
        self.plan.is_clean()
    }

    /// The attached plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// The wrapped link's transfer accounting.
    pub fn stats(&self) -> LinkStats {
        self.link.stats()
    }

    /// What the fault layer has done so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// Pure cost query for transferring `bytes` over the wrapped link.
    pub fn transfer_cost(&self, bytes: u64) -> SimDuration {
        self.link.transfer_cost(bytes)
    }

    /// Charges wire time for `bytes` without fault processing — the typed
    /// fast path transports keep when the plan is clean.
    pub fn charge(&mut self, bytes: u64) -> SimDuration {
        self.link.transfer(bytes)
    }

    /// Transfers one encoded frame: charges wire time for its full length,
    /// then returns what the far end receives (possibly nothing, possibly
    /// two copies, possibly mangled bytes). Pristine deliveries borrow
    /// `bytes`; only mangled ones own a rewritten copy.
    pub fn transmit<'a>(&mut self, bytes: &'a [u8]) -> (SimDuration, Vec<Delivery<'a>>) {
        let took = self.link.transfer(bytes.len() as u64);
        let deliveries = self.plan.apply(&mut self.rng, bytes, &mut self.stats);
        (took, deliveries)
    }

    /// Resets link accounting, fault counters, and the decision stream
    /// back to the seed (between experiment configurations).
    pub fn reset(&mut self) {
        self.link.reset_stats();
        self.stats = FaultStats::default();
        self.rng = FaultRng::new(self.plan.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes() -> Vec<u8> {
        (0u16..200).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn clean_plan_is_a_passthrough() {
        let mut fl = FaultyLink::clean(Link::ethernet());
        assert!(fl.is_clean());
        let bytes = frame_bytes();
        let (took, deliveries) = fl.transmit(&bytes);
        assert_eq!(took, Link::ethernet().transfer_cost(bytes.len() as u64));
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].bytes, bytes);
        assert_eq!(deliveries[0].delay, SimDuration::ZERO);
        assert!(
            matches!(deliveries[0].bytes, Cow::Borrowed(_)),
            "the clean path borrows the sender's bytes instead of copying"
        );
        assert_eq!(fl.fault_stats().frames, 1);
        assert_eq!(fl.fault_stats().dropped, 0);
    }

    #[test]
    fn drops_still_charge_wire_time() {
        let mut fl = FaultyLink::new(Link::ethernet(), FaultPlan::dropping(7, 1.0));
        let bytes = frame_bytes();
        let (took, deliveries) = fl.transmit(&bytes);
        assert!(deliveries.is_empty());
        assert!(took > SimDuration::ZERO);
        let stats = fl.stats();
        assert_eq!(stats.bytes, bytes.len() as u64, "lost bytes occupied the wire");
        assert_eq!(fl.fault_stats().dropped, 1);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut fl = FaultyLink::new(Link::ethernet(), FaultPlan::corrupting(3, 1.0));
        let bytes = frame_bytes();
        let (_, deliveries) = fl.transmit(&bytes);
        assert_eq!(deliveries.len(), 1);
        let out = &deliveries[0].bytes;
        assert_eq!(out.len(), bytes.len());
        let flipped: u32 = out.iter().zip(&bytes).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit differs");
        assert!(
            matches!(out, Cow::Owned(_)),
            "a mangled frame owns its rewritten bytes; the original is untouched"
        );
        assert_eq!(fl.fault_stats().corrupted, 1);
    }

    #[test]
    fn duplicates_deliver_two_copies() {
        let plan = FaultPlan { seed: 11, duplicate: 1.0, ..FaultPlan::none() };
        let mut fl = FaultyLink::new(Link::ethernet(), plan);
        let bytes = frame_bytes();
        let (_, deliveries) = fl.transmit(&bytes);
        assert_eq!(deliveries.len(), 2);
        assert_eq!(deliveries[0].bytes, bytes);
        assert_eq!(deliveries[1].bytes, bytes);
        assert!(
            deliveries.iter().all(|d| matches!(d.bytes, Cow::Borrowed(_))),
            "pristine duplicates borrow: duplication alone copies nothing"
        );
        assert_eq!(fl.fault_stats().duplicated, 1);
    }

    #[test]
    fn reorder_holds_the_frame_back() {
        let plan = FaultPlan {
            seed: 5,
            reorder: 1.0,
            reorder_delay: SimDuration::from_millis(25),
            ..FaultPlan::none()
        };
        let mut fl = FaultyLink::new(Link::ethernet(), plan);
        let bytes = frame_bytes();
        let (_, deliveries) = fl.transmit(&bytes);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].delay, SimDuration::from_millis(25));
        assert_eq!(fl.fault_stats().delayed, 1);
    }

    #[test]
    fn seeded_runs_replay_exactly() {
        let plan = FaultPlan::chaos(42, 0.3);
        let mut a = FaultyLink::new(Link::ethernet(), plan);
        let mut b = FaultyLink::new(Link::ethernet(), plan);
        for _ in 0..50 {
            let bytes = frame_bytes();
            assert_eq!(a.transmit(&bytes), b.transmit(&bytes));
        }
        assert_eq!(a.fault_stats(), b.fault_stats());
        // A reset replays the same stream again.
        let before = a.fault_stats();
        a.reset();
        for _ in 0..50 {
            let _ = a.transmit(&frame_bytes());
        }
        assert_eq!(a.fault_stats(), before);
    }

    #[test]
    fn reset_clears_all_accounting() {
        let mut fl = FaultyLink::new(Link::ethernet(), FaultPlan::chaos(9, 0.5));
        for _ in 0..20 {
            let _ = fl.transmit(&frame_bytes());
        }
        assert!(fl.stats().bytes > 0);
        assert!(fl.fault_stats().frames > 0);
        fl.reset();
        assert_eq!(fl.stats(), LinkStats::default());
        assert_eq!(fl.fault_stats(), FaultStats::default());
    }

    #[test]
    fn fault_rates_are_roughly_honoured() {
        let mut fl = FaultyLink::new(Link::ethernet(), FaultPlan::dropping(123, 0.25));
        let bytes = frame_bytes();
        for _ in 0..2_000 {
            let _ = fl.transmit(&bytes);
        }
        let dropped = fl.fault_stats().dropped;
        assert!((400..600).contains(&dropped), "25% of 2000 ≈ 500, got {dropped}");
    }

    #[test]
    fn zero_probability_draws_consume_no_stream() {
        // Disabling a fault kind must not shift the decisions of the
        // remaining kinds, or tightening a plan would reshuffle a replay.
        let mut a = FaultRng::new(77);
        let mut b = FaultRng::new(77);
        assert!(!a.chance(0.0));
        assert!(a.chance(1.0));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
