//! Energy-based pause detection with adaptive short/long classification.
//!
//! "Pause is a segment of digitized voice which does not contain any sound
//! (in practice the intensity of the registered sound is very small). The
//! user may specify that the audio is replayed starting from a number of
//! short or long pauses back from the current position. … The exact timing
//! for short, and long pauses depends on the speaker and the section of the
//! speech. It is decided from the current context by sampling." (§2)
//!
//! Detection thresholds window energy against a fraction of the buffer's
//! peak; classification clusters the durations of *nearby* pauses
//! (two-means over the context window), so a fast talker's 120 ms breath
//! can be a long pause while a slow dictator's 120 ms gap is a short one —
//! exactly the speaker-adaptivity the paper asks for.

use crate::pcm::AudioBuffer;
use minos_types::{SimDuration, SimInstant, TimeSpan};

/// Short vs long pause, the two rewind granularities of §2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PauseKind {
    /// Roughly a word-boundary pause.
    Short,
    /// Roughly a paragraph-boundary pause.
    Long,
}

/// A detected silence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectedPause {
    /// When the silence occupies the voice part.
    pub span: TimeSpan,
    /// Adaptive classification.
    pub kind: PauseKind,
}

/// Detector configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PauseDetectorConfig {
    /// Energy analysis window.
    pub window: SimDuration,
    /// Silence threshold as a fraction of the buffer's peak mean-abs window
    /// energy.
    pub threshold_ratio: f64,
    /// Gaps shorter than this are intra-word articulation, not pauses.
    pub min_pause: SimDuration,
    /// Width of the context sampled around each pause for adaptive
    /// classification.
    pub context: SimDuration,
}

impl Default for PauseDetectorConfig {
    fn default() -> Self {
        PauseDetectorConfig {
            window: SimDuration::from_millis(10),
            threshold_ratio: 0.12,
            min_pause: SimDuration::from_millis(25),
            context: SimDuration::from_secs(45),
        }
    }
}

/// The pause detector.
#[derive(Clone, Copy, Debug, Default)]
pub struct PauseDetector {
    config: PauseDetectorConfig,
}

impl PauseDetector {
    /// Creates a detector with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a detector with an explicit configuration.
    pub fn with_config(config: PauseDetectorConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> PauseDetectorConfig {
        self.config
    }

    /// Detects and classifies all pauses in `audio`.
    pub fn detect(&self, audio: &AudioBuffer) -> Vec<DetectedPause> {
        let raw = self.silent_spans(audio);
        self.classify(&raw)
    }

    /// Phase 1: silence spans by energy thresholding.
    fn silent_spans(&self, audio: &AudioBuffer) -> Vec<TimeSpan> {
        if audio.is_empty() {
            return Vec::new();
        }
        let windows = audio.energy_windows(self.config.window);
        let peak = windows.iter().map(|&(_, e)| e).max().unwrap_or(0);
        if peak == 0 {
            // All silence: one pause covering everything.
            return vec![TimeSpan::new(SimInstant::EPOCH, SimInstant::EPOCH + audio.duration())];
        }
        // Threshold: a fraction of the peak window energy, but never below
        // twice the estimated noise floor (the 10th-percentile window
        // energy), so that a loud floor — dictation over a telephone line —
        // still separates from speech. Capped at half the peak so a
        // pause-free recording cannot push the "floor" into speech energy.
        let mut energies: Vec<u32> = windows.iter().map(|&(_, e)| e).collect();
        let p10_idx = energies.len() / 10;
        let noise_floor = *energies.select_nth_unstable(p10_idx).1;
        let ratio_threshold = ((peak as f64) * self.config.threshold_ratio).max(1.0) as u32;
        let threshold = ratio_threshold.max((2 * noise_floor).min(peak / 2));
        let mut spans: Vec<TimeSpan> = Vec::new();
        let mut open: Option<usize> = None;
        for &(start_sample, energy) in &windows {
            if energy < threshold {
                if open.is_none() {
                    open = Some(start_sample);
                }
            } else if let Some(s) = open.take() {
                spans.push(TimeSpan::new(audio.instant_of(s), audio.instant_of(start_sample)));
            }
        }
        if let Some(s) = open {
            spans.push(TimeSpan::new(audio.instant_of(s), SimInstant::EPOCH + audio.duration()));
        }
        spans.retain(|s| s.duration() >= self.config.min_pause);
        spans
    }

    /// Phase 2: classify each silence as short or long by clustering the
    /// durations of pauses within the surrounding context window.
    fn classify(&self, spans: &[TimeSpan]) -> Vec<DetectedPause> {
        spans
            .iter()
            .map(|&span| {
                let center = span.start;
                let ctx_lo = center.saturating_since(SimInstant::EPOCH + self.config.context / 2);
                let ctx_lo = SimInstant::EPOCH + ctx_lo; // clamped lower bound
                let ctx_hi = center + self.config.context / 2;
                let context: Vec<u64> = spans
                    .iter()
                    .filter(|s| s.start >= ctx_lo && s.start <= ctx_hi)
                    .map(|s| s.duration().as_micros())
                    .collect();
                let kind = classify_duration(span.duration().as_micros(), &context);
                DetectedPause { span, kind }
            })
            .collect()
    }
}

/// One-dimensional two-means clustering. Returns the (low, high) cluster
/// means, or `None` when the input has fewer than two values or converges
/// to a single cluster.
fn two_means(values: &[u64]) -> Option<(f64, f64)> {
    if values.len() < 2 {
        return None;
    }
    let min = *values.iter().min().unwrap() as f64;
    let max = *values.iter().max().unwrap() as f64;
    if min == max {
        return None;
    }
    let (mut lo, mut hi) = (min, max);
    for _ in 0..24 {
        let mid = (lo + hi) / 2.0;
        let (mut lo_sum, mut lo_n, mut hi_sum, mut hi_n) = (0.0f64, 0u32, 0.0f64, 0u32);
        for &d in values {
            if (d as f64) < mid {
                lo_sum += d as f64;
                lo_n += 1;
            } else {
                hi_sum += d as f64;
                hi_n += 1;
            }
        }
        if lo_n == 0 || hi_n == 0 {
            return None;
        }
        let (new_lo, new_hi) = (lo_sum / lo_n as f64, hi_sum / hi_n as f64);
        let converged = (new_lo - lo).abs() < 1.0 && (new_hi - hi).abs() < 1.0;
        lo = new_lo;
        hi = new_hi;
        if converged {
            break;
        }
    }
    Some((lo, hi))
}

/// Two-means clustering of pause durations; `duration` is long if it falls
/// in the upper cluster *and* the clusters are genuinely separated
/// (mean ratio ≥ 2). With an unimodal context everything is short — a
/// speech with no paragraph breaks has no long pauses.
fn classify_duration(duration: u64, context: &[u64]) -> PauseKind {
    let Some((lo, hi)) = two_means(context) else {
        return PauseKind::Short;
    };
    if hi < 2.0 * lo.max(1.0) {
        return PauseKind::Short;
    }
    let boundary = (lo + hi) / 2.0;
    if (duration as f64) >= boundary {
        PauseKind::Long
    } else {
        PauseKind::Short
    }
}

/// The playback position that results from "replay starting from `n` `kind`
/// pauses back from `current`" (§2): the end of the n-th matching pause at
/// or before `current`, i.e. the start of the speech that follows it.
/// Fewer than `n` such pauses rewinds to the very beginning.
pub fn rewind_position(
    pauses: &[DetectedPause],
    kind: PauseKind,
    n: usize,
    current: SimInstant,
) -> SimInstant {
    if n == 0 {
        return current;
    }
    let mut seen = 0;
    for p in pauses.iter().rev() {
        if p.kind != kind {
            continue;
        }
        if p.span.end > current {
            continue;
        }
        seen += 1;
        if seen == n {
            return p.span.end;
        }
    }
    SimInstant::EPOCH
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SpeakerProfile};
    use crate::transcript::GapKind;

    fn t(ms: u64) -> SimInstant {
        SimInstant::from_micros(ms * 1_000)
    }

    const TEXT: &str = "alpha beta gamma delta epsilon. zeta eta theta iota kappa.\n\
                        lambda mu nu xi omicron. pi rho sigma tau upsilon.\n\
                        phi chi psi omega alpha. beta gamma delta epsilon zeta.";

    #[test]
    fn detects_roughly_one_pause_per_gap() {
        let (audio, tr) = synthesize(TEXT, &SpeakerProfile::CLEAR, 42);
        let pauses = PauseDetector::new().detect(&audio);
        let n_gaps = tr.gaps.len();
        assert!(
            pauses.len() >= n_gaps * 8 / 10 && pauses.len() <= n_gaps * 12 / 10,
            "detected {} pauses for {} true gaps",
            pauses.len(),
            n_gaps
        );
    }

    #[test]
    fn detected_pauses_overlap_true_gaps() {
        let (audio, tr) = synthesize(TEXT, &SpeakerProfile::CLEAR, 42);
        let pauses = PauseDetector::new().detect(&audio);
        let matched =
            pauses.iter().filter(|p| tr.gaps.iter().any(|g| g.span.overlaps(&p.span))).count();
        assert!(
            matched * 10 >= pauses.len() * 9,
            "only {matched}/{} detected pauses overlap a true gap",
            pauses.len()
        );
    }

    #[test]
    fn paragraph_gaps_are_classified_long() {
        let (audio, tr) = synthesize(TEXT, &SpeakerProfile::CLEAR, 7);
        let pauses = PauseDetector::new().detect(&audio);
        for g in tr.gaps.iter().filter(|g| g.kind == GapKind::Paragraph) {
            let hit = pauses.iter().find(|p| p.span.overlaps(&g.span));
            let hit = hit.expect("paragraph gap not detected at all");
            assert_eq!(hit.kind, PauseKind::Long, "paragraph gap classified short");
        }
    }

    #[test]
    fn word_gaps_are_classified_short() {
        let (audio, tr) = synthesize(TEXT, &SpeakerProfile::CLEAR, 7);
        let pauses = PauseDetector::new().detect(&audio);
        let word_gaps: Vec<_> = tr.gaps.iter().filter(|g| g.kind == GapKind::Word).collect();
        let misclassified = word_gaps
            .iter()
            .filter(|g| {
                pauses.iter().any(|p| p.span.overlaps(&g.span) && p.kind == PauseKind::Long)
            })
            .count();
        assert!(
            misclassified * 10 <= word_gaps.len(),
            "{misclassified}/{} word gaps classified long",
            word_gaps.len()
        );
    }

    #[test]
    fn uniform_speech_has_no_long_pauses() {
        // One paragraph, no sentence ends: all gaps are word gaps, so the
        // duration distribution is unimodal and nothing should be "long".
        let text: String = (0..40).map(|i| format!("word{i}")).collect::<Vec<_>>().join(" ");
        let (audio, _) = synthesize(&text, &SpeakerProfile::CLEAR, 3);
        let pauses = PauseDetector::new().detect(&audio);
        assert!(!pauses.is_empty());
        assert!(
            pauses.iter().all(|p| p.kind == PauseKind::Short),
            "long pauses found in uniform speech"
        );
    }

    #[test]
    fn silence_only_buffer_is_one_pause() {
        let audio = AudioBuffer::from_samples(vec![0; 8_000], 8_000);
        let pauses = PauseDetector::new().detect(&audio);
        assert_eq!(pauses.len(), 1);
        assert_eq!(pauses[0].span.duration(), SimDuration::from_secs(1));
    }

    #[test]
    fn empty_buffer_has_no_pauses() {
        let audio = AudioBuffer::new(8_000);
        assert!(PauseDetector::new().detect(&audio).is_empty());
    }

    #[test]
    fn rewind_position_walks_back_matching_pauses() {
        let pauses = vec![
            DetectedPause { span: TimeSpan::new(t(100), t(150)), kind: PauseKind::Short },
            DetectedPause { span: TimeSpan::new(t(300), t(350)), kind: PauseKind::Long },
            DetectedPause { span: TimeSpan::new(t(500), t(550)), kind: PauseKind::Short },
        ];
        let cur = t(700);
        assert_eq!(rewind_position(&pauses, PauseKind::Short, 1, cur), t(550));
        assert_eq!(rewind_position(&pauses, PauseKind::Short, 2, cur), t(150));
        assert_eq!(rewind_position(&pauses, PauseKind::Long, 1, cur), t(350));
        // More pauses than exist: back to the beginning.
        assert_eq!(rewind_position(&pauses, PauseKind::Short, 5, cur), SimInstant::EPOCH);
        // Zero pauses back: stay put.
        assert_eq!(rewind_position(&pauses, PauseKind::Short, 0, cur), cur);
    }

    #[test]
    fn rewind_ignores_pauses_after_current() {
        let pauses = vec![
            DetectedPause { span: TimeSpan::new(t(100), t(150)), kind: PauseKind::Short },
            DetectedPause { span: TimeSpan::new(t(500), t(550)), kind: PauseKind::Short },
        ];
        assert_eq!(rewind_position(&pauses, PauseKind::Short, 1, t(400)), t(150));
    }

    #[test]
    fn classify_duration_edge_cases() {
        // Not enough context: short.
        assert_eq!(classify_duration(1_000_000, &[1_000_000]), PauseKind::Short);
        // Clearly bimodal context: the big one is long.
        let ctx = [50_000u64, 60_000, 55_000, 900_000, 950_000, 52_000];
        assert_eq!(classify_duration(900_000, &ctx), PauseKind::Long);
        assert_eq!(classify_duration(55_000, &ctx), PauseKind::Short);
        // Tight unimodal context: everything short.
        let ctx = [50_000u64, 52_000, 51_000, 53_000];
        assert_eq!(classify_duration(53_000, &ctx), PauseKind::Short);
    }

    #[test]
    fn detector_works_on_noisy_profile() {
        let (audio, tr) = synthesize(TEXT, &SpeakerProfile::NOISY, 13);
        let pauses = PauseDetector::new().detect(&audio);
        // Degraded but functional: at least half the true gaps are found.
        let found =
            tr.gaps.iter().filter(|g| pauses.iter().any(|p| p.span.overlaps(&g.span))).count();
        assert!(found * 2 >= tr.gaps.len(), "found {found}/{}", tr.gaps.len());
    }
}
