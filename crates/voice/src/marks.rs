//! Manually identified logical units over voice.
//!
//! "The logical components of voice may be manually identified at the time
//! of the insertion by pressing the appropriate buttons (or at some later
//! point in time). … The degree of desired editing varies according to the
//! importance of information. For example, in a certain object, only
//! identification of chapters may be desirable." (§2)
//!
//! [`VoiceMarks`] records which levels were identified and the start
//! instants of each unit, and exposes the *same* navigation API as the text
//! tree ([`minos_text::LogicalTree`]) — shared [`LogicalLevel`], next/prev
//! start — which is the voice half of the paper's symmetric design.

use crate::transcript::Transcript;
use minos_text::LogicalLevel;
use minos_types::SimInstant;
use std::collections::BTreeMap;

/// Logical unit start marks for one voice part.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VoiceMarks {
    starts: BTreeMap<LogicalLevel, Vec<SimInstant>>,
}

impl VoiceMarks {
    /// No marks: the unedited-dictation case. Logical browsing is then
    /// unavailable and only pause-based browsing works.
    pub fn none() -> Self {
        Self::default()
    }

    /// Records the start marks for one level (sorted automatically).
    /// Simulates the speaker pressing the level's button at those moments.
    pub fn with_level(mut self, level: LogicalLevel, mut starts: Vec<SimInstant>) -> Self {
        starts.sort_unstable();
        starts.dedup();
        if !starts.is_empty() {
            self.starts.insert(level, starts);
        }
        self
    }

    /// Derives marks from a ground-truth transcript for the given levels —
    /// the "edited at insertion time" case where the speaker marked units
    /// accurately. Which `levels` are passed models the paper's varying
    /// degree of editing.
    pub fn from_transcript(transcript: &Transcript, levels: &[LogicalLevel]) -> Self {
        let mut marks = VoiceMarks::default();
        for &level in levels {
            let starts: Vec<SimInstant> = match level {
                LogicalLevel::Paragraph | LogicalLevel::Chapter | LogicalLevel::Section => {
                    // Voice dictation has no explicit chapter/section
                    // structure; the speaker's coarse marks are paragraph
                    // starts promoted to the requested level.
                    transcript.paragraph_starts.clone()
                }
                LogicalLevel::Sentence => transcript.sentence_starts.clone(),
                LogicalLevel::Word => transcript.words.iter().map(|w| w.span.start).collect(),
            };
            marks = marks.with_level(level, starts);
        }
        marks
    }

    /// Levels with at least one mark, coarsest first. Drives which logical
    /// browsing menu options appear for the object.
    pub fn available_levels(&self) -> Vec<LogicalLevel> {
        LogicalLevel::ALL.into_iter().filter(|l| self.starts.contains_key(l)).collect()
    }

    /// The marks at `level`, sorted.
    pub fn starts(&self, level: LogicalLevel) -> &[SimInstant] {
        self.starts.get(&level).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The first unit start strictly after `t` ("next chapter").
    pub fn next_start_after(&self, level: LogicalLevel, t: SimInstant) -> Option<SimInstant> {
        let starts = self.starts(level);
        let idx = starts.partition_point(|&s| s <= t);
        starts.get(idx).copied()
    }

    /// The last unit start strictly before `t` ("previous chapter").
    pub fn prev_start_before(&self, level: LogicalLevel, t: SimInstant) -> Option<SimInstant> {
        let starts = self.starts(level);
        let idx = starts.partition_point(|&s| s < t);
        idx.checked_sub(1).map(|i| starts[i])
    }

    /// Number of marks at `level`.
    pub fn count(&self, level: LogicalLevel) -> usize {
        self.starts(level).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SpeakerProfile};

    fn t(ms: u64) -> SimInstant {
        SimInstant::from_micros(ms * 1_000)
    }

    #[test]
    fn no_marks_means_no_logical_browsing() {
        let m = VoiceMarks::none();
        assert!(m.available_levels().is_empty());
        assert_eq!(m.next_start_after(LogicalLevel::Chapter, t(0)), None);
    }

    #[test]
    fn with_level_sorts_and_dedups() {
        let m = VoiceMarks::none()
            .with_level(LogicalLevel::Paragraph, vec![t(500), t(100), t(500), t(300)]);
        assert_eq!(m.starts(LogicalLevel::Paragraph), &[t(100), t(300), t(500)]);
    }

    #[test]
    fn navigation_next_and_prev() {
        let m =
            VoiceMarks::none().with_level(LogicalLevel::Paragraph, vec![t(0), t(1_000), t(2_000)]);
        assert_eq!(m.next_start_after(LogicalLevel::Paragraph, t(0)), Some(t(1_000)));
        assert_eq!(m.next_start_after(LogicalLevel::Paragraph, t(1_500)), Some(t(2_000)));
        assert_eq!(m.next_start_after(LogicalLevel::Paragraph, t(2_000)), None);
        assert_eq!(m.prev_start_before(LogicalLevel::Paragraph, t(1_500)), Some(t(1_000)));
        assert_eq!(m.prev_start_before(LogicalLevel::Paragraph, t(0)), None);
    }

    #[test]
    fn from_transcript_selected_levels_only() {
        let (_, tr) = synthesize(
            "one two three. four five.\nsecond paragraph here.",
            &SpeakerProfile::CLEAR,
            9,
        );
        let m = VoiceMarks::from_transcript(&tr, &[LogicalLevel::Paragraph]);
        assert_eq!(m.available_levels(), vec![LogicalLevel::Paragraph]);
        assert_eq!(m.count(LogicalLevel::Paragraph), 2);

        let m2 = VoiceMarks::from_transcript(
            &tr,
            &[LogicalLevel::Paragraph, LogicalLevel::Sentence, LogicalLevel::Word],
        );
        assert_eq!(m2.count(LogicalLevel::Sentence), 3);
        assert_eq!(m2.count(LogicalLevel::Word), tr.words.len());
        assert_eq!(
            m2.available_levels(),
            vec![LogicalLevel::Paragraph, LogicalLevel::Sentence, LogicalLevel::Word]
        );
    }

    #[test]
    fn marks_align_with_transcript_word_starts() {
        let (_, tr) = synthesize("alpha beta. gamma delta.", &SpeakerProfile::CLEAR, 2);
        let m = VoiceMarks::from_transcript(&tr, &[LogicalLevel::Sentence]);
        for &s in m.starts(LogicalLevel::Sentence) {
            assert!(tr.words.iter().any(|w| w.span.start == s));
        }
    }

    #[test]
    fn empty_level_vector_is_ignored() {
        let m = VoiceMarks::none().with_level(LogicalLevel::Chapter, vec![]);
        assert!(m.available_levels().is_empty());
    }
}
