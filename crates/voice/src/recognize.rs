//! The limited-vocabulary voice recognizer simulation.
//!
//! "Voice recognition is not taking place at the time of browsing. Instead,
//! some voice segments have been recognized at the time of voice insertion,
//! or at machine's idle time, from the digitized voice. The recognized
//! voice segments are used to provide content addressibility and browsing
//! by using the same access methods as in text." (§2)
//!
//! Real 1986 recognizers were limited-vocabulary and error-prone; rather
//! than pretend otherwise, the simulation exposes the two error knobs that
//! matter to the retrieval experiments: the *hit rate* (probability an
//! in-vocabulary spoken word is recognized) and the *false-alarm rate*
//! (probability a non-vocabulary word is mistaken for a vocabulary word).
//! Experiment E4 sweeps these knobs and measures pattern-browsing recall.

use crate::transcript::Transcript;
use minos_text::search::normalize_word;
use minos_types::SimInstant;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A word the recognizer claims was spoken at an instant of the voice part.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecognizedUtterance {
    /// The recognized (normalized) vocabulary word.
    pub word: String,
    /// Start of the utterance within the voice part.
    pub at: SimInstant,
}

/// Recognizer error model.
#[derive(Clone, Debug, PartialEq)]
pub struct RecognizerConfig {
    /// Probability that a spoken in-vocabulary word is recognized.
    pub hit_rate: f64,
    /// Probability that a spoken out-of-vocabulary word is misrecognized as
    /// some vocabulary word.
    pub false_alarm_rate: f64,
    /// RNG seed (recognition happens once, at insertion or idle time, so a
    /// fixed seed per object models its frozen result).
    pub seed: u64,
}

impl Default for RecognizerConfig {
    fn default() -> Self {
        // A decent mid-80s isolated-word recognizer on a cooperative
        // speaker: most vocabulary words found, few false alarms.
        RecognizerConfig { hit_rate: 0.85, false_alarm_rate: 0.02, seed: 0 }
    }
}

/// A limited-vocabulary recognizer.
#[derive(Clone, Debug)]
pub struct Recognizer {
    vocabulary: BTreeSet<String>,
    config: RecognizerConfig,
}

impl Recognizer {
    /// Creates a recognizer for the given vocabulary (normalized; an
    /// ordered set keeps false-alarm substitution deterministic).
    pub fn new<I, S>(vocabulary: I, config: RecognizerConfig) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        assert!((0.0..=1.0).contains(&config.hit_rate), "hit_rate out of range");
        assert!((0.0..=1.0).contains(&config.false_alarm_rate), "false_alarm_rate out of range");
        let vocabulary = vocabulary
            .into_iter()
            .map(|w| normalize_word(w.as_ref()))
            .filter(|w| !w.is_empty())
            .collect();
        Recognizer { vocabulary, config }
    }

    /// The vocabulary size.
    pub fn vocabulary_size(&self) -> usize {
        self.vocabulary.len()
    }

    /// Whether `word` is in vocabulary (after normalization).
    pub fn knows(&self, word: &str) -> bool {
        self.vocabulary.contains(&normalize_word(word))
    }

    /// Runs recognition over the (ground-truth) transcript, producing the
    /// utterances that would have been stored with the object. The
    /// transcript stands in for the digitized voice the real system
    /// processed; the error model stands in for the acoustic front end.
    pub fn recognize(&self, transcript: &Transcript) -> Vec<RecognizedUtterance> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let vocab: Vec<&String> = self.vocabulary.iter().collect();
        let mut out = Vec::new();
        for spoken in &transcript.words {
            let normalized = normalize_word(&spoken.text);
            if normalized.is_empty() {
                continue;
            }
            if self.vocabulary.contains(&normalized) {
                if rng.gen_bool(self.config.hit_rate) {
                    out.push(RecognizedUtterance { word: normalized, at: spoken.span.start });
                }
            } else if !vocab.is_empty() && rng.gen_bool(self.config.false_alarm_rate) {
                let wrong = vocab[rng.gen_range(0..vocab.len())].clone();
                out.push(RecognizedUtterance { word: wrong, at: spoken.span.start });
            }
        }
        out
    }
}

/// Sorted lookup structure over recognized utterances: the voice-side
/// analogue of [`minos_text::WordIndex`], answering "next occurrence of
/// this spoken pattern after the current position".
#[derive(Clone, Debug, Default)]
pub struct UtteranceIndex {
    /// Utterances sorted by instant.
    utterances: Vec<RecognizedUtterance>,
}

impl UtteranceIndex {
    /// Builds the index (sorts by instant).
    pub fn new(mut utterances: Vec<RecognizedUtterance>) -> Self {
        utterances.sort_by_key(|u| u.at);
        UtteranceIndex { utterances }
    }

    /// All indexed utterances, time order.
    pub fn utterances(&self) -> &[RecognizedUtterance] {
        &self.utterances
    }

    /// First occurrence of `word` strictly after `t`.
    pub fn next_occurrence(&self, word: &str, t: SimInstant) -> Option<SimInstant> {
        let w = normalize_word(word);
        self.utterances.iter().find(|u| u.at > t && u.word == w).map(|u| u.at)
    }

    /// Last occurrence of `word` strictly before `t`.
    pub fn prev_occurrence(&self, word: &str, t: SimInstant) -> Option<SimInstant> {
        let w = normalize_word(word);
        self.utterances.iter().rev().find(|u| u.at < t && u.word == w).map(|u| u.at)
    }

    /// All occurrences of `word`, time order.
    pub fn occurrences(&self, word: &str) -> Vec<SimInstant> {
        let w = normalize_word(word);
        self.utterances.iter().filter(|u| u.word == w).map(|u| u.at).collect()
    }

    /// Distinct recognized words.
    pub fn vocabulary(&self) -> BTreeSet<&str> {
        self.utterances.iter().map(|u| u.word.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SpeakerProfile};

    const TEXT: &str = "the x-ray shows a shadow on the left lung. \
                        the shadow is small. review the x-ray next week.";

    fn transcript() -> Transcript {
        synthesize(TEXT, &SpeakerProfile::CLEAR, 1).1
    }

    #[test]
    fn perfect_recognizer_finds_all_vocabulary_words() {
        let tr = transcript();
        let r = Recognizer::new(
            ["x-ray", "shadow", "lung"],
            RecognizerConfig { hit_rate: 1.0, false_alarm_rate: 0.0, seed: 5 },
        );
        let utts = r.recognize(&tr);
        assert_eq!(utts.len(), 5); // x-ray ×2, shadow ×2, lung ×1
        assert!(utts.iter().all(|u| ["x-ray", "shadow", "lung"].contains(&u.word.as_str())));
    }

    #[test]
    fn zero_hit_rate_finds_nothing() {
        let tr = transcript();
        let r = Recognizer::new(
            ["x-ray"],
            RecognizerConfig { hit_rate: 0.0, false_alarm_rate: 0.0, seed: 5 },
        );
        assert!(r.recognize(&tr).is_empty());
    }

    #[test]
    fn recognition_is_deterministic_per_seed() {
        let tr = transcript();
        let mk = |seed| {
            Recognizer::new(
                ["x-ray", "shadow"],
                RecognizerConfig { hit_rate: 0.6, false_alarm_rate: 0.1, seed },
            )
            .recognize(&tr)
        };
        assert_eq!(mk(3), mk(3));
    }

    #[test]
    fn false_alarms_emit_vocabulary_words_at_real_positions() {
        let tr = transcript();
        let r = Recognizer::new(
            ["zebra"], // never actually spoken
            RecognizerConfig { hit_rate: 1.0, false_alarm_rate: 1.0, seed: 2 },
        );
        let utts = r.recognize(&tr);
        assert_eq!(utts.len(), tr.words.len()); // every word misrecognized
        assert!(utts.iter().all(|u| u.word == "zebra"));
        for u in &utts {
            assert!(tr.words.iter().any(|w| w.span.start == u.at));
        }
    }

    #[test]
    fn utterances_are_anchored_at_word_starts() {
        let tr = transcript();
        let r = Recognizer::new(["shadow"], RecognizerConfig::default());
        for u in r.recognize(&tr) {
            let w = tr.words.iter().find(|w| w.span.start == u.at).expect("anchor");
            assert_eq!(normalize_word(&w.text), "shadow");
        }
    }

    #[test]
    fn vocabulary_is_normalized() {
        let r = Recognizer::new(["X-Ray.", "  ", "(Lung)"], RecognizerConfig::default());
        assert_eq!(r.vocabulary_size(), 2);
        assert!(r.knows("x-ray"));
        assert!(r.knows("LUNG"));
        assert!(!r.knows("shadow"));
    }

    #[test]
    #[should_panic(expected = "hit_rate")]
    fn invalid_hit_rate_rejected() {
        let _ = Recognizer::new(
            ["a"],
            RecognizerConfig { hit_rate: 1.5, false_alarm_rate: 0.0, seed: 0 },
        );
    }

    #[test]
    fn index_navigation() {
        let tr = transcript();
        let r = Recognizer::new(
            ["x-ray", "shadow"],
            RecognizerConfig { hit_rate: 1.0, false_alarm_rate: 0.0, seed: 0 },
        );
        let idx = UtteranceIndex::new(r.recognize(&tr));
        let first = idx.next_occurrence("x-ray", SimInstant::EPOCH).unwrap();
        let second = idx.next_occurrence("x-ray", first).unwrap();
        assert!(second > first);
        assert_eq!(idx.next_occurrence("x-ray", second), None);
        assert_eq!(idx.prev_occurrence("x-ray", second), Some(first));
        assert_eq!(idx.occurrences("shadow").len(), 2);
        assert_eq!(idx.occurrences("absent").len(), 0);
        assert_eq!(idx.vocabulary().len(), 2);
    }

    #[test]
    fn index_sorts_unsorted_input() {
        let t = |ms: u64| SimInstant::from_micros(ms * 1000);
        let idx = UtteranceIndex::new(vec![
            RecognizedUtterance { word: "b".into(), at: t(200) },
            RecognizedUtterance { word: "a".into(), at: t(100) },
        ]);
        assert_eq!(idx.utterances()[0].at, t(100));
    }
}
