//! Ground-truth evaluation of pause browsing (experiment E2).
//!
//! The paper concedes that pause-based browsing has "no guarantee that
//! these mechanisms will match word boundaries and paragraph boundaries"
//! (§2) but argues the combination of short and long rewinds gives usable
//! browsing "near the current context". Because the reproduction's speech
//! is synthetic, we can *measure* that claim: how many true gaps the
//! detector finds, how often its long/short labels agree with the speaker's
//! word/sentence vs paragraph boundaries, and how far (in words) an
//! "N short pauses back" rewind lands from the ideal "N words back" target.

use crate::pause::{rewind_position, DetectedPause, PauseKind};
use crate::transcript::{GapKind, Transcript};

/// Detection and classification quality against ground truth.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PauseEvalReport {
    /// True silence gaps in the speech.
    pub true_gaps: usize,
    /// Pauses the detector reported.
    pub detected: usize,
    /// Detected pauses overlapping some true gap.
    pub matched: usize,
    /// Fraction of detections that are real gaps.
    pub precision: f64,
    /// Fraction of real gaps that were detected.
    pub recall: f64,
    /// Of detected pauses overlapping *paragraph* gaps, the fraction
    /// classified long.
    pub long_recall: f64,
    /// Of pauses classified long, the fraction overlapping paragraph gaps.
    pub long_precision: f64,
}

/// Compares detected pauses to the transcript's true gaps.
pub fn evaluate_pauses(transcript: &Transcript, pauses: &[DetectedPause]) -> PauseEvalReport {
    let true_gaps = transcript.gaps.len();
    let detected = pauses.len();
    let mut matched = 0;
    let mut long_detected = 0;
    let mut long_correct = 0;
    let mut paragraph_gaps = 0;
    let mut paragraph_found_long = 0;

    for p in pauses {
        let overlapping = transcript.gaps.iter().find(|g| g.span.overlaps(&p.span));
        if overlapping.is_some() {
            matched += 1;
        }
        if p.kind == PauseKind::Long {
            long_detected += 1;
            if overlapping.map(|g| g.kind == GapKind::Paragraph).unwrap_or(false) {
                long_correct += 1;
            }
        }
    }
    for g in &transcript.gaps {
        if g.kind == GapKind::Paragraph {
            paragraph_gaps += 1;
            if pauses.iter().any(|p| p.kind == PauseKind::Long && p.span.overlaps(&g.span)) {
                paragraph_found_long += 1;
            }
        }
    }

    let ratio = |num: usize, den: usize| if den == 0 { 0.0 } else { num as f64 / den as f64 };
    // A detected pause can only match one gap; count distinct matched gaps
    // for recall.
    let matched_gaps =
        transcript.gaps.iter().filter(|g| pauses.iter().any(|p| p.span.overlaps(&g.span))).count();

    PauseEvalReport {
        true_gaps,
        detected,
        matched,
        precision: ratio(matched, detected),
        recall: ratio(matched_gaps, true_gaps),
        long_recall: ratio(paragraph_found_long, paragraph_gaps),
        long_precision: ratio(long_correct, long_detected),
    }
}

/// Outcome of one simulated rewind interaction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RewindOutcome {
    /// Word index the user was hearing when they rewound.
    pub from_word: usize,
    /// Word index they intended to reach (`from_word - n`).
    pub target_word: usize,
    /// Word index playback actually resumed at.
    pub landed_word: usize,
    /// |landed − target| in words: the paper's "no guarantee" quantified.
    pub error_words: usize,
}

/// Simulates "rewind `n` short pauses to go back `n` words" from the start
/// of word `from_word`, returning where playback lands relative to the
/// intended word. Returns `None` if `from_word` is out of range.
pub fn rewind_word_accuracy(
    transcript: &Transcript,
    pauses: &[DetectedPause],
    from_word: usize,
    n: usize,
) -> Option<RewindOutcome> {
    let from = transcript.words.get(from_word)?.span.start;
    let target_word = from_word.saturating_sub(n);
    let landed_at = rewind_position(pauses, PauseKind::Short, n, from);
    let landed_word = transcript.word_at_or_after(landed_at).unwrap_or(transcript.words.len());
    Some(RewindOutcome {
        from_word,
        target_word,
        landed_word,
        error_words: landed_word.abs_diff(target_word),
    })
}

/// Mean rewind error (in words) over every feasible `(from, n)` pair with
/// the given `n`, the series experiment E2 reports.
pub fn mean_rewind_error(transcript: &Transcript, pauses: &[DetectedPause], n: usize) -> f64 {
    let mut total = 0usize;
    let mut count = 0usize;
    for from in n..transcript.words.len() {
        if let Some(outcome) = rewind_word_accuracy(transcript, pauses, from, n) {
            total += outcome.error_words;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pause::PauseDetector;
    use crate::synth::{synthesize, SpeakerProfile};

    const TEXT: &str = "alpha beta gamma delta epsilon. zeta eta theta iota kappa.\n\
                        lambda mu nu xi omicron. pi rho sigma tau upsilon.";

    #[test]
    fn clear_speech_evaluates_well() {
        let (audio, tr) = synthesize(TEXT, &SpeakerProfile::CLEAR, 21);
        let pauses = PauseDetector::new().detect(&audio);
        let report = evaluate_pauses(&tr, &pauses);
        assert!(report.precision > 0.9, "precision {}", report.precision);
        assert!(report.recall > 0.9, "recall {}", report.recall);
        assert!(report.long_recall > 0.9, "long recall {}", report.long_recall);
    }

    #[test]
    fn noisy_speech_degrades_gracefully() {
        let (audio, tr) = synthesize(TEXT, &SpeakerProfile::NOISY, 21);
        let pauses = PauseDetector::new().detect(&audio);
        let report = evaluate_pauses(&tr, &pauses);
        // Still functional, but quantifiably worse than perfect.
        assert!(report.recall > 0.3, "recall {}", report.recall);
    }

    #[test]
    fn rewind_on_clear_speech_is_accurate() {
        let (audio, tr) = synthesize(TEXT, &SpeakerProfile::CLEAR, 33);
        let pauses = PauseDetector::new().detect(&audio);
        for n in 1..=3 {
            let err = mean_rewind_error(&tr, &pauses, n);
            assert!(err <= 1.5, "mean rewind error {err} for n={n}");
        }
    }

    #[test]
    fn rewind_outcome_fields_are_consistent() {
        let (audio, tr) = synthesize(TEXT, &SpeakerProfile::CLEAR, 3);
        let pauses = PauseDetector::new().detect(&audio);
        let o = rewind_word_accuracy(&tr, &pauses, 5, 2).unwrap();
        assert_eq!(o.from_word, 5);
        assert_eq!(o.target_word, 3);
        assert_eq!(o.error_words, o.landed_word.abs_diff(o.target_word));
    }

    #[test]
    fn rewind_from_out_of_range_word_is_none() {
        let (audio, tr) = synthesize("a b c", &SpeakerProfile::CLEAR, 3);
        let pauses = PauseDetector::new().detect(&audio);
        assert!(rewind_word_accuracy(&tr, &pauses, 99, 1).is_none());
    }

    #[test]
    fn empty_inputs_give_zeroed_report() {
        let report = evaluate_pauses(&Transcript::default(), &[]);
        assert_eq!(report.true_gaps, 0);
        assert_eq!(report.detected, 0);
        assert_eq!(report.precision, 0.0);
        assert_eq!(report.recall, 0.0);
        assert_eq!(mean_rewind_error(&Transcript::default(), &[], 1), 0.0);
    }
}
