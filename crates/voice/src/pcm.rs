//! Sampled audio buffers.
//!
//! Digitized voice in the reproduction is 16-bit mono PCM at a configurable
//! rate (8 kHz by default — telephone quality, in keeping with the paper's
//! "access information using telephones"). The pause detector and the
//! playback engine both operate on this representation.

use minos_types::{SimDuration, SimInstant, TimeSpan};

/// Default sampling rate, samples per second.
pub const DEFAULT_SAMPLE_RATE: u32 = 8_000;

/// A mono PCM buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AudioBuffer {
    samples: Vec<i16>,
    sample_rate: u32,
}

impl AudioBuffer {
    /// Creates an empty buffer at `sample_rate` Hz.
    pub fn new(sample_rate: u32) -> Self {
        assert!(sample_rate > 0, "sample rate must be positive");
        Self { samples: Vec::new(), sample_rate }
    }

    /// Creates a buffer from raw samples.
    pub fn from_samples(samples: Vec<i16>, sample_rate: u32) -> Self {
        assert!(sample_rate > 0, "sample rate must be positive");
        Self { samples, sample_rate }
    }

    /// The samples.
    pub fn samples(&self) -> &[i16] {
        &self.samples
    }

    /// Samples per second.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total duration of the buffer.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_micros(self.samples.len() as u64 * 1_000_000 / self.sample_rate as u64)
    }

    /// Appends raw samples.
    pub fn push_samples(&mut self, samples: &[i16]) {
        self.samples.extend_from_slice(samples);
    }

    /// Converts a buffer-relative instant to a sample index (clamped to the
    /// buffer length).
    pub fn sample_at(&self, t: SimInstant) -> usize {
        let idx = t.as_micros() * self.sample_rate as u64 / 1_000_000;
        (idx as usize).min(self.samples.len())
    }

    /// Converts a sample index to a buffer-relative instant.
    pub fn instant_of(&self, sample: usize) -> SimInstant {
        SimInstant::from_micros(sample as u64 * 1_000_000 / self.sample_rate as u64)
    }

    /// The samples covered by the buffer-relative time span.
    pub fn slice(&self, span: TimeSpan) -> &[i16] {
        let start = self.sample_at(span.start);
        let end = self.sample_at(span.end);
        &self.samples[start..end]
    }

    /// Mean absolute amplitude of a sample window — the "intensity of the
    /// registered sound" (§2) the pause detector thresholds on.
    pub fn mean_abs(&self, window: &[i16]) -> u32 {
        if window.is_empty() {
            return 0;
        }
        let sum: u64 = window.iter().map(|&s| (s as i32).unsigned_abs() as u64).sum();
        (sum / window.len() as u64) as u32
    }

    /// Iterates over consecutive analysis windows of `window` duration,
    /// yielding `(start_sample, mean_abs)` pairs. The final partial window
    /// is included.
    pub fn energy_windows(&self, window: SimDuration) -> Vec<(usize, u32)> {
        let step =
            usize::try_from(((window.as_micros() * self.sample_rate as u64) / 1_000_000).max(1))
                .unwrap_or(usize::MAX);
        let mut out = Vec::with_capacity(self.samples.len() / step + 1);
        let mut i = 0;
        while i < self.samples.len() {
            let end = (i + step).min(self.samples.len());
            out.push((i, self.mean_abs(&self.samples[i..end])));
            i = end;
        }
        out
    }

    /// Peak absolute amplitude over the whole buffer.
    pub fn peak(&self) -> u32 {
        self.samples.iter().map(|&s| (s as i32).unsigned_abs()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer_of(n: usize, value: i16, rate: u32) -> AudioBuffer {
        AudioBuffer::from_samples(vec![value; n], rate)
    }

    #[test]
    fn duration_follows_sample_count() {
        let b = buffer_of(8_000, 0, 8_000);
        assert_eq!(b.duration(), SimDuration::from_secs(1));
        let b = buffer_of(4_000, 0, 8_000);
        assert_eq!(b.duration(), SimDuration::from_millis(500));
    }

    #[test]
    fn sample_instant_round_trip() {
        let b = buffer_of(16_000, 0, 8_000);
        for sample in [0usize, 1, 100, 8_000, 15_999] {
            let t = b.instant_of(sample);
            assert_eq!(b.sample_at(t), sample);
        }
    }

    #[test]
    fn sample_at_clamps() {
        let b = buffer_of(100, 0, 8_000);
        assert_eq!(b.sample_at(SimInstant::from_micros(10_000_000)), 100);
    }

    #[test]
    fn slice_by_time_span() {
        let mut b = AudioBuffer::new(1_000); // 1 sample per ms
        b.push_samples(&[1; 100]);
        b.push_samples(&[2; 100]);
        let span =
            TimeSpan::new(SimInstant::from_micros(100_000), SimInstant::from_micros(150_000));
        let s = b.slice(span);
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|&v| v == 2));
    }

    #[test]
    fn mean_abs_energy() {
        let b = AudioBuffer::new(8_000);
        assert_eq!(b.mean_abs(&[]), 0);
        assert_eq!(b.mean_abs(&[10, -10, 10, -10]), 10);
        assert_eq!(b.mean_abs(&[i16::MIN]), 32_768);
    }

    #[test]
    fn energy_windows_cover_everything() {
        let b = buffer_of(1_000, 5, 1_000); // 1s at 1kHz
        let windows = b.energy_windows(SimDuration::from_millis(100));
        assert_eq!(windows.len(), 10);
        assert!(windows.iter().all(|&(_, e)| e == 5));
        // Partial tail window.
        let b = buffer_of(1_050, 5, 1_000);
        let windows = b.energy_windows(SimDuration::from_millis(100));
        assert_eq!(windows.len(), 11);
        assert_eq!(windows.last().unwrap().0, 1_000);
    }

    #[test]
    fn peak_amplitude() {
        let b = AudioBuffer::from_samples(vec![3, -7, 2], 8_000);
        assert_eq!(b.peak(), 7);
        assert_eq!(AudioBuffer::new(8_000).peak(), 0);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_rate_rejected() {
        let _ = AudioBuffer::new(0);
    }

    #[test]
    fn empty_buffer_properties() {
        let b = AudioBuffer::new(8_000);
        assert!(b.is_empty());
        assert_eq!(b.duration(), SimDuration::ZERO);
        assert!(b.energy_windows(SimDuration::from_millis(10)).is_empty());
    }
}
