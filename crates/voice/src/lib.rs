//! Voice substrate for the MINOS reproduction.
//!
//! The paper treats voice as a first-class medium: "The information system
//! should provide symmetric capabilities for entering, presenting, and
//! browsing through voice or text" (§1). The original used voice
//! digitization/playback boards on a SUN-3; the reproduction substitutes a
//! *synthetic digitized-speech model* (see DESIGN.md): speech is generated
//! as sampled audio with a per-word energy envelope and speaker-dependent
//! silence gaps, together with a ground-truth transcript. Everything the
//! paper's voice browsing relies on — samples, silences, constant-length
//! audio pages, recognized utterances — is present and measurable.
//!
//! * [`pcm`] — sampled audio buffers and energy analysis;
//! * [`transcript`] — ground-truth word/sentence/paragraph timing, the
//!   synthetic stand-in for a human speaker;
//! * [`synth`] — speaker profiles and the digitized-speech generator;
//! * [`pause`] — the energy-based pause detector with the paper's adaptive
//!   short/long classification ("decided from the current context by
//!   sampling", §2);
//! * [`pages`] — audio pages: "consecutive partitions of the audio object
//!   part which are of approximately constant time length" (§2);
//! * [`playback`] — the playback state machine (interrupt, resume, resume
//!   from page start, rewind by short/long pauses, page browsing);
//! * [`marks`] — manually identified logical units over voice, sharing
//!   [`minos_text::LogicalLevel`] with the text substrate;
//! * [`recognize`] — the limited-vocabulary recognizer simulation used for
//!   content addressability;
//! * [`eval`] — ground-truth evaluation of pause detection and rewinds
//!   (experiment E2).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod eval;
pub mod marks;
pub mod pages;
pub mod pause;
pub mod pcm;
pub mod playback;
pub mod recognize;
pub mod synth;
pub mod transcript;

pub use marks::VoiceMarks;
pub use pages::AudioPages;
pub use pause::{DetectedPause, PauseDetector, PauseKind};
pub use pcm::AudioBuffer;
pub use playback::{PlaybackEngine, PlaybackState};
pub use recognize::{RecognizedUtterance, Recognizer, RecognizerConfig};
pub use synth::{synthesize, SpeakerProfile};
pub use transcript::{SpokenUnit, Transcript};
