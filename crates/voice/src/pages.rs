//! Audio pages.
//!
//! "Audio pages (or voice pages) in a speech are consecutive partitions of
//! the audio object part which are of approximately constant time length.
//! The user can advance several voice pages at a time in order to find some
//! relevant information." (§2)
//!
//! Unlike visual pages, audio pages are *not* boundaries of playback:
//! "speech is not interrupted at the end of each voice page". They exist
//! purely as a coordinate system for page-style browsing, which is what
//! makes the voice command set symmetric with the text one.

use minos_types::{PageNumber, SimDuration, SimInstant, TimeSpan};

/// Default audio page length.
pub const DEFAULT_PAGE_LEN: SimDuration = SimDuration::from_secs(20);

/// Constant-length pagination of a voice part.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AudioPages {
    total: SimDuration,
    page_len: SimDuration,
}

impl AudioPages {
    /// Paginates a voice part of `total` length into pages of `page_len`.
    pub fn new(total: SimDuration, page_len: SimDuration) -> Self {
        assert!(page_len > SimDuration::ZERO, "page length must be positive");
        AudioPages { total, page_len }
    }

    /// Pagination with the default page length.
    pub fn with_default_len(total: SimDuration) -> Self {
        Self::new(total, DEFAULT_PAGE_LEN)
    }

    /// Total duration paginated.
    pub fn total(&self) -> SimDuration {
        self.total
    }

    /// The constant page length.
    pub fn page_len(&self) -> SimDuration {
        self.page_len
    }

    /// Number of pages (the final page may be shorter).
    pub fn page_count(&self) -> usize {
        if self.total == SimDuration::ZERO {
            return 0;
        }
        usize::try_from(self.total.as_micros().div_ceil(self.page_len.as_micros()))
            .unwrap_or(usize::MAX)
    }

    /// The time span of page `index` (0-based). `None` past the end.
    pub fn span_of(&self, index: usize) -> Option<TimeSpan> {
        if index >= self.page_count() {
            return None;
        }
        let start = self.page_len * index as u64;
        let end_us = (start + self.page_len).as_micros().min(self.total.as_micros());
        Some(TimeSpan::new(SimInstant::EPOCH + start, SimInstant::from_micros(end_us)))
    }

    /// The 0-based page containing instant `t` (positions at or past the
    /// end resolve to the last page).
    pub fn page_containing(&self, t: SimInstant) -> Option<usize> {
        let count = self.page_count();
        if count == 0 {
            return None;
        }
        let idx = usize::try_from(t.as_micros() / self.page_len.as_micros()).unwrap_or(usize::MAX);
        Some(idx.min(count - 1))
    }

    /// User-facing page number containing `t`.
    pub fn page_number_containing(&self, t: SimInstant) -> Option<PageNumber> {
        self.page_containing(t).map(PageNumber::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn page_count_rounds_up() {
        let p = AudioPages::new(secs(100), secs(20));
        assert_eq!(p.page_count(), 5);
        let p = AudioPages::new(secs(101), secs(20));
        assert_eq!(p.page_count(), 6);
        let p = AudioPages::new(SimDuration::ZERO, secs(20));
        assert_eq!(p.page_count(), 0);
    }

    #[test]
    fn spans_are_constant_length_except_last() {
        let p = AudioPages::new(secs(70), secs(20));
        assert_eq!(p.page_count(), 4);
        for i in 0..3 {
            assert_eq!(p.span_of(i).unwrap().duration(), secs(20));
        }
        assert_eq!(p.span_of(3).unwrap().duration(), secs(10));
        assert_eq!(p.span_of(4), None);
    }

    #[test]
    fn spans_tile_the_timeline() {
        let p = AudioPages::new(secs(95), secs(20));
        let mut cursor = SimInstant::EPOCH;
        for i in 0..p.page_count() {
            let s = p.span_of(i).unwrap();
            assert_eq!(s.start, cursor);
            cursor = s.end;
        }
        assert_eq!(cursor, SimInstant::EPOCH + secs(95));
    }

    #[test]
    fn page_containing_is_consistent_with_spans() {
        let p = AudioPages::new(secs(95), secs(20));
        for us in (0..95_000_000u64).step_by(3_700_000) {
            let t = SimInstant::from_micros(us);
            let idx = p.page_containing(t).unwrap();
            assert!(p.span_of(idx).unwrap().contains(t));
        }
    }

    #[test]
    fn position_at_end_maps_to_last_page() {
        let p = AudioPages::new(secs(60), secs(20));
        assert_eq!(p.page_containing(SimInstant::EPOCH + secs(60)), Some(2));
        assert_eq!(p.page_containing(SimInstant::EPOCH + secs(999)), Some(2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_page_len_rejected() {
        let _ = AudioPages::new(secs(10), SimDuration::ZERO);
    }

    proptest! {
        #[test]
        fn every_instant_is_on_exactly_one_page(
            total_s in 1u64..500,
            page_s in 1u64..60,
            at_us in 0u64..500_000_000,
        ) {
            let p = AudioPages::new(secs(total_s), secs(page_s));
            let t = SimInstant::from_micros(at_us.min(total_s * 1_000_000 - 1));
            let idx = p.page_containing(t).unwrap();
            let covering: Vec<usize> = (0..p.page_count())
                .filter(|&i| p.span_of(i).unwrap().contains(t))
                .collect();
            prop_assert_eq!(covering, vec![idx]);
        }
    }
}
