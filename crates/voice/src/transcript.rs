//! Ground-truth transcripts.
//!
//! A [`Transcript`] records what a (simulated) speaker said and exactly
//! when: word timings, the silence gaps between them, and sentence/
//! paragraph boundaries. The synthesizer produces one alongside the audio;
//! the evaluation module (experiment E2) uses it as ground truth for
//! measuring pause detection and rewind accuracy — something the original
//! authors could not quantify with live speech.

use minos_types::{SimDuration, SimInstant, TimeSpan};

/// One spoken word with its timing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpokenUnit {
    /// The word as text (for recognition and symmetric pattern browsing).
    pub text: String,
    /// When the word's sound occupies the voice part (relative to its
    /// start).
    pub span: TimeSpan,
}

/// Kind of silence following a word, as ground truth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapKind {
    /// Ordinary inter-word gap.
    Word,
    /// Gap after a sentence-final word.
    Sentence,
    /// Gap after a paragraph-final word.
    Paragraph,
}

/// A silence gap between spoken words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gap {
    /// When the silence occupies the voice part.
    pub span: TimeSpan,
    /// What the silence separates.
    pub kind: GapKind,
}

/// Ground truth for one voice part.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Transcript {
    /// Spoken words in order.
    pub words: Vec<SpokenUnit>,
    /// Silence gaps in order (between and around words).
    pub gaps: Vec<Gap>,
    /// Start instants of sentences.
    pub sentence_starts: Vec<SimInstant>,
    /// Start instants of paragraphs.
    pub paragraph_starts: Vec<SimInstant>,
    /// Total duration of the voice part.
    pub total: SimDuration,
}

impl Transcript {
    /// The index of the word whose sound contains `t`, or the first word
    /// after `t` when `t` falls in a gap. `None` past the last word.
    pub fn word_at_or_after(&self, t: SimInstant) -> Option<usize> {
        let idx = self.words.partition_point(|w| w.span.end <= t);
        (idx < self.words.len()).then_some(idx)
    }

    /// Index of the last word that starts at or before `t`.
    pub fn word_at_or_before(&self, t: SimInstant) -> Option<usize> {
        let idx = self.words.partition_point(|w| w.span.start <= t);
        idx.checked_sub(1)
    }

    /// Number of word starts in the half-open interval `[a, b)` — the
    /// "distance in words" metric used to score rewind landings.
    pub fn words_between(&self, a: SimInstant, b: SimInstant) -> usize {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let start = self.words.partition_point(|w| w.span.start < lo);
        let end = self.words.partition_point(|w| w.span.start < hi);
        end - start
    }

    /// The paragraph index containing `t` (paragraphs run from their start
    /// instant to the next paragraph's start).
    pub fn paragraph_containing(&self, t: SimInstant) -> Option<usize> {
        let idx = self.paragraph_starts.partition_point(|&p| p <= t);
        idx.checked_sub(1)
    }

    /// Concatenated words as text (whitespace separated).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for (i, w) in self.words.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&w.text);
        }
        out
    }

    /// Verifies internal consistency: words and gaps are ordered, disjoint,
    /// and within the total duration. Used by tests and by the synthesizer's
    /// own debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut last_end = SimInstant::EPOCH;
        for (i, w) in self.words.iter().enumerate() {
            if w.span.start < last_end {
                return Err(format!("word {i} overlaps its predecessor"));
            }
            if w.span.is_empty() {
                return Err(format!("word {i} has empty span"));
            }
            last_end = w.span.end;
        }
        if let Some(w) = self.words.last() {
            if w.span.end > SimInstant::EPOCH + self.total {
                return Err("last word extends past total duration".into());
            }
        }
        let mut last_gap_end = SimInstant::EPOCH;
        for (i, g) in self.gaps.iter().enumerate() {
            if g.span.start < last_gap_end {
                return Err(format!("gap {i} overlaps its predecessor"));
            }
            last_gap_end = g.span.end;
        }
        for g in &self.gaps {
            for w in &self.words {
                if g.span.overlaps(&w.span) {
                    return Err(format!("gap {:?} overlaps word {:?}", g.span, w.span));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimInstant {
        SimInstant::from_micros(ms * 1_000)
    }

    fn sample() -> Transcript {
        // Words at [0,100), [150,250), [300,400) ms with gaps between.
        let words = vec![
            SpokenUnit { text: "alpha".into(), span: TimeSpan::new(t(0), t(100)) },
            SpokenUnit { text: "beta".into(), span: TimeSpan::new(t(150), t(250)) },
            SpokenUnit { text: "gamma".into(), span: TimeSpan::new(t(300), t(400)) },
        ];
        let gaps = vec![
            Gap { span: TimeSpan::new(t(100), t(150)), kind: GapKind::Word },
            Gap { span: TimeSpan::new(t(250), t(300)), kind: GapKind::Sentence },
        ];
        Transcript {
            words,
            gaps,
            sentence_starts: vec![t(0), t(300)],
            paragraph_starts: vec![t(0)],
            total: SimDuration::from_millis(400),
        }
    }

    #[test]
    fn invariants_hold_for_sample() {
        sample().check_invariants().unwrap();
    }

    #[test]
    fn word_at_or_after_in_gap_returns_next() {
        let tr = sample();
        assert_eq!(tr.word_at_or_after(t(0)), Some(0));
        assert_eq!(tr.word_at_or_after(t(120)), Some(1)); // inside first gap
        assert_eq!(tr.word_at_or_after(t(350)), Some(2));
        assert_eq!(tr.word_at_or_after(t(400)), None);
    }

    #[test]
    fn word_at_or_before() {
        let tr = sample();
        assert_eq!(tr.word_at_or_before(t(0)), Some(0));
        assert_eq!(tr.word_at_or_before(t(120)), Some(0));
        assert_eq!(tr.word_at_or_before(t(399)), Some(2));
    }

    #[test]
    fn words_between_counts_starts() {
        let tr = sample();
        assert_eq!(tr.words_between(t(0), t(400)), 3);
        assert_eq!(tr.words_between(t(1), t(400)), 2);
        assert_eq!(tr.words_between(t(200), t(200)), 0);
        // Order-insensitive.
        assert_eq!(tr.words_between(t(400), t(1)), 2);
    }

    #[test]
    fn paragraph_containing() {
        let mut tr = sample();
        tr.paragraph_starts = vec![t(0), t(300)];
        assert_eq!(tr.paragraph_containing(t(10)), Some(0));
        assert_eq!(tr.paragraph_containing(t(300)), Some(1));
        assert_eq!(tr.paragraph_containing(t(399)), Some(1));
    }

    #[test]
    fn text_concatenation() {
        assert_eq!(sample().text(), "alpha beta gamma");
    }

    #[test]
    fn invariant_violations_are_detected() {
        let mut tr = sample();
        tr.words[1].span = TimeSpan::new(t(50), t(250)); // overlaps word 0
        assert!(tr.check_invariants().is_err());

        let mut tr = sample();
        tr.gaps[0].span = TimeSpan::new(t(90), t(150)); // overlaps word 0
        assert!(tr.check_invariants().is_err());

        let mut tr = sample();
        tr.total = SimDuration::from_millis(300); // last word past end
        assert!(tr.check_invariants().is_err());
    }
}
