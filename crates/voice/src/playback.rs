//! The voice playback state machine.
//!
//! Implements the §2 voice browsing vocabulary: "interrupt the voice
//! output, resume the voice output from the current position, resume the
//! voice output from the beginning of the current voice page, as well as to
//! browse between pages in a similar fashion with text browsing (e.g. next
//! page, previous page, etc.)" — plus the short/long pause rewind.
//!
//! Playback is driven by the simulated clock: callers `tick` the engine
//! with elapsed simulated time and it advances through the voice part,
//! crossing audio page boundaries without interruption (visual pages turn
//! on command; voice pages do not).

use crate::pages::AudioPages;
use crate::pause::{rewind_position, DetectedPause, PauseKind};
use minos_types::{PageNumber, SimDuration, SimInstant};

/// Playback state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlaybackState {
    /// Audio is playing; `tick` advances the position.
    Playing,
    /// The user interrupted the output; position is retained.
    Interrupted,
    /// The end of the voice part was reached.
    Finished,
}

/// Events the engine reports as playback advances, consumed by the
/// presentation manager (e.g. to trigger logical messages when playback
/// enters an attached segment).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageCrossing {
    /// Page left.
    pub from: usize,
    /// Page entered.
    pub to: usize,
}

/// The playback engine for one voice part.
#[derive(Clone, Debug)]
pub struct PlaybackEngine {
    pages: AudioPages,
    pauses: Vec<DetectedPause>,
    position: SimInstant,
    state: PlaybackState,
}

impl PlaybackEngine {
    /// Creates an engine at the start of the part, interrupted (playback
    /// starts on the first `play`).
    pub fn new(pages: AudioPages, pauses: Vec<DetectedPause>) -> Self {
        PlaybackEngine {
            pages,
            pauses,
            position: SimInstant::EPOCH,
            state: PlaybackState::Interrupted,
        }
    }

    /// Current position within the voice part.
    pub fn position(&self) -> SimInstant {
        self.position
    }

    /// Current state.
    pub fn state(&self) -> PlaybackState {
        self.state
    }

    /// The page structure.
    pub fn pages(&self) -> AudioPages {
        self.pages
    }

    /// The detected pauses available for rewind.
    pub fn pauses(&self) -> &[DetectedPause] {
        &self.pauses
    }

    /// 0-based index of the current audio page.
    pub fn current_page(&self) -> Option<usize> {
        self.pages.page_containing(self.position)
    }

    /// User-facing current page number.
    pub fn current_page_number(&self) -> Option<PageNumber> {
        self.current_page().map(PageNumber::from_index)
    }

    fn end(&self) -> SimInstant {
        SimInstant::EPOCH + self.pages.total()
    }

    /// Starts or resumes playback from the current position.
    pub fn play(&mut self) {
        if self.position >= self.end() {
            self.state = PlaybackState::Finished;
        } else {
            self.state = PlaybackState::Playing;
        }
    }

    /// Interrupts the voice output, keeping the position.
    pub fn interrupt(&mut self) {
        if self.state == PlaybackState::Playing {
            self.state = PlaybackState::Interrupted;
        }
    }

    /// Resumes from the beginning of the current voice page.
    pub fn resume_page_start(&mut self) {
        if let Some(idx) = self.current_page() {
            if let Some(span) = self.pages.span_of(idx) {
                self.position = span.start;
            }
        }
        self.play();
    }

    /// Replays "starting from a number of short or long pauses back from
    /// the current position" (§2).
    pub fn rewind_pauses(&mut self, kind: PauseKind, n: usize) {
        self.position = rewind_position(&self.pauses, kind, n, self.position);
        self.play();
    }

    /// Moves to the start of the next page. Clamps at the last page.
    pub fn next_page(&mut self) {
        self.advance_pages(1);
    }

    /// Moves to the start of the previous page. Clamps at the first page.
    pub fn previous_page(&mut self) {
        self.advance_pages(-1);
    }

    /// Advances `delta` pages forward (positive) or back (negative),
    /// landing on the page start, clamped to the part.
    pub fn advance_pages(&mut self, delta: i64) {
        let count = self.pages.page_count();
        if count == 0 {
            return;
        }
        let cur = self.current_page().unwrap_or(0) as i64;
        let target = (cur + delta).clamp(0, count as i64 - 1) as usize;
        self.goto_page(target);
    }

    /// Jumps to the start of 0-based page `index` (clamped).
    pub fn goto_page(&mut self, index: usize) {
        let count = self.pages.page_count();
        if count == 0 {
            return;
        }
        let idx = index.min(count - 1);
        self.position = self.pages.span_of(idx).expect("clamped index").start;
        self.state = PlaybackState::Playing;
    }

    /// Jumps to a user-facing page number.
    pub fn goto_page_number(&mut self, page: PageNumber) {
        self.goto_page(page.index());
    }

    /// Seeks to an absolute position (used when branching into a voice
    /// segment from a relevance or logical unit).
    pub fn seek(&mut self, to: SimInstant) {
        self.position = to.min(self.end());
        if self.position >= self.end() {
            self.state = PlaybackState::Finished;
        }
    }

    /// Advances playback by `dt` of simulated time. Returns the page
    /// crossings that occurred (speech is *not* interrupted at page
    /// boundaries). No-op unless playing.
    pub fn tick(&mut self, dt: SimDuration) -> Vec<PageCrossing> {
        if self.state != PlaybackState::Playing {
            return Vec::new();
        }
        let start_page = self.current_page().unwrap_or(0);
        let target = (self.position + dt).min(self.end());
        self.position = target;
        if self.position >= self.end() {
            self.state = PlaybackState::Finished;
        }
        let end_page = self.current_page().unwrap_or(start_page);
        (start_page..end_page).map(|p| PageCrossing { from: p, to: p + 1 }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_types::TimeSpan;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn t(s: u64) -> SimInstant {
        SimInstant::EPOCH + secs(s)
    }

    fn engine() -> PlaybackEngine {
        // 100s part, 20s pages, pauses at 15s (short) and 55s (long).
        let pages = AudioPages::new(secs(100), secs(20));
        let pauses = vec![
            DetectedPause { span: TimeSpan::new(t(15), t(16)), kind: PauseKind::Short },
            DetectedPause { span: TimeSpan::new(t(55), t(57)), kind: PauseKind::Long },
        ];
        PlaybackEngine::new(pages, pauses)
    }

    #[test]
    fn starts_interrupted_at_beginning() {
        let e = engine();
        assert_eq!(e.state(), PlaybackState::Interrupted);
        assert_eq!(e.position(), SimInstant::EPOCH);
        assert_eq!(e.current_page(), Some(0));
    }

    #[test]
    fn tick_advances_only_while_playing() {
        let mut e = engine();
        assert!(e.tick(secs(5)).is_empty());
        assert_eq!(e.position(), SimInstant::EPOCH);
        e.play();
        e.tick(secs(5));
        assert_eq!(e.position(), t(5));
    }

    #[test]
    fn speech_crosses_page_boundaries_uninterrupted() {
        let mut e = engine();
        e.play();
        let crossings = e.tick(secs(45));
        assert_eq!(e.state(), PlaybackState::Playing);
        assert_eq!(e.current_page(), Some(2));
        assert_eq!(
            crossings,
            vec![PageCrossing { from: 0, to: 1 }, PageCrossing { from: 1, to: 2 }]
        );
    }

    #[test]
    fn playback_finishes_at_end() {
        let mut e = engine();
        e.play();
        e.tick(secs(200));
        assert_eq!(e.state(), PlaybackState::Finished);
        assert_eq!(e.position(), t(100));
        // Play at end stays finished.
        e.play();
        assert_eq!(e.state(), PlaybackState::Finished);
    }

    #[test]
    fn interrupt_and_resume_keep_position() {
        let mut e = engine();
        e.play();
        e.tick(secs(33));
        e.interrupt();
        assert_eq!(e.state(), PlaybackState::Interrupted);
        e.tick(secs(10)); // no effect
        assert_eq!(e.position(), t(33));
        e.play();
        e.tick(secs(1));
        assert_eq!(e.position(), t(34));
    }

    #[test]
    fn resume_page_start_rewinds_to_page_boundary() {
        let mut e = engine();
        e.play();
        e.tick(secs(33));
        e.resume_page_start();
        assert_eq!(e.position(), t(20));
        assert_eq!(e.state(), PlaybackState::Playing);
    }

    #[test]
    fn rewind_short_and_long_pauses() {
        let mut e = engine();
        e.play();
        e.tick(secs(70));
        e.rewind_pauses(PauseKind::Long, 1);
        assert_eq!(e.position(), t(57));
        e.tick(secs(13)); // back to 70
        e.rewind_pauses(PauseKind::Short, 1);
        assert_eq!(e.position(), t(16));
        // More short pauses back than exist: beginning.
        e.rewind_pauses(PauseKind::Short, 3);
        assert_eq!(e.position(), SimInstant::EPOCH);
    }

    #[test]
    fn page_navigation_clamps() {
        let mut e = engine();
        e.previous_page();
        assert_eq!(e.current_page(), Some(0));
        e.advance_pages(3);
        assert_eq!(e.current_page(), Some(3));
        assert_eq!(e.position(), t(60));
        e.advance_pages(100);
        assert_eq!(e.current_page(), Some(4));
        e.next_page();
        assert_eq!(e.current_page(), Some(4));
        e.advance_pages(-2);
        assert_eq!(e.current_page(), Some(2));
    }

    #[test]
    fn goto_page_number_is_one_based() {
        let mut e = engine();
        e.goto_page_number(PageNumber::new(3).unwrap());
        assert_eq!(e.current_page(), Some(2));
        assert_eq!(e.current_page_number(), PageNumber::new(3));
    }

    #[test]
    fn seek_past_end_finishes() {
        let mut e = engine();
        e.seek(t(500));
        assert_eq!(e.position(), t(100));
        assert_eq!(e.state(), PlaybackState::Finished);
    }

    #[test]
    fn goto_page_restarts_finished_playback() {
        let mut e = engine();
        e.play();
        e.tick(secs(200));
        assert_eq!(e.state(), PlaybackState::Finished);
        e.goto_page(0);
        assert_eq!(e.state(), PlaybackState::Playing);
        assert_eq!(e.position(), SimInstant::EPOCH);
    }

    #[test]
    fn empty_part_is_inert() {
        let mut e = PlaybackEngine::new(AudioPages::new(SimDuration::ZERO, secs(20)), vec![]);
        assert_eq!(e.current_page(), None);
        e.next_page();
        e.goto_page(5);
        e.play();
        assert!(e.tick(secs(1)).is_empty());
    }
}
