//! The digitized-speech generator.
//!
//! This is the reproduction's substitute for the SUN-3 voice digitization
//! hardware. Given text and a [`SpeakerProfile`], it produces a PCM buffer
//! whose structure mirrors dictated speech — voiced stretches for words,
//! low-energy silence for the pauses between them — plus the ground-truth
//! [`Transcript`]. Pause lengths follow the paper's observation that "the
//! exact timing for short, and long pauses depends on the speaker and the
//! section of the speech": every profile has its own gap distributions and
//! jitter, and a deterministic seed makes each utterance reproducible.

use crate::pcm::{AudioBuffer, DEFAULT_SAMPLE_RATE};
use crate::transcript::{Gap, GapKind, SpokenUnit, Transcript};
use minos_types::{SimDuration, SimInstant, TimeSpan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Speaking style parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeakerProfile {
    /// Speech rate in words per minute (sound only; gaps add on top).
    pub words_per_minute: u32,
    /// Mean silence between words, milliseconds.
    pub word_gap_ms: u32,
    /// Mean silence after a sentence, milliseconds.
    pub sentence_gap_ms: u32,
    /// Mean silence after a paragraph, milliseconds.
    pub paragraph_gap_ms: u32,
    /// Relative jitter applied to every duration, 0.0–0.9.
    pub jitter: f64,
    /// Peak speech amplitude (out of i16 range).
    pub amplitude: i16,
    /// Amplitude of the "registered sound" during silence — room noise and
    /// microphone hiss.
    pub noise_floor: i16,
}

impl SpeakerProfile {
    /// A careful dictating speaker: clear gaps, quiet room.
    pub const CLEAR: SpeakerProfile = SpeakerProfile {
        words_per_minute: 130,
        word_gap_ms: 70,
        sentence_gap_ms: 400,
        paragraph_gap_ms: 1_100,
        jitter: 0.2,
        amplitude: 14_000,
        noise_floor: 150,
    };

    /// A fast talker: short, irregular gaps. Harder for pause browsing.
    pub const FAST: SpeakerProfile = SpeakerProfile {
        words_per_minute: 190,
        word_gap_ms: 35,
        sentence_gap_ms: 180,
        paragraph_gap_ms: 500,
        jitter: 0.45,
        amplitude: 13_000,
        noise_floor: 200,
    };

    /// Dictation over a noisy telephone line: weak signal, loud floor.
    pub const NOISY: SpeakerProfile = SpeakerProfile {
        words_per_minute: 140,
        word_gap_ms: 70,
        sentence_gap_ms: 350,
        paragraph_gap_ms: 900,
        jitter: 0.3,
        amplitude: 4_000,
        noise_floor: 900,
    };

    /// Named profiles for sweeps in benches and reports.
    pub fn named() -> [(&'static str, SpeakerProfile); 3] {
        [("clear", Self::CLEAR), ("fast", Self::FAST), ("noisy", Self::NOISY)]
    }
}

impl Default for SpeakerProfile {
    fn default() -> Self {
        Self::CLEAR
    }
}

/// Duration of one word's sound under `profile`, before jitter. Scales
/// with word length around a 5-character norm.
fn base_word_duration(profile: &SpeakerProfile, word: &str) -> SimDuration {
    let per_word_ms = 60_000 / profile.words_per_minute.max(1) as u64;
    let len = word.chars().count().max(1) as u64;
    let scaled = per_word_ms * (len + 2) / 7; // 5-char word => per_word_ms
    SimDuration::from_millis(scaled.clamp(80, 2_500))
}

fn jittered(rng: &mut StdRng, base: SimDuration, jitter: f64) -> SimDuration {
    if jitter <= 0.0 {
        return base;
    }
    let factor = 1.0 + rng.gen_range(-jitter..jitter);
    SimDuration::from_micros_saturating((base.as_micros() as f64 * factor).max(1_000.0) as u128)
}

/// Synthesizes `text` spoken under `profile`.
///
/// Paragraphs are separated by newlines; sentence boundaries are words
/// ending in `.`, `!` or `?` — the same conventions as the text substrate,
/// which is what lets one source describe both media in the symmetry
/// experiments. Returns the audio and its ground-truth transcript.
pub fn synthesize(text: &str, profile: &SpeakerProfile, seed: u64) -> (AudioBuffer, Transcript) {
    synthesize_at_rate(text, profile, seed, DEFAULT_SAMPLE_RATE)
}

/// [`synthesize`] with an explicit sample rate.
pub fn synthesize_at_rate(
    text: &str,
    profile: &SpeakerProfile,
    seed: u64,
    sample_rate: u32,
) -> (AudioBuffer, Transcript) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut audio = AudioBuffer::new(sample_rate);
    let mut transcript = Transcript::default();
    let mut cursor = SimInstant::EPOCH;

    let paragraphs: Vec<Vec<&str>> = text
        .split('\n')
        .map(|p| p.split_whitespace().collect::<Vec<_>>())
        .filter(|p| !p.is_empty())
        .collect();

    for (pi, words) in paragraphs.iter().enumerate() {
        transcript.paragraph_starts.push(cursor);
        let mut sentence_open = false;
        for (wi, word) in words.iter().enumerate() {
            if !sentence_open {
                transcript.sentence_starts.push(cursor);
                sentence_open = true;
            }
            // Voiced samples for the word.
            let dur = jittered(&mut rng, base_word_duration(profile, word), profile.jitter);
            let start = cursor;
            push_voiced(&mut audio, &mut rng, dur, profile);
            cursor = audio.instant_of(audio.len());
            transcript
                .words
                .push(SpokenUnit { text: (*word).to_string(), span: TimeSpan::new(start, cursor) });

            let ends_sentence = word.ends_with(['.', '!', '?']);
            if ends_sentence {
                sentence_open = false;
            }
            let last_word_of_para = wi + 1 == words.len();
            let last_word_overall = last_word_of_para && pi + 1 == paragraphs.len();
            if last_word_overall {
                break;
            }
            let (gap_ms, kind) = if last_word_of_para {
                (profile.paragraph_gap_ms, GapKind::Paragraph)
            } else if ends_sentence {
                (profile.sentence_gap_ms, GapKind::Sentence)
            } else {
                (profile.word_gap_ms, GapKind::Word)
            };
            let gap_dur =
                jittered(&mut rng, SimDuration::from_millis(gap_ms as u64), profile.jitter);
            let gap_start = cursor;
            push_silence(&mut audio, &mut rng, gap_dur, profile);
            cursor = audio.instant_of(audio.len());
            transcript.gaps.push(Gap { span: TimeSpan::new(gap_start, cursor), kind });
        }
    }
    transcript.total = audio.duration();
    debug_assert_eq!(transcript.check_invariants(), Ok(()));
    (audio, transcript)
}

/// Appends `dur` of voiced signal: noise shaped by a slow envelope so the
/// energy is well above the floor but varies like speech.
fn push_voiced(audio: &mut AudioBuffer, rng: &mut StdRng, dur: SimDuration, p: &SpeakerProfile) {
    let n = sample_count(dur, audio.sample_rate());
    let amp = p.amplitude as f64;
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        // Envelope rises and falls across the word (syllable-ish shape).
        let phase = i as f64 / n as f64;
        let envelope = 0.35 + 0.65 * (std::f64::consts::PI * phase).sin();
        let v = rng.gen_range(-1.0..1.0) * amp * envelope;
        samples.push(v as i16);
    }
    audio.push_samples(&samples);
}

/// Appends `dur` of silence at the profile's noise floor.
fn push_silence(audio: &mut AudioBuffer, rng: &mut StdRng, dur: SimDuration, p: &SpeakerProfile) {
    let n = sample_count(dur, audio.sample_rate());
    let floor = p.noise_floor as f64;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        samples.push((rng.gen_range(-1.0..1.0) * floor) as i16);
    }
    audio.push_samples(&samples);
}

/// Number of samples spanning `dur` at `rate` Hz, at least one.
fn sample_count(dur: SimDuration, rate: u32) -> usize {
    let n = (dur.as_micros() * rate as u64 / 1_000_000).max(1);
    usize::try_from(n).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str = "The doctor examined the film. A shadow appeared.\n\
                        On review the shadow was benign. No action needed.";

    #[test]
    fn synthesis_is_deterministic() {
        let (a1, t1) = synthesize(TEXT, &SpeakerProfile::CLEAR, 7);
        let (a2, t2) = synthesize(TEXT, &SpeakerProfile::CLEAR, 7);
        assert_eq!(a1, a2);
        assert_eq!(t1, t2);
        let (a3, _) = synthesize(TEXT, &SpeakerProfile::CLEAR, 8);
        assert_ne!(a1, a3);
    }

    #[test]
    fn transcript_matches_text_tokenization() {
        let (_, tr) = synthesize(TEXT, &SpeakerProfile::CLEAR, 1);
        assert_eq!(tr.words.len(), 17);
        assert_eq!(tr.paragraph_starts.len(), 2);
        assert_eq!(tr.sentence_starts.len(), 4);
        assert_eq!(tr.text(), TEXT.replace('\n', " "));
        tr.check_invariants().unwrap();
    }

    #[test]
    fn audio_duration_matches_transcript_total() {
        let (audio, tr) = synthesize(TEXT, &SpeakerProfile::FAST, 3);
        assert_eq!(audio.duration(), tr.total);
        assert!(tr.total > SimDuration::from_secs(3), "speech too short: {}", tr.total);
    }

    #[test]
    fn words_are_louder_than_gaps() {
        let (audio, tr) = synthesize(TEXT, &SpeakerProfile::CLEAR, 5);
        for w in &tr.words {
            let e = audio.mean_abs(audio.slice(w.span));
            assert!(e > 2_000, "word energy {e} too low");
        }
        for g in &tr.gaps {
            let e = audio.mean_abs(audio.slice(g.span));
            assert!(e < 500, "gap energy {e} too high");
        }
    }

    #[test]
    fn gap_kinds_order_by_length_on_average() {
        let long_text: String = (0..12)
            .map(|i| format!("sentence number {i} has several words in it."))
            .collect::<Vec<_>>()
            .join(" ")
            + "\nsecond paragraph begins here with more words. and ends.";
        let (_, tr) = synthesize(&long_text, &SpeakerProfile::CLEAR, 11);
        let mean = |kind: GapKind| {
            let v: Vec<u64> = tr
                .gaps
                .iter()
                .filter(|g| g.kind == kind)
                .map(|g| g.span.duration().as_micros())
                .collect();
            if v.is_empty() {
                0
            } else {
                v.iter().sum::<u64>() / v.len() as u64
            }
        };
        let (w, s, p) = (mean(GapKind::Word), mean(GapKind::Sentence), mean(GapKind::Paragraph));
        assert!(w < s, "word gap {w} not shorter than sentence gap {s}");
        assert!(s < p, "sentence gap {s} not shorter than paragraph gap {p}");
    }

    #[test]
    fn longer_words_take_longer() {
        let short = base_word_duration(&SpeakerProfile::CLEAR, "cat");
        let long = base_word_duration(&SpeakerProfile::CLEAR, "presentation");
        assert!(long > short);
    }

    #[test]
    fn faster_profile_speaks_faster() {
        let long_text: String = (0..30).map(|i| format!("word{i}")).collect::<Vec<_>>().join(" ");
        let (_, clear) = synthesize(&long_text, &SpeakerProfile::CLEAR, 2);
        let (_, fast) = synthesize(&long_text, &SpeakerProfile::FAST, 2);
        assert!(fast.total < clear.total);
    }

    #[test]
    fn empty_text_produces_empty_audio() {
        let (audio, tr) = synthesize("", &SpeakerProfile::CLEAR, 1);
        assert!(audio.is_empty());
        assert!(tr.words.is_empty());
        assert_eq!(tr.total, SimDuration::ZERO);
    }

    #[test]
    fn whitespace_only_paragraphs_are_skipped() {
        let (_, tr) = synthesize("one two\n   \nthree", &SpeakerProfile::CLEAR, 1);
        assert_eq!(tr.paragraph_starts.len(), 2);
        assert_eq!(tr.words.len(), 3);
    }

    #[test]
    fn no_trailing_gap_after_last_word() {
        let (audio, tr) = synthesize("just these words", &SpeakerProfile::CLEAR, 4);
        let last = tr.words.last().unwrap();
        assert_eq!(last.span.end, SimInstant::EPOCH + audio.duration());
        assert_eq!(tr.gaps.len(), tr.words.len() - 1);
    }
}
