//! Pass orchestration over the real workspace tree.

use crate::allow;
use crate::diag::Diagnostic;
use crate::passes::{
    alloc_hygiene, codec_cov, panic_free, queue_growth, reset, symmetry, units, wire,
};
use crate::sig;
use crate::source::{self, SourceFile};
use std::io;
use std::path::Path;

/// Files whose non-test code must be panic-free: the crates between wire
/// bytes and device models, where a panic on attacker-controlled input
/// takes the server down.
const PANIC_SCOPE: &[&str] =
    &["crates/net/src/", "crates/server/src/", "crates/storage/src/", "crates/types/src/codec.rs"];

/// Files whose queues sit on the overload path: every `push`/`push_back`
/// there must be reachable from a capacity check, or carry a ratcheted
/// `lint-allow.toml` entry explaining what bounds it.
const QUEUE_SCOPE: &[&str] = &[
    "crates/net/src/",
    "crates/server/src/",
    "crates/core/src/remote.rs",
    "crates/core/src/kernel.rs",
    "crates/core/src/fleet.rs",
    "crates/core/src/chaos.rs",
];

/// Modules on the per-message hot path where the buffer pool is the law:
/// every fresh allocation (`to_vec`/`clone`/`with_capacity`) must ride a
/// ratcheted `lint-allow.toml` entry explaining why the pool can't serve it.
const ALLOC_SCOPE: &[&str] = &[
    "crates/net/src/frame.rs",
    "crates/net/src/fault.rs",
    "crates/core/src/remote.rs",
    "crates/core/src/prefetch.rs",
];

/// The one file allowed to touch raw microsecond words: it owns the
/// saturating conversion helpers everything else must use.
const UNIT_EXEMPT: &str = "crates/types/src/time.rs";

/// The accounting scope of the reset-completeness audit: every crate that
/// grew a `*Stats` struct in a hardening PR (and shipped a reset-drift bug
/// in two of them).
const RESET_SCOPE: &[&str] = &["crates/net/src/", "crates/server/src/", "crates/core/src/"];

/// The hand-written codecs the codec-coverage audit holds to round-trip,
/// bounded-count, and version-check discipline.
const CODEC_SCOPE: &[&str] = &[
    "crates/types/src/codec.rs",
    "crates/net/src/protocol.rs",
    "crates/net/src/frame.rs",
    "crates/core/src/session.rs",
];

/// The protocol definition the wire-tag audit parses.
const PROTOCOL_FILE: &str = "crates/net/src/protocol.rs";

/// The frame envelope whose payload tags the single-enum audit parses.
const FRAME_FILE: &str = "crates/net/src/frame.rs";

/// The committed debt ratchet.
const ALLOW_FILE: &str = "lint-allow.toml";

/// What a lint run produced.
#[derive(Debug)]
pub struct LintOutcome {
    /// Findings that survived the allowlist ratchet, sorted by file/line.
    pub errors: Vec<Diagnostic>,
    /// Number of source files scanned.
    pub checked_files: usize,
}

impl LintOutcome {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Runs all the passes over the workspace rooted at `root` and applies
/// the `lint-allow.toml` ratchet.
pub fn lint_workspace(root: &Path) -> io::Result<LintOutcome> {
    let files = source::workspace_sources(root)?;
    let mut findings: Vec<Diagnostic> = Vec::new();

    // (1) Wire-tag audit.
    match files.iter().find(|f| f.rel == PROTOCOL_FILE) {
        Some(protocol) => {
            findings.extend(wire::run(protocol, "ServerRequest", "ServerResponse"));
        }
        None => findings.push(Diagnostic::new(
            "W002",
            PROTOCOL_FILE,
            1,
            "protocol definition file is missing; the wire-tag audit has nothing to check",
        )),
    }

    // (1b) Envelope-tag audit over the framed transport. `FramePayload`
    // has no request/response twin, so only `W001`–`W004` apply.
    match files.iter().find(|f| f.rel == FRAME_FILE) {
        Some(frame) => findings.extend(wire::run_single(frame, "FramePayload")),
        None => findings.push(Diagnostic::new(
            "W002",
            FRAME_FILE,
            1,
            "frame envelope file is missing; the envelope-tag audit has nothing to check",
        )),
    }

    // (2) Panic-freedom audit over the hot-path scope.
    let hot: Vec<SourceFile> = files
        .iter()
        .filter(|f| PANIC_SCOPE.iter().any(|scope| f.rel.starts_with(scope)))
        .cloned()
        .collect();
    findings.extend(panic_free::run(&hot));

    // (2b) Queue-growth audit over the overload path.
    let queues: Vec<SourceFile> = files
        .iter()
        .filter(|f| QUEUE_SCOPE.iter().any(|scope| f.rel.starts_with(scope)))
        .cloned()
        .collect();
    findings.extend(queue_growth::run(&queues));

    // (2c) Allocation-hygiene audit over the pooled hot-path modules.
    let pooled: Vec<SourceFile> =
        files.iter().filter(|f| ALLOC_SCOPE.contains(&f.rel.as_str())).cloned().collect();
    findings.extend(alloc_hygiene::run(&pooled));

    // (3) Unit-safety audit everywhere but the time module.
    let unit_scope: Vec<SourceFile> =
        files.iter().filter(|f| f.rel != UNIT_EXEMPT).cloned().collect();
    findings.extend(units::run(&unit_scope));

    // (3b) Reset-completeness audit over the accounting scope.
    let accounting: Vec<SourceFile> = files
        .iter()
        .filter(|f| RESET_SCOPE.iter().any(|scope| f.rel.starts_with(scope)))
        .cloned()
        .collect();
    findings.extend(reset::run(&accounting));

    // (3c) Codec-coverage audit over the hand-written codecs.
    let codecs: Vec<SourceFile> =
        files.iter().filter(|f| CODEC_SCOPE.contains(&f.rel.as_str())).cloned().collect();
    findings.extend(codec_cov::run(&codecs));

    // (4) Text/voice symmetry audit.
    let text: Vec<SourceFile> =
        files.iter().filter(|f| f.rel.starts_with("crates/text/src/")).cloned().collect();
    let voice: Vec<SourceFile> =
        files.iter().filter(|f| f.rel.starts_with("crates/voice/src/")).cloned().collect();
    findings.extend(symmetry::run(&sig::public_surface(&text), &sig::public_surface(&voice)));

    // Ratchet.
    let allow_path = root.join(ALLOW_FILE);
    let allows = if allow_path.is_file() {
        match allow::parse(ALLOW_FILE, &std::fs::read_to_string(&allow_path)?) {
            Ok(list) => list,
            Err(parse_errors) => {
                let mut errors = parse_errors;
                errors.extend(findings);
                errors.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
                return Ok(LintOutcome { errors, checked_files: files.len() });
            }
        }
    } else {
        allow::AllowList::default()
    };
    let mut errors = allow::apply(ALLOW_FILE, &allows, findings);
    errors.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintOutcome { errors, checked_files: files.len() })
}
