//! `minos-xtask` — workspace static analysis.
//!
//! Usage:
//!   `cargo run -p minos-xtask -- lint [--json] [--root <path>]`
//!   `cargo run -p minos-xtask -- spec [--check | --write] [--root <path>]`
//!   `cargo run -p minos-xtask -- rules`
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use minos_xtask::{lint_workspace, spec, spec_workspace, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: minos-xtask lint [--json] [--root <path>] \
                     | minos-xtask spec [--check | --write] [--root <path>] \
                     | minos-xtask rules";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut args = args.iter();
    let cmd = match args.next().map(String::as_str) {
        Some(cmd @ ("lint" | "spec")) => cmd,
        Some("rules") => {
            for r in RULES {
                println!("{:5} [{}] {}", r.code, r.pass, r.summary);
            }
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("{USAGE}");
            if let Some(o) = other {
                eprintln!("unknown subcommand {o:?}");
            }
            return ExitCode::from(2);
        }
    };

    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut check = false;
    let mut write = false;
    while let Some(arg) = args.next() {
        match (cmd, arg.as_str()) {
            (_, "--root") => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            ("lint", "--json") => json = true,
            ("spec", "--check") => check = true,
            ("spec", "--write") => write = true,
            (_, other) => {
                eprintln!("unknown argument {other:?} for {cmd}");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if check && write {
        eprintln!("--check and --write are mutually exclusive");
        return ExitCode::from(2);
    }
    // The xtask crate lives at <workspace>/crates/xtask, so the default
    // workspace root is two levels up from the manifest.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));

    if cmd == "spec" {
        return run_spec(&root, check, write);
    }
    run_lint(&root, json)
}

fn run_lint(root: &Path, json: bool) -> ExitCode {
    match lint_workspace(root) {
        Ok(outcome) if json => {
            let objects: Vec<String> = outcome.errors.iter().map(|d| d.to_json()).collect();
            println!("[{}]", objects.join(","));
            if outcome.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Ok(outcome) if outcome.is_clean() => {
            println!(
                "minos-xtask lint: {} files clean (wire tags, panic-freedom, queue growth, \
                 alloc hygiene, unit-safety, text/voice symmetry, reset completeness, \
                 codec coverage)",
                outcome.checked_files
            );
            ExitCode::SUCCESS
        }
        Ok(outcome) => {
            for d in &outcome.errors {
                eprintln!("{d}");
            }
            eprintln!(
                "minos-xtask lint: {} finding(s) across {} files",
                outcome.errors.len(),
                outcome.checked_files
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("minos-xtask lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}

/// `spec`: print the extracted spec JSON; `--write` updates the committed
/// golden; `--check` additionally diffs against it. Conformance (`X001`)
/// findings always fail the run.
fn run_spec(root: &Path, check: bool, write: bool) -> ExitCode {
    let outcome = match spec_workspace(root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("minos-xtask spec: I/O error: {e}");
            return ExitCode::from(2);
        }
    };
    if !outcome.errors.is_empty() {
        for d in &outcome.errors {
            eprintln!("{d}");
        }
        eprintln!("minos-xtask spec: {} conformance finding(s)", outcome.errors.len());
        return ExitCode::FAILURE;
    }
    let rendered = outcome.spec.to_json();
    if write {
        let path = root.join(spec::GOLDEN_FILE);
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("minos-xtask spec: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("minos-xtask spec: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("minos-xtask spec: wrote {}", spec::GOLDEN_FILE);
        return ExitCode::SUCCESS;
    }
    if check {
        let drift = spec::check_golden(root, &outcome.spec);
        if !drift.is_empty() {
            for d in &drift {
                eprintln!("{d}");
            }
            return ExitCode::FAILURE;
        }
        println!("minos-xtask spec: extraction matches {}", spec::GOLDEN_FILE);
        return ExitCode::SUCCESS;
    }
    print!("{rendered}");
    ExitCode::SUCCESS
}
