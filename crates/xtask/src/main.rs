//! `minos-xtask` — workspace static analysis.
//!
//! Usage: `cargo run -p minos-xtask -- lint [--root <path>]`
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use minos_xtask::{lint_workspace, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut args = args.iter();
    match args.next().map(String::as_str) {
        Some("lint") => {}
        Some("rules") => {
            for r in RULES {
                println!("{:5} [{}] {}", r.code, r.pass, r.summary);
            }
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("usage: minos-xtask lint [--root <path>] | minos-xtask rules");
            if let Some(o) = other {
                eprintln!("unknown subcommand {o:?}");
            }
            return ExitCode::from(2);
        }
    }

    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    // The xtask crate lives at <workspace>/crates/xtask, so the default
    // workspace root is two levels up from the manifest.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));

    match lint_workspace(&root) {
        Ok(outcome) if outcome.is_clean() => {
            println!(
                "minos-xtask lint: {} files clean (wire tags, panic-freedom, queue growth, \
                 alloc hygiene, unit-safety, text/voice symmetry)",
                outcome.checked_files
            );
            ExitCode::SUCCESS
        }
        Ok(outcome) => {
            for d in &outcome.errors {
                eprintln!("{d}");
            }
            eprintln!(
                "minos-xtask lint: {} finding(s) across {} files",
                outcome.errors.len(),
                outcome.checked_files
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("minos-xtask lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}
