//! Machine-readable protocol spec extraction and conformance
//! (`minos-xtask -- spec`).
//!
//! The wire contract — request/response tags, the frame envelope, the
//! priority bytes, the epoch handshake, the CRC trailer — lives in match
//! arms scattered across `net::protocol` and `net::frame`. This module
//! walks those arms (reusing the wire-pass extractor) and serializes the
//! result as deterministic JSON, so protocol drift becomes a reviewable
//! one-line diff against the committed golden `spec/protocol.json`
//! instead of an archaeology exercise:
//!
//! * `X001` — the extracted spec violates a conformance invariant:
//!   unpaired request/response tags, a missing or mismatched
//!   `Hello`/`Welcome` handshake, missing envelope tags, duplicate
//!   priority bytes, or a missing CRC trailer.
//! * `X002` — the extracted spec no longer matches the committed golden.
//!   Intentional protocol changes regenerate it with
//!   `minos-xtask -- spec --write` and commit the diff.

use crate::diag::{json_string, Diagnostic};
use crate::parse::{fns_in, impl_blocks};
use crate::passes::wire;
use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// The protocol definition the extractor parses.
pub const PROTOCOL_FILE: &str = "crates/net/src/protocol.rs";
/// The frame envelope (payload tags, priority bytes, CRC trailer).
pub const FRAME_FILE: &str = "crates/net/src/frame.rs";
/// The committed golden spec the extraction is diffed against.
pub const GOLDEN_FILE: &str = "spec/protocol.json";

/// The extracted wire contract. All maps are ordered, so serialization
/// is deterministic by construction.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// Request wire tag → variant name, with the source line.
    pub request_tags: BTreeMap<u64, (String, usize)>,
    /// Response wire tag → variant name, with the source line.
    pub response_tags: BTreeMap<u64, (String, usize)>,
    /// Frame envelope payload tag → variant name.
    pub envelope_tags: BTreeMap<u64, (String, usize)>,
    /// Priority class name → wire byte.
    pub priority_bytes: BTreeMap<String, u64>,
    /// The epoch-handshake request tag (`Hello`).
    pub hello_tag: Option<u64>,
    /// The epoch-handshake response tag (`Welcome`).
    pub welcome_tag: Option<u64>,
    /// Bytes of the CRC trailer every encoded frame carries.
    pub crc_trailer_len: Option<u64>,
}

impl ProtocolSpec {
    /// Extracts the spec from the protocol and frame code views. The
    /// names are fixed by the wire contract: `ServerRequest` /
    /// `ServerResponse` in the protocol file, `FramePayload` and
    /// `Priority` in the frame file.
    pub fn extract(protocol: &SourceFile, frame: &SourceFile) -> ProtocolSpec {
        let mut sink = Vec::new();
        let request = wire::extract(protocol, "ServerRequest", &mut sink);
        let response = wire::extract(protocol, "ServerResponse", &mut sink);
        let envelope = wire::extract(frame, "FramePayload", &mut sink);

        let tag_map = |wire: &wire::EnumWire| {
            wire.encode
                .iter()
                .map(|(variant, &(tag, line))| (tag, (variant.clone(), line)))
                .collect::<BTreeMap<u64, (String, usize)>>()
        };
        let request_tags = tag_map(&request);
        let response_tags = tag_map(&response);
        let hello_tag = request.encode.get("Hello").map(|&(tag, _)| tag);
        let welcome_tag = response.encode.get("Welcome").map(|&(tag, _)| tag);

        ProtocolSpec {
            request_tags,
            response_tags,
            envelope_tags: tag_map(&envelope),
            priority_bytes: priority_bytes(frame),
            hello_tag,
            welcome_tag,
            crc_trailer_len: crc_trailer_len(frame),
        }
    }

    /// Validates the spec's internal invariants, returning `X001`
    /// findings anchored at the offending tags.
    pub fn conformance(&self, protocol_rel: &str, frame_rel: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (tag, (variant, line)) in &self.request_tags {
            if !self.response_tags.contains_key(tag) {
                out.push(Diagnostic::new(
                    "X001",
                    protocol_rel,
                    *line,
                    format!("request tag {tag} ({variant}) has no paired response tag"),
                ));
            }
        }
        for (tag, (variant, line)) in &self.response_tags {
            if !self.request_tags.contains_key(tag) {
                out.push(Diagnostic::new(
                    "X001",
                    protocol_rel,
                    *line,
                    format!("response tag {tag} ({variant}) has no paired request tag"),
                ));
            }
        }
        match (self.hello_tag, self.welcome_tag) {
            (Some(h), Some(w)) if h != w => out.push(Diagnostic::new(
                "X001",
                protocol_rel,
                1,
                format!("epoch handshake tags disagree: Hello is {h} but Welcome is {w}"),
            )),
            (Some(_), Some(_)) => {}
            _ => out.push(Diagnostic::new(
                "X001",
                protocol_rel,
                1,
                "epoch handshake incomplete: the protocol needs both a Hello request \
                 and a Welcome response",
            )),
        }
        if self.envelope_tags.is_empty() {
            out.push(Diagnostic::new(
                "X001",
                frame_rel,
                1,
                "no frame envelope payload tags extracted",
            ));
        }
        let mut seen: BTreeMap<u64, &str> = BTreeMap::new();
        for (class, &byte) in &self.priority_bytes {
            if let Some(first) = seen.insert(byte, class) {
                out.push(Diagnostic::new(
                    "X001",
                    frame_rel,
                    1,
                    format!("priority classes {first} and {class} share wire byte {byte}"),
                ));
            }
        }
        if self.priority_bytes.is_empty() {
            out.push(Diagnostic::new("X001", frame_rel, 1, "no priority wire bytes extracted"));
        }
        match self.crc_trailer_len {
            Some(len) if len > 0 => {}
            _ => out.push(Diagnostic::new(
                "X001",
                frame_rel,
                1,
                "no CRC trailer on the frame envelope (CRC_TRAILER_LEN missing or zero)",
            )),
        }
        out
    }

    /// Serializes the spec as deterministic, pretty-printed JSON (sorted
    /// keys, trailing newline) — the exact bytes of `spec/protocol.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"crc_trailer_len\": {},\n", opt(self.crc_trailer_len)));
        s.push_str("  \"envelope_tags\": {\n");
        push_tag_map(&mut s, &self.envelope_tags);
        s.push_str("  },\n");
        s.push_str(&format!(
            "  \"handshake\": {{ \"hello\": {}, \"welcome\": {} }},\n",
            opt(self.hello_tag),
            opt(self.welcome_tag)
        ));
        s.push_str("  \"pairing\": [\n");
        let paired: Vec<String> = self
            .request_tags
            .iter()
            .filter_map(|(tag, (req, _))| {
                self.response_tags.get(tag).map(|(resp, _)| {
                    format!(
                        "    {{ \"tag\": {tag}, \"request\": {}, \"response\": {} }}",
                        json_string(req),
                        json_string(resp)
                    )
                })
            })
            .collect();
        s.push_str(&paired.join(",\n"));
        s.push_str("\n  ],\n");
        s.push_str("  \"priority_bytes\": {\n");
        let classes: Vec<String> = self
            .priority_bytes
            .iter()
            .map(|(class, byte)| format!("    {}: {byte}", json_string(class)))
            .collect();
        s.push_str(&classes.join(",\n"));
        s.push_str("\n  },\n");
        s.push_str("  \"request_tags\": {\n");
        push_tag_map(&mut s, &self.request_tags);
        s.push_str("  },\n");
        s.push_str("  \"response_tags\": {\n");
        push_tag_map(&mut s, &self.response_tags);
        s.push_str("  }\n}\n");
        s
    }
}

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

fn push_tag_map(s: &mut String, map: &BTreeMap<u64, (String, usize)>) {
    let entries: Vec<String> = map
        .iter()
        .map(|(tag, (name, _))| format!("    \"{tag}\": {}", json_string(name)))
        .collect();
    s.push_str(&entries.join(",\n"));
    if !entries.is_empty() {
        s.push('\n');
    }
}

/// Parses the `Priority::Class => byte` arms of `impl Priority`'s
/// `wire_tag` fn.
fn priority_bytes(frame: &SourceFile) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for block in impl_blocks(&frame.code) {
        if block.owner != "Priority" {
            continue;
        }
        for f in fns_in(&frame.code, block.body) {
            if f.name != "wire_tag" {
                continue;
            }
            for line in frame.code[f.body.0..f.body.1].lines() {
                let Some(arrow) = line.find("=>") else { continue };
                let Some(at) = line.find("Priority::") else { continue };
                let class: String = line[at + "Priority::".len()..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                let digits: String = line[arrow + 2..]
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '_')
                    .collect();
                if let Ok(byte) = digits.replace('_', "").parse::<u64>() {
                    if !class.is_empty() {
                        out.insert(class, byte);
                    }
                }
            }
        }
    }
    out
}

/// Parses the `CRC_TRAILER_LEN` constant from the frame file.
fn crc_trailer_len(frame: &SourceFile) -> Option<u64> {
    let at = frame.code.find("CRC_TRAILER_LEN")?;
    let rest = &frame.code[at..];
    let eq = rest.find('=')?;
    let digits: String = rest[eq + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .collect();
    digits.replace('_', "").parse().ok()
}

/// What a spec run produced: the spec plus any conformance findings.
#[derive(Debug)]
pub struct SpecOutcome {
    /// The extracted contract.
    pub spec: ProtocolSpec,
    /// `X001` conformance findings (empty when the contract is coherent).
    pub errors: Vec<Diagnostic>,
}

/// Extracts the spec from the workspace rooted at `root` and validates
/// its conformance invariants.
pub fn spec_workspace(root: &Path) -> io::Result<SpecOutcome> {
    let protocol = SourceFile::load(&root.join(PROTOCOL_FILE), PROTOCOL_FILE)?;
    let frame = SourceFile::load(&root.join(FRAME_FILE), FRAME_FILE)?;
    let spec = ProtocolSpec::extract(&protocol, &frame);
    let errors = spec.conformance(PROTOCOL_FILE, FRAME_FILE);
    Ok(SpecOutcome { spec, errors })
}

/// Diffs the extracted spec against the committed golden, returning
/// `X002` findings on drift (or a missing golden).
pub fn check_golden(root: &Path, spec: &ProtocolSpec) -> Vec<Diagnostic> {
    let golden_path = root.join(GOLDEN_FILE);
    let Ok(golden) = std::fs::read_to_string(&golden_path) else {
        return vec![Diagnostic::new(
            "X002",
            GOLDEN_FILE,
            1,
            "golden spec missing; generate it with `minos-xtask -- spec --write` and commit it",
        )];
    };
    let current = spec.to_json();
    if golden == current {
        return Vec::new();
    }
    let line = golden
        .lines()
        .zip(current.lines())
        .position(|(g, c)| g != c)
        .map_or_else(|| golden.lines().count().min(current.lines().count()) + 1, |i| i + 1);
    vec![Diagnostic::new(
        "X002",
        GOLDEN_FILE,
        line,
        "extracted protocol spec drifted from the committed golden (first difference at \
         this line); review the change, then regenerate with `minos-xtask -- spec --write`",
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const FRAME_SRC: &str = "\
const CRC_TRAILER_LEN: usize = 4;

pub enum FramePayload {
    Request(ServerRequest),
    Response(ServerResponse),
}

impl FramePayload {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            FramePayload::Request(r) => {
                e.put_u8(1);
            }
            FramePayload::Response(r) => {
                e.put_u8(2);
            }
        }
    }
    pub fn decode(bytes: &[u8]) -> Result<FramePayload> {
        let p = match d.get_u8()? {
            1 => FramePayload::Request(r),
            2 => FramePayload::Response(r),
            other => return Err(other),
        };
    }
}

impl Priority {
    pub fn wire_tag(self) -> u8 {
        match self {
            Priority::Audio => 0,
            Priority::Demand => 1,
            Priority::Prefetch => 2,
        }
    }
}
";

    const PROTOCOL_SRC: &str = "\
pub enum ServerRequest {
    Fetch { id: u64 },
    Hello { epoch: u64 },
}
pub enum ServerResponse {
    Object(Vec<u8>),
    Welcome { epoch: u64 },
}
impl ServerRequest {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerRequest::Fetch { id } => {
                e.put_u8(1);
            }
            ServerRequest::Hello { epoch } => {
                e.put_u8(8);
            }
        }
    }
    pub fn decode(bytes: &[u8]) -> Result<ServerRequest> {
        let req = match d.get_u8()? {
            1 => ServerRequest::Fetch { id: 0 },
            8 => ServerRequest::Hello { epoch: 0 },
            other => return Err(other),
        };
    }
}
impl ServerResponse {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerResponse::Object(b) => {
                e.put_u8(1);
            }
            ServerResponse::Welcome { epoch } => {
                e.put_u8(8);
            }
        }
    }
    pub fn decode(bytes: &[u8]) -> Result<ServerResponse> {
        let resp = match d.get_u8()? {
            1 => ServerResponse::Object(vec![]),
            8 => ServerResponse::Welcome { epoch: 0 },
            other => return Err(other),
        };
    }
}
";

    fn file(name: &str, src: &str) -> SourceFile {
        SourceFile::from_text(PathBuf::from(name), name.into(), src.to_string())
    }

    fn mini_spec() -> ProtocolSpec {
        ProtocolSpec::extract(&file("p.rs", PROTOCOL_SRC), &file("f.rs", FRAME_SRC))
    }

    #[test]
    fn extraction_sees_the_whole_contract() {
        let spec = mini_spec();
        assert_eq!(spec.request_tags[&1].0, "Fetch");
        assert_eq!(spec.request_tags[&8].0, "Hello");
        assert_eq!(spec.response_tags[&8].0, "Welcome");
        assert_eq!(spec.envelope_tags[&1].0, "Request");
        assert_eq!(spec.envelope_tags[&2].0, "Response");
        assert_eq!(spec.priority_bytes["Audio"], 0);
        assert_eq!(spec.priority_bytes["Prefetch"], 2);
        assert_eq!(spec.hello_tag, Some(8));
        assert_eq!(spec.welcome_tag, Some(8));
        assert_eq!(spec.crc_trailer_len, Some(4));
    }

    #[test]
    fn coherent_contract_conforms() {
        let errors = mini_spec().conformance("p.rs", "f.rs");
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn unpaired_tag_fails_conformance() {
        let src = PROTOCOL_SRC.replace(
            "ServerResponse::Object(b) => {\n                e.put_u8(1);",
            "ServerResponse::Object(b) => {\n                e.put_u8(3);",
        );
        let spec = ProtocolSpec::extract(&file("p.rs", &src), &file("f.rs", FRAME_SRC));
        let errors = spec.conformance("p.rs", "f.rs");
        assert!(
            errors.iter().any(|d| d.rule == "X001" && d.message.contains("no paired")),
            "{errors:?}"
        );
    }

    #[test]
    fn missing_handshake_and_crc_fail_conformance() {
        let protocol = PROTOCOL_SRC.replace("Hello", "Greet").replace("Welcome", "Accept");
        let frame = FRAME_SRC.replace("const CRC_TRAILER_LEN: usize = 4;", "");
        let spec = ProtocolSpec::extract(&file("p.rs", &protocol), &file("f.rs", &frame));
        let errors = spec.conformance("p.rs", "f.rs");
        assert!(errors.iter().any(|d| d.message.contains("handshake incomplete")), "{errors:?}");
        assert!(errors.iter().any(|d| d.message.contains("CRC trailer")), "{errors:?}");
    }

    #[test]
    fn duplicate_priority_byte_fails_conformance() {
        let frame = FRAME_SRC.replace("Priority::Demand => 1,", "Priority::Demand => 0,");
        let spec = ProtocolSpec::extract(&file("p.rs", PROTOCOL_SRC), &file("f.rs", &frame));
        let errors = spec.conformance("p.rs", "f.rs");
        assert!(errors.iter().any(|d| d.message.contains("share wire byte 0")), "{errors:?}");
    }

    #[test]
    fn json_is_deterministic_and_shaped() {
        let a = mini_spec().to_json();
        let b = mini_spec().to_json();
        assert_eq!(a, b);
        assert!(a.ends_with("}\n"));
        assert!(a.contains("\"crc_trailer_len\": 4"));
        assert!(a.contains("\"handshake\": { \"hello\": 8, \"welcome\": 8 }"));
        assert!(a.contains("{ \"tag\": 1, \"request\": \"Fetch\", \"response\": \"Object\" }"));
    }
}
