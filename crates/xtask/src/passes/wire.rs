//! Wire-tag audit (`W001`–`W005`).
//!
//! The workstation ↔ server protocol is a hand-written binary codec: each
//! `ServerRequest`/`ServerResponse` variant writes a one-byte tag in
//! `encode` and is rebuilt from that tag in `decode`. Nothing in the type
//! system keeps the two match statements in lockstep — PR 1's `Batch`
//! tag-nesting bug lived exactly there — so this pass parses the enums and
//! both codecs out of `crates/net/src/protocol.rs` and checks:
//!
//! * `W001` — tags are unique within each enum's encode and decode maps;
//! * `W002` — every variant writes a tag in `encode`;
//! * `W003` — every variant is produced by a `decode` match arm;
//! * `W004` — `encode` and `decode` agree on each variant's tag;
//! * `W005` — the request and response tag sets pair up: every request
//!   tag has a response tag and vice versa (the paper's request/reply
//!   vocabulary is symmetric, like everything else in MINOS).
//!
//! [`run_single`] applies `W001`–`W004` to a lone enum with no paired
//! counterpart — the framed transport's envelope tags in
//! `crates/net/src/frame.rs` are audited this way.

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// The extracted wire surface of one enum: variant names plus the
/// variant→tag maps seen in `encode` and `decode`.
#[derive(Debug, Default)]
pub struct EnumWire {
    /// Variant names with the line each is declared on.
    pub variants: Vec<(String, usize)>,
    /// `encode`: variant → (tag, line of the `put_u8`).
    pub encode: BTreeMap<String, (u64, usize)>,
    /// `decode`: variant → (tag, line of the match arm).
    pub decode: BTreeMap<String, (u64, usize)>,
}

/// Runs the audit over a protocol source file for the two enum names.
pub fn run(file: &SourceFile, request_enum: &str, response_enum: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let request = extract(file, request_enum, &mut out);
    let response = extract(file, response_enum, &mut out);
    check_enum(file, request_enum, &request, &mut out);
    check_enum(file, response_enum, &response, &mut out);

    // W005: request/response pairing.
    let req_tags: Vec<u64> = request.encode.values().map(|&(t, _)| t).collect();
    let resp_tags: Vec<u64> = response.encode.values().map(|&(t, _)| t).collect();
    for &(tag, line) in request.encode.values() {
        if !resp_tags.contains(&tag) {
            out.push(Diagnostic::new(
                "W005",
                &file.rel,
                line,
                format!("request tag {tag} has no paired {response_enum} tag"),
            ));
        }
    }
    for &(tag, line) in response.encode.values() {
        if !req_tags.contains(&tag) {
            out.push(Diagnostic::new(
                "W005",
                &file.rel,
                line,
                format!("response tag {tag} has no paired {request_enum} tag"),
            ));
        }
    }
    out
}

/// Runs the single-enum half of the audit (`W001`–`W004`) over one enum
/// with no request/response twin, such as the frame envelope's
/// `FramePayload`. There is no counterpart, so no `W005` pairing applies.
pub fn run_single(file: &SourceFile, enum_name: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let wire = extract(file, enum_name, &mut out);
    check_enum(file, enum_name, &wire, &mut out);
    out
}

fn check_enum(file: &SourceFile, name: &str, wire: &EnumWire, out: &mut Vec<Diagnostic>) {
    // W001: duplicate tags within encode and within decode.
    for (map, which) in [(&wire.encode, "encode"), (&wire.decode, "decode")] {
        let mut seen: BTreeMap<u64, &str> = BTreeMap::new();
        for (variant, &(tag, line)) in map {
            if let Some(first) = seen.get(&tag) {
                out.push(Diagnostic::new(
                    "W001",
                    &file.rel,
                    line,
                    format!("{name}::{variant} reuses wire tag {tag} (already used by {name}::{first} in {which})"),
                ));
            } else {
                seen.insert(tag, variant);
            }
        }
    }
    // W002/W003/W004 per variant.
    for (variant, decl_line) in &wire.variants {
        let enc = wire.encode.get(variant);
        let dec = wire.decode.get(variant);
        match (enc, dec) {
            (None, _) => out.push(Diagnostic::new(
                "W002",
                &file.rel,
                *decl_line,
                format!("{name}::{variant} never writes a wire tag in encode"),
            )),
            (_, None) => out.push(Diagnostic::new(
                "W003",
                &file.rel,
                *decl_line,
                format!("{name}::{variant} has no decode match arm"),
            )),
            (Some(&(enc_tag, _)), Some(&(dec_tag, dec_line))) if enc_tag != dec_tag => {
                out.push(Diagnostic::new(
                    "W004",
                    &file.rel,
                    dec_line,
                    format!("{name}::{variant} encodes tag {enc_tag} but decodes tag {dec_tag}"),
                ));
            }
            _ => {}
        }
    }
}

/// Extracts one enum's wire surface from the file. Shared with the spec
/// extractor, which serializes the same maps instead of checking them.
pub(crate) fn extract(file: &SourceFile, enum_name: &str, out: &mut Vec<Diagnostic>) -> EnumWire {
    let mut wire = EnumWire::default();
    let Some(body) = item_body(&file.code, &format!("enum {enum_name}")) else {
        out.push(Diagnostic::new(
            "W002",
            &file.rel,
            1,
            format!("enum {enum_name} not found in {}", file.rel),
        ));
        return wire;
    };
    wire.variants = enum_variants(file, body);
    let variant_names: Vec<&str> = wire.variants.iter().map(|(v, _)| v.as_str()).collect();

    if let Some(impl_body) = item_body(&file.code, &format!("impl {enum_name}")) {
        let impl_code = &file.code[impl_body.0..impl_body.1];
        if let Some(enc) = item_body(impl_code, "fn encode") {
            wire.encode = encode_map(
                file,
                impl_body.0 + enc.0,
                &impl_code[enc.0..enc.1],
                enum_name,
                &variant_names,
            );
        }
        if let Some(dec) = item_body(impl_code, "fn decode") {
            wire.decode = decode_map(
                file,
                impl_body.0 + dec.0,
                &impl_code[dec.0..dec.1],
                enum_name,
                &variant_names,
            );
        }
    }
    wire
}

/// Finds `needle` and returns the byte range of the brace-balanced body
/// that follows it (exclusive of the braces' surroundings: the range spans
/// from the opening `{` to just past its matching `}`).
fn item_body(code: &str, needle: &str) -> Option<(usize, usize)> {
    let at = code.find(needle)?;
    let bytes = code.as_bytes();
    let mut i = at + needle.len();
    while i < bytes.len() && bytes[i] != b'{' {
        // Give up if another item starts first (e.g. `enum Foo;`).
        if bytes[i] == b';' {
            return None;
        }
        i += 1;
    }
    let mut depth = 0usize;
    let start = i;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, i + 1));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Collects variant names declared at depth 1 of an enum body.
fn enum_variants(file: &SourceFile, body: (usize, usize)) -> Vec<(String, usize)> {
    let code = &file.code[body.0..body.1];
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut offset = 0;
    for line in code.split_inclusive('\n') {
        let depth_at_start = depth;
        for b in line.bytes() {
            match b {
                b'{' | b'(' | b'<' => depth += 1,
                b'}' | b')' | b'>' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        let trimmed = line.trim();
        if depth_at_start == 1
            && !trimmed.is_empty()
            && !trimmed.starts_with('#')
            && trimmed.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        {
            let name: String =
                trimmed.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
            if !name.is_empty() {
                variants.push((name, file.line_of(body.0 + offset)));
            }
        }
        offset += line.len();
    }
    variants
}

/// Builds the variant→tag map of an `encode` body: each `EnumName::Variant`
/// match arm is associated with the first `put_u8(<int>)` that follows it.
fn encode_map(
    file: &SourceFile,
    body_start: usize,
    code: &str,
    enum_name: &str,
    variants: &[&str],
) -> BTreeMap<String, (u64, usize)> {
    let mut map = BTreeMap::new();
    let mut current: Option<String> = None;
    let mut offset = 0;
    for line in code.split_inclusive('\n') {
        if let Some(variant) = variant_ref(line, enum_name, variants) {
            if line.contains("=>") {
                current = Some(variant);
            }
        }
        if let (Some(variant), Some(tag)) = (&current, int_arg(line, "put_u8(")) {
            let line_no = file.line_of(body_start + offset);
            map.entry(variant.clone()).or_insert((tag, line_no));
            current = None;
        }
        offset += line.len();
    }
    map
}

/// Builds the variant→tag map of a `decode` body: each integer match arm
/// (`3 => ...`) is associated with the first `EnumName::Variant` reference
/// in its body.
fn decode_map(
    file: &SourceFile,
    body_start: usize,
    code: &str,
    enum_name: &str,
    variants: &[&str],
) -> BTreeMap<String, (u64, usize)> {
    let mut map = BTreeMap::new();
    let mut current: Option<(u64, usize)> = None;
    let mut offset = 0;
    for line in code.split_inclusive('\n') {
        if let Some(arrow) = line.find("=>") {
            let pat = line[..arrow].trim();
            if let Ok(tag) = pat.replace('_', "").parse::<u64>() {
                current = Some((tag, file.line_of(body_start + offset)));
            } else if !pat.is_empty() && !pat.starts_with(|c: char| c.is_ascii_digit()) {
                // A non-integer arm (`other => ...`) ends tag attribution.
                current = None;
            }
        }
        if let Some((tag, arm_line)) = current {
            if let Some(variant) = variant_ref(line, enum_name, variants) {
                map.entry(variant).or_insert((tag, arm_line));
                current = None;
            }
        }
        offset += line.len();
    }
    map
}

/// The first `EnumName::Variant` reference on a line, if any.
fn variant_ref(line: &str, enum_name: &str, variants: &[&str]) -> Option<String> {
    let prefix = format!("{enum_name}::");
    let mut at = 0;
    while let Some(found) = line[at..].find(&prefix) {
        let start = at + found + prefix.len();
        let name: String =
            line[start..].chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if variants.contains(&name.as_str()) {
            return Some(name);
        }
        at = start;
    }
    None
}

/// Parses `needle(<integer literal>` on a line, returning the integer.
fn int_arg(line: &str, needle: &str) -> Option<u64> {
    let at = line.find(needle)? + needle.len();
    let digits: String =
        line[at..].chars().take_while(|c| c.is_ascii_digit() || *c == '_').collect();
    if digits.is_empty() {
        return None;
    }
    digits.replace('_', "").parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const MINI: &str = r#"
pub enum ServerRequest {
    Fetch { id: u64 },
    Query { words: Vec<String> },
}

pub enum ServerResponse {
    Object(Vec<u8>),
    Hits(Vec<u64>),
}

impl ServerRequest {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerRequest::Fetch { id } => {
                e.put_u8(1);
            }
            ServerRequest::Query { words } => {
                e.put_u8(2);
            }
        }
    }
    pub fn decode(bytes: &[u8]) -> Result<ServerRequest> {
        let req = match d.get_u8()? {
            1 => ServerRequest::Fetch { id: 0 },
            2 => {
                ServerRequest::Query { words: vec![] }
            }
            other => return Err(other),
        };
    }
}

impl ServerResponse {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerResponse::Object(b) => {
                e.put_u8(1);
            }
            ServerResponse::Hits(h) => {
                e.put_u8(2);
            }
        }
    }
    pub fn decode(bytes: &[u8]) -> Result<ServerResponse> {
        let resp = match d.get_u8()? {
            1 => ServerResponse::Object(vec![]),
            2 => ServerResponse::Hits(vec![]),
            other => return Err(other),
        };
    }
}
"#;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_text(PathBuf::from("p.rs"), "p.rs".into(), src.to_string())
    }

    #[test]
    fn clean_protocol_passes() {
        let diags = run(&file(MINI), "ServerRequest", "ServerResponse");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn extraction_sees_variants_and_tags() {
        let f = file(MINI);
        let mut out = Vec::new();
        let wire = extract(&f, "ServerRequest", &mut out);
        assert!(out.is_empty());
        let names: Vec<&str> = wire.variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(names, vec!["Fetch", "Query"]);
        assert_eq!(wire.encode["Fetch"].0, 1);
        assert_eq!(wire.encode["Query"].0, 2);
        assert_eq!(wire.decode["Fetch"].0, 1);
        assert_eq!(wire.decode["Query"].0, 2);
    }

    #[test]
    fn duplicate_tag_is_w001() {
        let src = MINI.replace("e.put_u8(2);\n            }\n        }\n    }\n    pub fn decode(bytes: &[u8]) -> Result<ServerRequest>", "e.put_u8(1);\n            }\n        }\n    }\n    pub fn decode(bytes: &[u8]) -> Result<ServerRequest>");
        let diags = run(&file(&src), "ServerRequest", "ServerResponse");
        assert!(diags.iter().any(|d| d.rule == "W001"), "{diags:?}");
    }

    #[test]
    fn missing_decode_arm_is_w003() {
        let src = MINI.replace("            2 => {\n                ServerRequest::Query { words: vec![] }\n            }\n", "");
        let diags = run(&file(&src), "ServerRequest", "ServerResponse");
        assert!(diags.iter().any(|d| d.rule == "W003" && d.message.contains("Query")), "{diags:?}");
    }

    #[test]
    fn tag_disagreement_is_w004() {
        let src = MINI.replace(
            "1 => ServerRequest::Fetch { id: 0 },",
            "3 => ServerRequest::Fetch { id: 0 },",
        );
        let diags = run(&file(&src), "ServerRequest", "ServerResponse");
        assert!(diags.iter().any(|d| d.rule == "W004"), "{diags:?}");
    }

    #[test]
    fn unpaired_tag_is_w005() {
        let src = MINI.replace(
            "ServerResponse::Hits(h) => {\n                e.put_u8(2);",
            "ServerResponse::Hits(h) => {\n                e.put_u8(9);",
        );
        let diags = run(&file(&src), "ServerRequest", "ServerResponse");
        // Response tag 9 unpaired, and request tag 2 unpaired.
        assert_eq!(diags.iter().filter(|d| d.rule == "W005").count(), 2, "{diags:?}");
        // W004 too: decode still says 2.
        assert!(diags.iter().any(|d| d.rule == "W004"), "{diags:?}");
    }
}
