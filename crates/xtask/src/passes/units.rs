//! Unit-safety audit (`U001`, `U002`, `U003`).
//!
//! PR 1's `Link::transfer_cost` bug was a lossy `as u64` cast on widened
//! duration arithmetic: the u64 numerator silently saturated past ~18 TB.
//! The class is mechanical, so it gets a mechanical check. In non-test
//! code outside `crates/types/src/time.rs` (which owns the saturating
//! helpers and is the one place allowed to touch raw microsecond words):
//!
//! * `U001` — a narrowing `as u64`/`as u32`/`as usize` cast on a line that
//!   performs `u128` arithmetic (widened duration *or* byte-count math —
//!   the exact `transfer_cost` shape). Use
//!   `SimDuration::from_micros_saturating` instead.
//! * `U002` — a narrowing cast in duration context: `as u32`/`as usize`
//!   on a line mentioning micros/millis/secs/duration, or `as u64` on such
//!   a line that also round-trips through `as f64`. Convert via
//!   `usize::try_from`/`u32::try_from` or the saturating helpers so the
//!   loss is explicit.
//! * `U003` — a decoded varint narrowed with `as usize`/`as u32` — the
//!   unbounded-element-count shape from the protocol decode sweep: on
//!   32-bit targets the cast is lossy, and on corrupt input the count can
//!   claim memory the message never carries. Bound it against the
//!   decoder's remaining input (`Decoder::get_len`) or convert with
//!   `try_from`.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

const NARROWING: &[&str] = &[" as u64", " as u32", " as usize"];
const DURATION_WORDS: &[&str] = &["micros", "millis", "secs", "duration"];

/// Runs the pass over already-scoped files (the caller exempts
/// `crates/types/src/time.rs`).
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        for (line_no, line) in file.code_lines() {
            if file.is_test_line(line_no) {
                continue;
            }
            let lower = line.to_ascii_lowercase();
            let narrowing: Vec<&str> =
                NARROWING.iter().copied().filter(|c| line.contains(c)).collect();
            if narrowing.is_empty() {
                continue;
            }
            if line.contains("u128") {
                let casts = narrowing.iter().map(|c| c.trim()).collect::<Vec<_>>().join("`, `");
                out.push(Diagnostic::new(
                    "U001",
                    &file.rel,
                    line_no,
                    format!(
                        "narrowing `{casts}` on u128 arithmetic; use \
                         SimDuration::from_micros_saturating (the transfer_cost bug class)"
                    ),
                ));
                continue;
            }
            if line.contains("get_varint") && narrowing.iter().any(|c| *c != " as u64") {
                out.push(Diagnostic::new(
                    "U003",
                    &file.rel,
                    line_no,
                    "varint narrowed straight to an element count; bound it against the \
                     decoder's remaining input (Decoder::get_len) or convert with try_from",
                ));
                continue;
            }
            let duration_ctx = DURATION_WORDS.iter().any(|w| lower.contains(w));
            if !duration_ctx {
                continue;
            }
            let lossy_small = narrowing.iter().any(|c| *c != " as u64");
            let lossy_f64 = line.contains(" as f64") && narrowing.contains(&" as u64");
            if lossy_small || lossy_f64 {
                out.push(Diagnostic::new(
                    "U002",
                    &file.rel,
                    line_no,
                    "narrowing cast on duration arithmetic; use try_from or the saturating \
                     helpers in minos_types::time",
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_on(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(PathBuf::from("m.rs"), "m.rs".into(), src.to_string());
        run(std::slice::from_ref(&f))
    }

    #[test]
    fn flags_u128_narrowing() {
        let diags =
            run_on("let micros = (bytes as u128 * 1_000_000).div_ceil(bps as u128) as u64;\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "U001");
    }

    #[test]
    fn flags_duration_narrowing_to_small_ints() {
        let diags = run_on("let pages = total.as_micros().div_ceil(page.as_micros()) as usize;\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "U002");
    }

    #[test]
    fn flags_f64_round_trip_to_u64_in_duration_context() {
        let diags = run_on("let us = (base.as_micros() as f64 * factor).max(1.0) as u64;\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "U002");
    }

    #[test]
    fn flags_varint_counts_narrowed_with_as() {
        let diags = run_on("let n = d.get_varint()? as usize;\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "U003");
        let diags = run_on("let tag = reader.get_varint().unwrap_or(0) as u32;\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "U003");
    }

    #[test]
    fn bounded_varint_counts_are_clean() {
        // `get_len` bounds against remaining input; a plain u64 varint read
        // involves no narrowing at all.
        let src = "let n = d.get_len()?;\nlet v = d.get_varint()?;\n";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn widening_and_out_of_context_casts_are_clean() {
        let src = "let a = samples.len() as u64 * 1_000_000 / rate as u64;\n\
                   let b = SimDuration::from_micros(total / completions.len() as u64);\n\
                   let c = keywords.len() as u64;\n\
                   let d = idx as usize;\n";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let x = (y as u128) as u64; }\n}\n";
        assert!(run_on(src).is_empty());
    }
}
