//! Codec-coverage audit (`C001`–`C003`).
//!
//! The wire types are hand-written codecs; three invariants keep them
//! honest, generalizing what the U003 rule and the `get_len` sweep fixed
//! by hand in `object::descriptor` and the checkpoint codec. Over the
//! codec scope (`types::codec`, `net::protocol`, `net::frame`,
//! `core::session`):
//!
//! * `C001` — a type with an `encode`/`encode_to`/`encode_into` fn but no
//!   `decode` in its file. Every wire type must round-trip; an
//!   encode-only type is either dead weight or a decoder someone forgot.
//! * `C002` — an element count read with a raw `get_varint` and then used
//!   as a loop bound (`0..count`) or allocation size
//!   (`with_capacity(count)`). U003 catches the single-line
//!   `get_varint()? as usize` shape; this follows the binding across
//!   lines. Counts must flow through `Decoder::get_len`, which bounds
//!   them against the remaining input before any allocation.
//! * `C003` — a versioned record whose decode never looks: `encode`
//!   writes a `*VERSION*` const but `decode` never mentions it, so a
//!   bumped record would decode as garbage instead of a typed error.
//!
//! `C001` and `C003` are structural (never allowlistable); `C002` is
//! ratchetable like its U003 ancestor.

use crate::diag::Diagnostic;
use crate::parse::{fns_in, impl_blocks, mentions_word};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Runs the audit over the codec-scope files.
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        run_file(file, &mut out);
    }
    out
}

struct OwnerCodec {
    /// Line of the first encode fn.
    encode_line: usize,
    /// Concatenated encode bodies.
    encode_bodies: String,
    /// Line of the first decode fn (if any).
    decode_line: Option<usize>,
    /// Concatenated decode bodies.
    decode_bodies: String,
}

fn run_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut owners: BTreeMap<String, OwnerCodec> = BTreeMap::new();
    for block in impl_blocks(&file.code) {
        for f in fns_in(&file.code, block.body) {
            let line = file.line_of(f.at);
            if file.is_test_line(line) {
                continue;
            }
            let body = &file.code[f.body.0..f.body.1];
            let is_encode = f.name == "encode" || f.name.starts_with("encode_");
            let is_decode = f.name == "decode" || f.name.starts_with("decode_");
            if !is_encode && !is_decode {
                continue;
            }
            let e = owners.entry(block.owner.clone()).or_insert(OwnerCodec {
                encode_line: 0,
                encode_bodies: String::new(),
                decode_line: None,
                decode_bodies: String::new(),
            });
            if is_encode {
                if e.encode_bodies.is_empty() {
                    e.encode_line = line;
                }
                e.encode_bodies.push_str(body);
            } else {
                e.decode_line.get_or_insert(line);
                e.decode_bodies.push_str(body);
            }
        }
    }

    for (owner, codec) in &owners {
        if codec.encode_bodies.is_empty() {
            continue; // decode-only types are fine: decoding is the hard half
        }
        // C001: encode with no decode.
        if codec.decode_line.is_none() {
            out.push(Diagnostic::new(
                "C001",
                &file.rel,
                codec.encode_line,
                format!("{owner} encodes but has no decode; every wire type must round-trip"),
            ));
            continue;
        }
        // C003: versioned encode, unversioned decode.
        for token in version_tokens(&codec.encode_bodies) {
            if !mentions_word(&codec.decode_bodies, &token) {
                out.push(Diagnostic::new(
                    "C003",
                    &file.rel,
                    codec.decode_line.unwrap_or(codec.encode_line),
                    format!(
                        "{owner}::decode never checks {token} written by encode; match the \
                         version with a typed-error default arm"
                    ),
                ));
            }
        }
    }

    // C002: raw varint bindings used as counts, tracked per fn.
    let mut live: Vec<String> = Vec::new();
    for (line_no, line) in file.code_lines() {
        if file.is_test_line(line_no) {
            continue;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("fn ") || trimmed.contains(" fn ") {
            live.clear(); // new fn: bindings do not cross fn boundaries
        }
        for ident in &live {
            let counted =
                line.contains(&format!("with_capacity({ident})")) || range_bound(line, ident);
            if counted {
                out.push(Diagnostic::new(
                    "C002",
                    &file.rel,
                    line_no,
                    format!(
                        "element count `{ident}` comes from a raw get_varint; read it with \
                         Decoder::get_len so it is bounded by the remaining input"
                    ),
                ));
            }
        }
        if let Some(ident) = varint_binding(line) {
            live.push(ident);
        }
    }
}

/// Uppercase identifiers containing `VERSION` (const names like
/// `CHECKPOINT_VERSION`) mentioned in `text`.
fn version_tokens(text: &str) -> Vec<String> {
    let mut out: Vec<String> = crate::parse::ident_tokens(text)
        .into_iter()
        .filter(|t| t.contains("VERSION") && t.chars().all(|c| c.is_ascii_uppercase() || c == '_'))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// `let <ident> = ... get_varint ...` with no `get_len`/`try_from` rescue
/// on the same line.
fn varint_binding(line: &str) -> Option<String> {
    if !line.contains("get_varint") || line.contains("get_len") || line.contains("try_from") {
        return None;
    }
    let after_let = line.trim_start().strip_prefix("let ")?;
    let name: String = after_let
        .trim_start_matches("mut ")
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" {
        return None;
    }
    Some(name)
}

/// Whether `line` uses `ident` as a range bound: `..ident` (exclusive or
/// inclusive) with an identifier boundary after it.
fn range_bound(line: &str, ident: &str) -> bool {
    let needle = format!("..{ident}");
    let mut from = 0;
    while let Some(found) = line[from..].find(&needle) {
        let at = from + found;
        let end = at + needle.len();
        let after_ok =
            line.as_bytes().get(end).is_none_or(|b| !(b.is_ascii_alphanumeric() || *b == b'_'));
        if after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_on(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(PathBuf::from("m.rs"), "m.rs".into(), src.to_string());
        run(std::slice::from_ref(&f))
    }

    #[test]
    fn encode_without_decode_is_c001() {
        let src = "\
impl Record {
    pub fn encode(&self) -> Vec<u8> {
        Vec::new()
    }
}
";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "C001");
        assert!(diags[0].message.contains("Record"));
    }

    #[test]
    fn round_tripping_type_is_clean() {
        let src = "\
impl Record {
    pub fn encode_to(&self, e: &mut Encoder) {
        e.put_u8(1);
    }
    pub fn decode(bytes: &[u8]) -> Result<Record> {
        Ok(Record)
    }
}
";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn raw_varint_loop_bound_is_c002() {
        let src = "\
impl Record {
    pub fn decode(bytes: &[u8]) -> Result<Record> {
        let count = d.get_varint()?;
        let mut items = Vec::new();
        for _ in 0..count {
            items.push(d.get_u8()?);
        }
        Ok(Record { items })
    }
}
";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "C002");
        assert!(diags[0].message.contains("count"));
    }

    #[test]
    fn raw_varint_with_capacity_is_c002_but_get_len_is_clean() {
        let bad = "\
impl Record {
    fn decode(bytes: &[u8]) -> Result<Record> {
        let n = d.get_varint()?;
        let items = Vec::with_capacity(n);
        Ok(Record { items })
    }
}
";
        let diags = run_on(bad);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "C002");

        let good = bad.replace("get_varint()?", "get_len()?");
        assert!(run_on(&good).is_empty());
    }

    #[test]
    fn bindings_do_not_leak_across_fns() {
        let src = "\
impl Record {
    fn decode(bytes: &[u8]) -> Result<Record> {
        let n = d.get_varint()?;
        Ok(Record { n })
    }
    fn other(&self) {
        for _ in 0..n {
            work();
        }
    }
}
";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn versioned_encode_without_version_check_is_c003() {
        let src = "\
impl Record {
    pub fn encode(&self) -> Vec<u8> {
        e.put_u8(RECORD_VERSION);
        e.finish()
    }
    pub fn decode(bytes: &[u8]) -> Result<Record> {
        let _v = d.get_u8()?;
        Ok(Record)
    }
}
";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "C003");
        assert!(diags[0].message.contains("RECORD_VERSION"));
    }

    #[test]
    fn version_checked_decode_is_clean() {
        let src = "\
impl Record {
    pub fn encode(&self) -> Vec<u8> {
        e.put_u8(RECORD_VERSION);
        e.finish()
    }
    pub fn decode(bytes: &[u8]) -> Result<Record> {
        let v = d.get_u8()?;
        if v != RECORD_VERSION {
            return Err(bad(v));
        }
        Ok(Record)
    }
}
";
        assert!(run_on(src).is_empty());
    }
}
