//! Symmetry audit (`S001`–`S003`).
//!
//! "The information system should provide symmetric capabilities for
//! entering, presenting, and browsing through voice or text" (§1). The
//! paper's Section 2 browsing vocabulary — pages, logical-unit steps,
//! pattern/utterance search — must exist on both substrates. This pass
//! extracts the fully-public `pub fn` surface of `crates/text` and
//! `crates/voice` with the signature parser and checks every primitive
//! category below against both sides:
//!
//! * `S001` — the text side has the primitive, the voice side does not;
//! * `S002` — the voice side has it, the text side does not;
//! * `S003` — the primitive has vanished from both substrates.
//!
//! The category table names the accepted function spellings per side
//! (text addresses characters, voice addresses instants, so the names
//! differ where the coordinate does). Growing either substrate with a new
//! browsing primitive means adding a category here — which immediately
//! demands the counterpart.

use crate::diag::Diagnostic;
use crate::sig::PubFn;

/// One browsing-primitive category of the paper's Section 2 vocabulary.
#[derive(Debug, Clone, Copy)]
pub struct PrimitiveCategory {
    /// Category name used in diagnostics.
    pub name: &'static str,
    /// Accepted text-side function names.
    pub text: &'static [&'static str],
    /// Accepted voice-side function names.
    pub voice: &'static [&'static str],
}

/// The paper's browsing vocabulary, one category per primitive.
pub const CATEGORIES: &[PrimitiveCategory] = &[
    PrimitiveCategory { name: "page count", text: &["page_count"], voice: &["page_count"] },
    PrimitiveCategory {
        name: "page addressing (position -> page)",
        text: &["page_containing"],
        voice: &["page_containing"],
    },
    PrimitiveCategory {
        name: "page-number addressing",
        text: &["page_number_containing"],
        voice: &["page_number_containing"],
    },
    PrimitiveCategory {
        name: "logical-unit step forward",
        text: &["next_start_after"],
        voice: &["next_start_after"],
    },
    PrimitiveCategory {
        name: "logical-unit step backward",
        text: &["prev_start_before"],
        voice: &["prev_start_before"],
    },
    PrimitiveCategory {
        name: "logical-unit levels",
        text: &["available_levels"],
        voice: &["available_levels"],
    },
    PrimitiveCategory { name: "logical-unit count", text: &["count"], voice: &["count"] },
    PrimitiveCategory {
        name: "pattern/utterance search forward",
        text: &["find_next", "next_occurrence"],
        voice: &["next_occurrence"],
    },
    PrimitiveCategory {
        name: "pattern/utterance search backward",
        text: &["find_prev", "prev_occurrence"],
        voice: &["prev_occurrence"],
    },
    PrimitiveCategory {
        name: "pattern/utterance search all occurrences",
        text: &["find_all", "positions"],
        voice: &["occurrences"],
    },
];

/// Runs the audit over the two extracted surfaces.
pub fn run(text_fns: &[PubFn], voice_fns: &[PubFn]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for cat in CATEGORIES {
        let text_hit = first_match(text_fns, cat.text);
        let voice_hit = first_match(voice_fns, cat.voice);
        match (text_hit, voice_hit) {
            (Some(_), Some(_)) => {}
            (Some(t), None) => out.push(Diagnostic::new(
                "S001",
                &t.file,
                t.line,
                format!(
                    "text primitive {:?} ({}) has no voice counterpart; expected one of {:?} \
                     in crates/voice",
                    t.name, cat.name, cat.voice
                ),
            )),
            (None, Some(v)) => out.push(Diagnostic::new(
                "S002",
                &v.file,
                v.line,
                format!(
                    "voice primitive {:?} ({}) has no text counterpart; expected one of {:?} \
                     in crates/text",
                    v.name, cat.name, cat.text
                ),
            )),
            (None, None) => out.push(Diagnostic::new(
                "S003",
                "crates/text/src/lib.rs",
                1,
                format!(
                    "browsing primitive {:?} is missing from both substrates (text: {:?}, \
                     voice: {:?})",
                    cat.name, cat.text, cat.voice
                ),
            )),
        }
    }
    out
}

fn first_match<'a>(fns: &'a [PubFn], names: &[&str]) -> Option<&'a PubFn> {
    fns.iter().find(|f| names.contains(&f.name.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::Visibility;

    fn f(name: &str, file: &str) -> PubFn {
        PubFn {
            name: name.into(),
            params: String::new(),
            ret: None,
            file: file.into(),
            line: 1,
            vis: Visibility::Public,
        }
    }

    fn full_surface(names: &[&str], file: &str) -> Vec<PubFn> {
        names.iter().map(|n| f(n, file)).collect()
    }

    const TEXT_OK: &[&str] = &[
        "page_count",
        "page_containing",
        "page_number_containing",
        "next_start_after",
        "prev_start_before",
        "available_levels",
        "count",
        "find_next",
        "find_prev",
        "find_all",
    ];
    const VOICE_OK: &[&str] = &[
        "page_count",
        "page_containing",
        "page_number_containing",
        "next_start_after",
        "prev_start_before",
        "available_levels",
        "count",
        "next_occurrence",
        "prev_occurrence",
        "occurrences",
    ];

    #[test]
    fn symmetric_surfaces_pass() {
        let diags = run(&full_surface(TEXT_OK, "t.rs"), &full_surface(VOICE_OK, "v.rs"));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn missing_voice_counterpart_is_s001() {
        let voice: Vec<&str> =
            VOICE_OK.iter().copied().filter(|n| *n != "prev_occurrence").collect();
        let diags = run(&full_surface(TEXT_OK, "t.rs"), &full_surface(&voice, "v.rs"));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "S001");
        assert!(diags[0].message.contains("search backward"));
        assert_eq!(diags[0].file, "t.rs");
    }

    #[test]
    fn missing_text_counterpart_is_s002() {
        let text: Vec<&str> = TEXT_OK.iter().copied().filter(|n| *n != "page_count").collect();
        let diags = run(&full_surface(&text, "t.rs"), &full_surface(VOICE_OK, "v.rs"));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "S002");
        assert_eq!(diags[0].file, "v.rs");
    }

    #[test]
    fn primitive_gone_from_both_is_s003() {
        let text: Vec<&str> = TEXT_OK.iter().copied().filter(|n| *n != "count").collect();
        let voice: Vec<&str> = VOICE_OK.iter().copied().filter(|n| *n != "count").collect();
        let diags = run(&full_surface(&text, "t.rs"), &full_surface(&voice, "v.rs"));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "S003");
    }
}
