//! Allocation-hygiene audit (`A001`).
//!
//! The framed transport's hot path — frame encode, fault injection,
//! the client connection, and the prefetch pipeline — runs one page per
//! message at the paper's target rates, so a fresh heap allocation per
//! message is the difference between the pooled steady state (under one
//! allocation per page, pinned by E12/E14) and an allocator-bound server.
//! This pass flags the allocation idioms that defeat the buffer pool on
//! those modules: `.to_vec()` (copies a borrowed span it could have kept
//! borrowing), `.clone()` (duplicates an owned message the pool pattern
//! moves instead), and `Vec::with_capacity(` (mints a buffer the pool
//! would have leased).
//!
//! There is no guard heuristic: on the scoped files the pooled
//! alternatives (`BufferPool::lease_vec`/`recycle`, borrowed decode via
//! `get_bytes_ref`, move-in/move-out framing) always exist, so every
//! remaining allocation is debt. The legitimate residue — a clone taken
//! *only* on a fault-injection mangle, the one copy a borrowing submit
//! must pay to build a typed frame — is enumerated in `lint-allow.toml`
//! with a reason, and the ratchet keeps that debt shrink-only.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Call idioms that allocate a fresh buffer on the hot path. Each entry
/// pairs the needle with the pooled alternative named in the finding.
const ALLOC_CALLS: &[(&str, &str)] = &[
    (".to_vec()", "borrow the span (`get_bytes_ref`) or copy into a leased buffer"),
    (".clone()", "move the value, or retain encoded bytes instead of a second owned copy"),
    ("Vec::with_capacity(", "lease from the `BufferPool` and recycle after use"),
];

/// Runs the pass over already-scoped files.
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        for (call, fix) in ALLOC_CALLS {
            for (pos, _) in file.code.match_indices(call) {
                let line = file.line_of(pos);
                if file.is_test_line(line) {
                    continue;
                }
                out.push(Diagnostic::new(
                    "A001",
                    &file.rel,
                    line,
                    format!(
                        "hot-path allocation `{call}`: {fix}, or ratchet it in \
                         lint-allow.toml with a reason"
                    ),
                ));
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_on(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(PathBuf::from("m.rs"), "m.rs".into(), src.to_string());
        run(std::slice::from_ref(&f))
    }

    #[test]
    fn flags_every_allocation_idiom() {
        let diags = run_on(
            "fn hot(b: &[u8], f: &Frame) {\n    let a = b.to_vec();\n    let c = f.clone();\n    let v: Vec<u8> = Vec::with_capacity(64);\n}\n",
        );
        let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![2, 3, 4], "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "A001"));
    }

    #[test]
    fn pooled_idioms_are_clean() {
        let diags = run_on(
            "fn hot(pool: &BufferPool, b: &[u8]) {\n    let mut v = pool.lease_vec();\n    v.extend_from_slice(b);\n    pool.recycle(v);\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_code_and_strings_are_exempt() {
        let src = "fn live() { let s = \".to_vec()\"; }\n#[cfg(test)]\nmod tests {\n    fn t(b: &[u8]) { let _ = b.to_vec(); }\n}\n";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn clone_closure_names_are_not_matched() {
        // `.clone()` with arguments or a cloned() iterator adapter is a
        // different idiom; only the exact nullary call matches.
        let diags = run_on("fn live(v: &[u8]) { let _ = v.iter().cloned().count(); }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
