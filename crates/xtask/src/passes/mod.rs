//! The four static-analysis passes.

pub mod panic_free;
pub mod symmetry;
pub mod units;
pub mod wire;
