//! The six static-analysis passes.

pub mod alloc_hygiene;
pub mod panic_free;
pub mod queue_growth;
pub mod symmetry;
pub mod units;
pub mod wire;
