//! The static-analysis passes.

pub mod alloc_hygiene;
pub mod codec_cov;
pub mod panic_free;
pub mod queue_growth;
pub mod reset;
pub mod symmetry;
pub mod units;
pub mod wire;
