//! Queue-growth audit (`Q001`).
//!
//! Admission control only works when every queue on the overload path has
//! a reachable capacity check. This pass flags `.push(...)` and
//! `.push_back(...)` growth sites in the transport and service scope whose
//! enclosing function never consults a capacity — the bug class the E14
//! admission work exists to prevent: a buffer that grows without bound
//! under a 4x offered load until the latency tail collapses.
//!
//! The heuristic is intentionally local: a growth site is *guarded* when
//! the enclosing `fn` (signature included) mentions a capacity-shaped
//! identifier fragment — `full`, `cap`/`capacity`, `limit`, `bound`,
//! `admit`, `shed`, `evict`, `truncate`. Sites that are bounded elsewhere
//! (the caller checked, or the collection is drained in lockstep) are
//! enumerated in `lint-allow.toml` with a reason, and the ratchet keeps
//! that debt shrink-only.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Method calls that grow a queue or buffer.
const GROWTH_CALLS: &[&str] = &[".push_back(", ".push("];

/// Identifier fragments (underscore-split, case-folded) that mark the
/// enclosing function as capacity-aware.
const CAPACITY_TOKENS: &[&str] = &[
    "full", "cap", "caps", "capacity", "limit", "bound", "bounded", "admit", "shed", "evict",
    "truncate",
];

/// Runs the pass over already-scoped files.
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        let extents = fn_extents(&file.code);
        for call in GROWTH_CALLS {
            for (pos, _) in file.code.match_indices(call) {
                // `.push(` must not re-report a `.push_back(` site.
                if *call == ".push(" && file.code[pos..].starts_with(".push_back(") {
                    continue;
                }
                let line = file.line_of(pos);
                if file.is_test_line(line) {
                    continue;
                }
                let enclosing = extents
                    .iter()
                    .filter(|e| e.start <= pos && pos < e.end)
                    .max_by_key(|e| e.start);
                let guarded = enclosing.is_some_and(|e| capacity_aware(&file.code[e.start..e.end]));
                if !guarded {
                    out.push(Diagnostic::new(
                        "Q001",
                        &file.rel,
                        line,
                        format!(
                            "unchecked queue growth `{}...)`: the enclosing fn never consults \
                             a capacity (is_full/cap/limit/shed); bound it or ratchet it in \
                             lint-allow.toml with a reason",
                            call
                        ),
                    ));
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// One `fn` item's extent in the code view: from the `fn` keyword through
/// the matching close brace of its body.
struct FnExtent {
    start: usize,
    end: usize,
}

/// Finds every `fn` item (free, inherent, trait-default) and its body
/// extent. Bodyless trait signatures (`fn f(...);`) are skipped. Nested
/// functions and closures inside a body simply yield nested extents; the
/// innermost enclosing one wins at lookup time.
fn fn_extents(code: &str) -> Vec<FnExtent> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (pos, _) in code.match_indices("fn ") {
        // Word boundary on the left: `fn` must not be the tail of an
        // identifier like `gen_fn `.
        if pos > 0 && (bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_') {
            continue;
        }
        // Walk the signature to the body's `{`, or bail on a bodyless
        // `;`. Array types in the signature (`[u8; 4]`) carry their own
        // semicolons, so only a `;` outside every bracket terminates.
        let mut depth = 0usize;
        let mut j = pos + 3;
        let body_open = loop {
            match bytes.get(j) {
                Some(b'(' | b'[' | b'<') => depth += 1,
                Some(b')' | b']') => depth = depth.saturating_sub(1),
                // A `>` closes a generic bracket unless it is an arrow's.
                Some(b'>') if j == 0 || bytes[j - 1] != b'-' => {
                    depth = depth.saturating_sub(1);
                }
                Some(b'{') if depth == 0 => break Some(j),
                Some(b';') if depth == 0 => break None,
                None => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = body_open else { continue };
        let mut brace = 0usize;
        let mut k = open;
        let mut end = code.len();
        while k < bytes.len() {
            match bytes[k] {
                b'{' => brace += 1,
                b'}' => {
                    brace -= 1;
                    if brace == 0 {
                        end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push(FnExtent { start: pos, end });
    }
    out
}

/// Whether a function's text (signature + body) mentions a capacity-shaped
/// identifier: any underscore-split fragment of any identifier equals one
/// of [`CAPACITY_TOKENS`], case-folded. Fragment equality — not substring
/// match — so `escape` never counts as `cap`.
fn capacity_aware(text: &str) -> bool {
    let mut word_start: Option<usize> = None;
    let bytes = text.as_bytes();
    let check = |from: usize, to: usize| -> bool {
        text[from..to]
            .split('_')
            .any(|part| CAPACITY_TOKENS.iter().any(|t| part.eq_ignore_ascii_case(t)))
    };
    for (i, b) in bytes.iter().enumerate() {
        if b.is_ascii_alphanumeric() || *b == b'_' {
            word_start.get_or_insert(i);
        } else if let Some(s) = word_start.take() {
            if check(s, i) {
                return true;
            }
        }
    }
    word_start.is_some_and(|s| check(s, text.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_on(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(PathBuf::from("m.rs"), "m.rs".into(), src.to_string());
        run(std::slice::from_ref(&f))
    }

    #[test]
    fn flags_push_and_push_back_without_a_capacity_check() {
        let diags =
            run_on("fn grow(q: &mut Q) {\n    q.inbox.push_back(1);\n    q.log.push(2);\n}\n");
        let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![2, 3], "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "Q001"));
    }

    #[test]
    fn capacity_tokens_in_the_enclosing_fn_exempt_the_site() {
        for guarded in [
            "fn admit(q: &mut Q) {\n    if q.is_full() { return; }\n    q.inbox.push_back(1);\n}\n",
            "fn enqueue(q: &mut Q) {\n    if q.len() >= q.global_cap { return; }\n    q.inbox.push_back(1);\n}\n",
            "fn enqueue(q: &mut Q, limit: usize) {\n    q.inbox.truncate(limit);\n    q.inbox.push_back(1);\n}\n",
            "fn shed_then_grow(q: &mut Q) {\n    q.inbox.push_back(1);\n}\n",
        ] {
            assert!(run_on(guarded).is_empty(), "{guarded}");
        }
    }

    #[test]
    fn fragment_equality_does_not_false_exempt() {
        // `escape` contains `cap` as a substring but not as a fragment;
        // `recapture` likewise. Neither guards the growth.
        let diags = run_on("fn escape_recapture(q: &mut Q) {\n    q.inbox.push_back(1);\n}\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn innermost_fn_wins_for_nested_items() {
        // The outer fn is capacity-aware, the inner closure-hosting fn is
        // not: the site binds to the innermost fn and is flagged.
        let diags = run_on(
            "fn outer_with_cap(q: &mut Q) {\n    fn inner(q: &mut Q) {\n        q.inbox.push_back(1);\n    }\n    inner(q);\n}\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn test_code_and_strings_are_exempt() {
        let src = "fn live() { let s = \".push_back(\"; }\n#[cfg(test)]\nmod tests {\n    fn t(q: &mut Q) { q.inbox.push_back(1); }\n}\n";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn bodyless_trait_signatures_do_not_confuse_extents() {
        let src = "trait T {\n    fn declared(&self);\n    fn provided(&mut self) {\n        self.queue.push(1);\n    }\n}\n";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }
}
