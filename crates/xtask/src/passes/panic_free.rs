//! Panic-freedom audit (`P001`–`P004`).
//!
//! The hot-path crates sit between wire bytes and device models: a panic
//! there takes the whole server down on attacker-controlled input. This
//! pass flags, in non-`#[cfg(test)]` code:
//!
//! * `P001` — `.unwrap()`;
//! * `P002` — `.expect(...)`;
//! * `P003` — `panic!`, `todo!`, `unimplemented!`, `unreachable!`;
//! * `P004` — bare slice/collection indexing (`v[i]`, `v[0]`,
//!   `v[a..b]`) — full-range `[..]` never panics and is not flagged.
//!
//! Existing debt is enumerated in `lint-allow.toml` and can only shrink.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

const PANIC_MACROS: &[&str] = &["panic!", "todo!", "unimplemented!", "unreachable!"];

/// Runs the pass over already-scoped files.
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        for (line_no, line) in file.code_lines() {
            if file.is_test_line(line_no) {
                continue;
            }
            if line.contains(".unwrap()") {
                out.push(Diagnostic::new(
                    "P001",
                    &file.rel,
                    line_no,
                    "unwrap() on the hot path; return a typed minos-types::error instead",
                ));
            }
            if line.contains(".expect(") {
                out.push(Diagnostic::new(
                    "P002",
                    &file.rel,
                    line_no,
                    "expect() on the hot path; return a typed minos-types::error instead",
                ));
            }
            for mac in PANIC_MACROS {
                if line.contains(mac) {
                    out.push(Diagnostic::new(
                        "P003",
                        &file.rel,
                        line_no,
                        format!("{mac} on the hot path; return a typed error instead"),
                    ));
                }
            }
            for index in bare_indexing(line) {
                out.push(Diagnostic::new(
                    "P004",
                    &file.rel,
                    line_no,
                    format!(
                        "bare indexing `[{index}]` can panic; use get()/get_mut() and handle None"
                    ),
                ));
            }
        }
    }
    out
}

/// Finds bare index expressions on one code-view line: a `[...]` whose
/// receiver is a value (identifier, `)`, or `]` immediately before the
/// bracket). Attributes (`#[...]`), array types/literals (`[u8; 4]`), and
/// the never-panicking full range `[..]` are not value indexing.
fn bare_indexing(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            let is_value = receiver_is_value(&bytes[..i]);
            if is_value {
                // Find the matching close on this line (multi-line index
                // expressions are rare enough to ignore).
                let mut depth = 0usize;
                let mut j = i;
                let mut end = None;
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                end = Some(j);
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(end) = end {
                    let content = line[i + 1..end].trim();
                    if !content.is_empty() && content != ".." {
                        out.push(content.to_string());
                    }
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Keywords that can directly precede a `[...]` slice *pattern* or type —
/// `let [a, b] = ...`, `for [x, y] in ...` — where the bracket is not an
/// index expression.
const PATTERN_KEYWORDS: &[&str] =
    &["let", "mut", "ref", "for", "in", "if", "else", "match", "return"];

/// Whether the token ending just before a `[` is a value expression
/// (identifier, `)`, or `]`). A lifetime (`&'a [u8]`) is type syntax, and
/// a keyword (`let [a] = ...`) introduces a pattern, not a value, even
/// though both end in identifier characters.
fn receiver_is_value(before: &[u8]) -> bool {
    let mut k = before.len();
    while k > 0 && before[k - 1].is_ascii_whitespace() {
        k -= 1;
    }
    if k == 0 {
        return false;
    }
    match before[k - 1] {
        b')' | b']' => true,
        b if b.is_ascii_alphanumeric() || b == b'_' => {
            let mut s = k - 1;
            while s > 0 && (before[s - 1].is_ascii_alphanumeric() || before[s - 1] == b'_') {
                s -= 1;
            }
            if s > 0 && before[s - 1] == b'\'' {
                return false;
            }
            let token = std::str::from_utf8(&before[s..k]).unwrap_or("");
            !PATTERN_KEYWORDS.contains(&token)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_on(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(PathBuf::from("m.rs"), "m.rs".into(), src.to_string());
        run(std::slice::from_ref(&f))
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let diags = run_on(
            "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!();\n    todo!()\n}\n",
        );
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["P001", "P002", "P003", "P003"]);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn near_misses_are_clean() {
        // unwrap_or, expect_end, strings, comments, tests.
        let src = "fn f() {\n    x.unwrap_or(0);\n    d.expect_end();\n    let s = \"panic! .unwrap()\";\n    // .expect( in a comment\n}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); v[0]; }\n}\n";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn flags_bare_indexing_but_not_types_or_full_range() {
        let diags = run_on(
            "fn f() {\n    let a = v[0];\n    let b = v[i];\n    let c = bytes[from..to];\n    let d = &all[..];\n    let e: [u8; 4] = [0; 4];\n    #[derive(Debug)]\n    struct S;\n}\n",
        );
        let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![2, 3, 4]);
        assert!(diags.iter().all(|d| d.rule == "P004"));
    }

    #[test]
    fn chained_indexing_after_call_is_flagged() {
        let diags = run_on("fn f() { let x = make()[3]; }\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "P004");
    }

    #[test]
    fn slice_patterns_after_keywords_are_not_indexing() {
        let src = "fn f(v: &[u8]) {\n    let [a] = v.take_array::<1>()?;\n    for [x, y] in pairs {}\n    let w = v[a];\n}\n";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn lifetime_slice_types_are_not_indexing() {
        let src = "pub fn decode(bytes: &[u8]) -> Result<T> { x }\n\
                   fn take<'a>(buf: &'a [u8], n: usize) -> Result<&'a [u8]> { y }\n";
        assert!(run_on(src).is_empty());
    }
}
