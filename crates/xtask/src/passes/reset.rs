//! Reset-completeness audit (`R001`–`R003`).
//!
//! Every hardening PR grew a `*Stats` struct, and two of them shipped a
//! drift bug first: a new counter that `reset_accounting` forgot, caught
//! by a hand-written regression test. The class is mechanical — a field
//! exists, no reset path mentions it — so it gets a mechanical check.
//! Over the accounting scope (`net`, `server`, `core`):
//!
//! * `R001` — a module's reset paths (every non-test `reset*`/`clear*`/
//!   `*_accounting` fn, taken together) mention *some* fields of a
//!   `*Stats`/`*Report` struct but not all of them. The unmentioned
//!   fields are exactly the drift-bug class.
//! * `R002` — a `*Stats` struct with no reset path at all in its module:
//!   no reset fn names the struct (a wholesale `S::default()` assignment
//!   counts), none touches any field, and no covered sibling struct
//!   embeds it. `*Report` structs are exempt — they are per-run outputs,
//!   built fresh each time, with nothing persistent to clear.
//! * `R003` — delegation drift: a type that *has* a reset fn holds a
//!   stats-bearing field (its type is a `*Stats` struct or another type
//!   with a reset fn, anywhere in the scope) that none of its reset fns
//!   ever touches. `Connection::reset_accounting` forgetting
//!   `pool.reset_stats()` is this exact bug.
//!
//! Coverage is judged on the *union* of a module's reset fns — split
//! resets (counters in one fn, queues in another) are fine — and by
//! identifier-boundary mention, so a struct rebuilt wholesale from
//! `Default` and one zeroed field-by-field both pass.

use crate::diag::Diagnostic;
use crate::parse::{fns_in, impl_blocks, mentions_word, struct_fields, structs, FieldItem, FnItem};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// A reset-family fn name: `reset*`, `clear*`, or `*_accounting`.
fn is_reset_name(name: &str) -> bool {
    name.starts_with("reset") || name.starts_with("clear") || name.ends_with("_accounting")
}

/// One collected reset fn: its impl owner and its body text.
struct ResetFn {
    owner: String,
    name: String,
    line: usize,
    body: String,
}

/// One collected struct with its fields.
struct StructInfo {
    name: String,
    line: usize,
    fields: Vec<FieldItem>,
}

struct FileInfo<'a> {
    file: &'a SourceFile,
    structs: Vec<StructInfo>,
    resets: Vec<ResetFn>,
}

fn collect(file: &SourceFile) -> FileInfo<'_> {
    let mut info = FileInfo { file, structs: Vec::new(), resets: Vec::new() };
    for s in structs(&file.code) {
        let line = file.line_of(s.at);
        if file.is_test_line(line) {
            continue;
        }
        let fields = struct_fields(&file.code, s.body);
        info.structs.push(StructInfo { name: s.name, line, fields });
    }
    for block in impl_blocks(&file.code) {
        for f in fns_in(&file.code, block.body) {
            let line = file.line_of(f.at);
            if file.is_test_line(line) || !is_reset_name(&f.name) {
                continue;
            }
            let FnItem { name, body, .. } = f;
            info.resets.push(ResetFn {
                owner: block.owner.clone(),
                name,
                line,
                body: file.code[body.0..body.1].to_string(),
            });
        }
    }
    info
}

/// Runs the audit over the accounting scope.
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let infos: Vec<FileInfo<'_>> = files.iter().map(collect).collect();
    let mut out = Vec::new();

    // Scope-wide: which type names own a reset fn, and the union of each
    // owner's reset bodies (an owner's resets may be split across files,
    // e.g. an inherent reset plus a trait-impl delegation).
    let mut owner_bodies: BTreeMap<&str, String> = BTreeMap::new();
    for info in &infos {
        for r in &info.resets {
            owner_bodies.entry(&r.owner).or_default().push_str(&r.body);
        }
    }
    let mut stats_bearing: BTreeSet<&str> = owner_bodies.keys().copied().collect();
    for info in &infos {
        for s in &info.structs {
            if s.name.ends_with("Stats") || s.name.ends_with("Report") {
                stats_bearing.insert(&s.name);
            }
        }
    }

    for info in &infos {
        run_file(info, &mut out);
        // R003: delegation drift on types that have reset fns.
        for s in &info.structs {
            let Some(bodies) = owner_bodies.get(s.name.as_str()) else {
                continue;
            };
            for field in &s.fields {
                let bearing = crate::parse::ident_tokens(&field.ty)
                    .iter()
                    .any(|t| t != &s.name && stats_bearing.contains(t.as_str()));
                if bearing && !mentions_word(bodies, &field.name) {
                    out.push(Diagnostic::new(
                        "R003",
                        &info.file.rel,
                        info.file.line_of(field.at),
                        format!(
                            "{}::{} carries accounting ({}) but no reset fn of {} ever \
                             touches it — delegation drift",
                            s.name, field.name, field.ty, s.name
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// R001/R002 within one file: every `*Stats`/`*Report` struct against the
/// union of the file's reset fns.
fn run_file(info: &FileInfo<'_>, out: &mut Vec<Diagnostic>) {
    // First pass: which structs are fully covered (for the containment
    // rule — a wholesale-reset container covers the structs it embeds).
    let coverage: Vec<Coverage> = info
        .structs
        .iter()
        .map(|s| {
            if s.name.ends_with("Stats") || s.name.ends_with("Report") {
                coverage_of(s, &info.resets)
            } else {
                Coverage::NotAudited
            }
        })
        .collect();

    for (i, s) in info.structs.iter().enumerate() {
        match &coverage[i] {
            Coverage::NotAudited | Coverage::Full => {}
            Coverage::Partial { best_fn, best_line, missing } => {
                for field in missing {
                    out.push(Diagnostic::new(
                        "R001",
                        &info.file.rel,
                        *best_line,
                        format!(
                            "reset path {best_fn} never touches {}::{field} — the field \
                             survives a reset (the PR 3/PR 4 drift-bug class)",
                            s.name
                        ),
                    ));
                }
            }
            Coverage::None => {
                if s.name.ends_with("Report") {
                    continue; // per-run outputs: nothing persistent to clear
                }
                let contained = info.structs.iter().enumerate().any(|(j, t)| {
                    j != i
                        && matches!(coverage[j], Coverage::Full)
                        && t.fields.iter().any(|f| mentions_word(&f.ty, &s.name))
                });
                if !contained {
                    out.push(Diagnostic::new(
                        "R002",
                        &info.file.rel,
                        s.line,
                        format!(
                            "{} has no reset path in {}: no reset*/clear*/*_accounting fn \
                             rebuilds it or touches any of its fields",
                            s.name, info.file.rel
                        ),
                    ));
                }
            }
        }
    }
}

enum Coverage {
    /// Not a Stats/Report struct.
    NotAudited,
    /// Wholesale rebuild or every field mentioned.
    Full,
    /// Some fields mentioned, some missed.
    Partial { best_fn: String, best_line: usize, missing: Vec<String> },
    /// No reset fn names the struct or any field.
    None,
}

fn coverage_of(s: &StructInfo, resets: &[ResetFn]) -> Coverage {
    if resets.iter().any(|r| mentions_word(&r.body, &s.name)) {
        return Coverage::Full; // wholesale: `S::default()` / `S { .. }`
    }
    let mut mentioned: BTreeSet<&str> = BTreeSet::new();
    let mut best: Option<(&ResetFn, usize)> = None;
    for r in resets {
        let count = s.fields.iter().filter(|f| mentions_word(&r.body, &f.name)).count();
        for f in &s.fields {
            if mentions_word(&r.body, &f.name) {
                mentioned.insert(&f.name);
            }
        }
        if count > 0 && best.is_none_or(|(_, c)| count > c) {
            best = Some((r, count));
        }
    }
    if mentioned.is_empty() {
        return Coverage::None;
    }
    let missing: Vec<String> = s
        .fields
        .iter()
        .filter(|f| !mentioned.contains(f.name.as_str()))
        .map(|f| f.name.clone())
        .collect();
    if missing.is_empty() {
        return Coverage::Full;
    }
    let (r, _) = best.expect("mentioned is non-empty, so a best fn exists");
    Coverage::Partial { best_fn: format!("{}::{}", r.owner, r.name), best_line: r.line, missing }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_on(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_text(PathBuf::from("m.rs"), "m.rs".into(), src.to_string());
        run(std::slice::from_ref(&f))
    }

    #[test]
    fn wholesale_default_reset_is_full_coverage() {
        let src = "\
pub struct LinkStats {
    pub messages: u64,
    pub bytes: u64,
}
pub struct Link {
    stats: LinkStats,
}
impl Link {
    pub fn reset_stats(&mut self) {
        self.stats = LinkStats::default();
    }
}
";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn field_by_field_reset_missing_one_is_r001() {
        let src = "\
pub struct PipeStats {
    pub hits: u64,
    pub misses: u64,
    pub stall: u64,
}
pub struct Pipe {
    hits: u64,
    misses: u64,
    stall: u64,
}
impl Pipe {
    pub fn reset_accounting(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}
";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "R001");
        assert!(diags[0].message.contains("stall"), "{diags:?}");
    }

    #[test]
    fn stats_struct_without_any_reset_is_r002_but_reports_are_exempt() {
        let src = "\
pub struct IdleStats {
    pub ticks: u64,
}
pub struct RunReport {
    pub pages: u64,
}
";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "R002");
        assert!(diags[0].message.contains("IdleStats"));
    }

    #[test]
    fn embedded_stats_inside_a_wholesale_container_are_covered() {
        let src = "\
pub struct OuterStats {
    pub served: u64,
    pub per_conn: BTreeMap<u64, InnerStats>,
}
pub struct InnerStats {
    pub served: u64,
}
pub struct Queue {
    stats: OuterStats,
}
impl Queue {
    fn reset_stats(&mut self) {
        self.stats = OuterStats::default();
    }
}
";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn unreset_stats_bearing_field_is_r003() {
        let src = "\
pub struct PoolStats {
    pub hits: u64,
}
pub struct Pool {
    stats: PoolStats,
}
impl Pool {
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }
}
pub struct Conn {
    pool: Pool,
    round_trips: u64,
}
impl Conn {
    pub fn reset_accounting(&mut self) {
        self.round_trips = 0;
    }
}
";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "R003");
        assert!(diags[0].message.contains("Conn::pool"), "{diags:?}");
    }

    #[test]
    fn delegating_reset_covers_the_bearing_field() {
        let src = "\
pub struct PoolStats {
    pub hits: u64,
}
pub struct Pool {
    stats: PoolStats,
}
impl Pool {
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }
}
pub struct Conn {
    pool: Pool,
}
impl Conn {
    pub fn reset_accounting(&mut self) {
        self.pool.reset_stats();
    }
}
";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    pub struct GhostStats {
        pub ticks: u64,
    }
}
";
        assert!(run_on(src).is_empty());
    }
}
