//! The `lint-allow.toml` ratchet.
//!
//! Existing debt found by the ratchetable passes is enumerated in a
//! committed allow file, one entry per `(rule, file)` with a cap:
//!
//! ```toml
//! [[allow]]
//! rule = "P002"
//! file = "crates/storage/src/cache.rs"
//! max = 1
//! reason = "LRU recency index tracks every cached block by construction"
//! ```
//!
//! Ratchet semantics are *shrink-only*: the lint fails when a file exceeds
//! its cap, and it also fails when a cap is stale (fewer findings than
//! allowed) — fixing debt forces the entry to be tightened or removed, so
//! the recorded debt can never silently grow back. The file format is a
//! tiny TOML subset (comments, `[[allow]]` tables, string and integer
//! values) parsed here without external crates.

use crate::diag::{rule, Diagnostic};
use std::collections::HashMap;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule code the entry caps.
    pub rule: String,
    /// Workspace-relative file the entry caps.
    pub file: String,
    /// Maximum number of findings tolerated.
    pub max: usize,
    /// Why the debt is acceptable for now.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header (for diagnostics).
    pub line: usize,
}

/// The parsed allow file.
#[derive(Debug, Clone, Default)]
pub struct AllowList {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// Parses the allow-file text. `path` is used in error diagnostics.
pub fn parse(path: &str, text: &str) -> Result<AllowList, Vec<Diagnostic>> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut errors: Vec<Diagnostic> = Vec::new();
    let mut current: Option<(usize, HashMap<String, String>)> = None;

    let finish = |current: &mut Option<(usize, HashMap<String, String>)>,
                  entries: &mut Vec<AllowEntry>,
                  errors: &mut Vec<Diagnostic>| {
        let Some((header_line, map)) = current.take() else {
            return;
        };
        let get = |k: &str| map.get(k).cloned();
        let (Some(rule_code), Some(file), Some(max), Some(reason)) =
            (get("rule"), get("file"), get("max"), get("reason"))
        else {
            errors.push(Diagnostic::new(
                "ALLOW",
                path,
                header_line,
                "entry needs rule, file, max, and reason keys",
            ));
            return;
        };
        let Ok(max) = max.parse::<usize>() else {
            errors.push(Diagnostic::new("ALLOW", path, header_line, "max must be an integer"));
            return;
        };
        entries.push(AllowEntry { rule: rule_code, file, max, reason, line: header_line });
    };

    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut current, &mut entries, &mut errors);
            current = Some((line_no, HashMap::new()));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            errors.push(Diagnostic::new(
                "ALLOW",
                path,
                line_no,
                format!("unparsable line {line:?}"),
            ));
            continue;
        };
        let Some((_, map)) = current.as_mut() else {
            errors.push(Diagnostic::new("ALLOW", path, line_no, "key outside any [[allow]] entry"));
            continue;
        };
        let key = key.trim().to_string();
        let mut value = value.trim();
        if let Some(hash) = value.find(" #") {
            value = value[..hash].trim();
        }
        let value = value.trim_matches('"').to_string();
        map.insert(key, value);
    }
    finish(&mut current, &mut entries, &mut errors);

    // Validate entries.
    for (i, e) in entries.iter().enumerate() {
        match rule(&e.rule) {
            None => errors.push(Diagnostic::new(
                "ALLOW",
                path,
                e.line,
                format!("unknown rule code {:?}", e.rule),
            )),
            Some(r) if !r.ratchetable => errors.push(Diagnostic::new(
                "ALLOW",
                path,
                e.line,
                format!("rule {} is a structural invariant and cannot be allowlisted", e.rule),
            )),
            Some(_) => {}
        }
        if e.max == 0 {
            errors.push(Diagnostic::new(
                "ALLOW",
                path,
                e.line,
                "max = 0 allows nothing; delete the entry instead",
            ));
        }
        if e.reason.is_empty() {
            errors.push(Diagnostic::new("ALLOW", path, e.line, "reason must not be empty"));
        }
        if entries.iter().take(i).any(|o| o.rule == e.rule && o.file == e.file) {
            errors.push(Diagnostic::new(
                "ALLOW",
                path,
                e.line,
                format!("duplicate entry for {} in {}", e.rule, e.file),
            ));
        }
    }

    if errors.is_empty() {
        Ok(AllowList { entries })
    } else {
        Err(errors)
    }
}

/// Applies the ratchet: suppresses findings covered by an exact-count
/// allowance, turns over-cap findings into errors, and reports stale
/// allowances (actual < max) so debt can only shrink.
pub fn apply(path: &str, allows: &AllowList, findings: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut counts: HashMap<(String, String), usize> = HashMap::new();
    for d in &findings {
        *counts.entry((d.rule.to_string(), d.file.clone())).or_default() += 1;
    }

    let cap = |d: &Diagnostic| {
        allows.entries.iter().find(|e| e.rule == d.rule && e.file == d.file).map(|e| e.max)
    };

    let mut errors: Vec<Diagnostic> = Vec::new();
    for d in findings {
        match cap(&d) {
            Some(max) => {
                let actual = counts[&(d.rule.to_string(), d.file.clone())];
                if actual > max {
                    let mut d = d;
                    d.message = format!(
                        "{} ({} findings exceed the lint-allow.toml cap of {})",
                        d.message, actual, max
                    );
                    errors.push(d);
                }
            }
            None => errors.push(d),
        }
    }
    for e in &allows.entries {
        let actual = counts.get(&(e.rule.clone(), e.file.clone())).copied().unwrap_or(0);
        if actual < e.max {
            errors.push(Diagnostic::new(
                "ALLOW",
                path,
                e.line,
                format!(
                    "stale allowance: {} in {} has {} finding(s) but allows {}; \
                     tighten or delete the entry (the ratchet only shrinks)",
                    e.rule, e.file, actual, e.max
                ),
            ));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "# debt ledger\n\n[[allow]]\nrule = \"P002\"\nfile = \"crates/storage/src/cache.rs\"\nmax = 1\nreason = \"invariant\"\n";

    fn finding(rule: &'static str, file: &str) -> Diagnostic {
        Diagnostic::new(rule, file, 1, "x")
    }

    #[test]
    fn parses_entries() {
        let list = parse("lint-allow.toml", GOOD).unwrap();
        assert_eq!(list.entries.len(), 1);
        assert_eq!(list.entries[0].rule, "P002");
        assert_eq!(list.entries[0].max, 1);
        assert_eq!(list.entries[0].line, 3);
    }

    #[test]
    fn rejects_unknown_nonratchetable_zero_and_duplicate() {
        let bad = "[[allow]]\nrule = \"Z999\"\nfile = \"a\"\nmax = 1\nreason = \"r\"\n";
        assert!(parse("f", bad).is_err());
        let structural = "[[allow]]\nrule = \"W001\"\nfile = \"a\"\nmax = 1\nreason = \"r\"\n";
        assert!(parse("f", structural).is_err());
        let zero = "[[allow]]\nrule = \"P001\"\nfile = \"a\"\nmax = 0\nreason = \"r\"\n";
        assert!(parse("f", zero).is_err());
        let dup = format!("{GOOD}\n[[allow]]\nrule = \"P002\"\nfile = \"crates/storage/src/cache.rs\"\nmax = 2\nreason = \"r\"\n");
        assert!(parse("f", &dup).is_err());
    }

    #[test]
    fn exact_count_suppresses() {
        let list = parse("f", GOOD).unwrap();
        let errors = apply("f", &list, vec![finding("P002", "crates/storage/src/cache.rs")]);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn over_cap_fails() {
        let list = parse("f", GOOD).unwrap();
        let errors = apply(
            "f",
            &list,
            vec![
                finding("P002", "crates/storage/src/cache.rs"),
                finding("P002", "crates/storage/src/cache.rs"),
            ],
        );
        assert_eq!(errors.len(), 2);
        assert!(errors[0].message.contains("exceed"));
    }

    #[test]
    fn stale_allowance_fails() {
        let list = parse("f", GOOD).unwrap();
        let errors = apply("f", &list, vec![]);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("stale"));
    }

    #[test]
    fn uncovered_findings_pass_through() {
        let list = AllowList::default();
        let errors = apply("f", &list, vec![finding("P001", "crates/net/src/link.rs")]);
        assert_eq!(errors.len(), 1);
    }
}
