//! A small `pub fn` signature parser.
//!
//! The symmetry pass needs the *public browsing-primitive surface* of the
//! text and voice crates: every `pub fn` name with its parameter list and
//! return type. Full Rust parsing is out of reach without external crates,
//! but signatures have a rigid shape — visibility, optional qualifiers,
//! `fn`, name, optional generics, balanced parens, optional `-> type` up to
//! `{`/`;`/`where` — which a token-level scan over the stripped code view
//! parses reliably.

use crate::source::SourceFile;

/// Visibility of a parsed function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// `pub` with no restriction: part of the crate's public API.
    Public,
    /// `pub(crate)`, `pub(super)`, `pub(in ...)`: not public API.
    Restricted,
}

/// One parsed `pub fn` signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubFn {
    /// The function name.
    pub name: String,
    /// The parameter list text (between the parens, whitespace-normalized).
    pub params: String,
    /// The return type text, if any.
    pub ret: Option<String>,
    /// Workspace-relative file the signature was found in.
    pub file: String,
    /// 1-based line of the `pub` keyword.
    pub line: usize,
    /// Visibility kind.
    pub vis: Visibility,
}

/// Parses every non-test `pub fn` signature in `file`.
pub fn pub_fns(file: &SourceFile) -> Vec<PubFn> {
    let code = file.code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(found) = find_word(&file.code, "pub", i) {
        let pub_at = found;
        i = pub_at + 3;
        let line = file.line_of(pub_at);
        if file.is_test_line(line) {
            continue;
        }
        let mut j = skip_ws(code, i);
        let mut vis = Visibility::Public;
        if code.get(j) == Some(&b'(') {
            vis = Visibility::Restricted;
            j = match skip_balanced(code, j, b'(', b')') {
                Some(end) => skip_ws(code, end),
                None => continue,
            };
        }
        // Optional qualifiers before `fn`.
        loop {
            let (word, after) = next_word(code, j);
            match word {
                "const" | "async" | "unsafe" | "extern" => j = skip_ws(code, after),
                _ => break,
            }
        }
        let (kw, after_kw) = next_word(code, j);
        if kw != "fn" {
            continue;
        }
        j = skip_ws(code, after_kw);
        let (name, after_name) = next_word(code, j);
        if name.is_empty() {
            continue;
        }
        j = skip_ws(code, after_name);
        // Optional generics.
        if code.get(j) == Some(&b'<') {
            j = match skip_balanced(code, j, b'<', b'>') {
                Some(end) => skip_ws(code, end),
                None => continue,
            };
        }
        if code.get(j) != Some(&b'(') {
            continue;
        }
        let params_end = match skip_balanced(code, j, b'(', b')') {
            Some(end) => end,
            None => continue,
        };
        let params =
            normalize_ws(&file.code[j + 1..params_end - 1]).trim_end_matches(',').to_string();
        let mut k = skip_ws(code, params_end);
        let mut ret = None;
        if code.get(k) == Some(&b'-') && code.get(k + 1) == Some(&b'>') {
            let ret_start = skip_ws(code, k + 2);
            let mut end = ret_start;
            let mut depth = 0i32;
            while end < code.len() {
                match code[end] {
                    b'<' | b'(' | b'[' => depth += 1,
                    b'>' | b')' | b']' => depth -= 1,
                    b'{' | b';' if depth <= 0 => break,
                    b'w' if depth <= 0 && word_at(code, end) == "where" => break,
                    _ => {}
                }
                end += 1;
            }
            ret = Some(normalize_ws(&file.code[ret_start..end]));
            k = end;
        }
        let _ = k;
        out.push(PubFn { name: name.to_string(), params, ret, file: file.rel.clone(), line, vis });
    }
    out
}

/// Parses the fully-public (`Visibility::Public`) fn names of several files.
pub fn public_surface(files: &[SourceFile]) -> Vec<PubFn> {
    files.iter().flat_map(pub_fns).filter(|f| f.vis == Visibility::Public).collect()
}

fn find_word(code: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut at = from;
    while let Some(found) = code.get(at..).and_then(|s| s.find(word)) {
        let pos = at + found;
        let before_ok = pos == 0 || !is_ident(bytes[pos - 1]);
        let after_ok = pos + word.len() >= bytes.len() || !is_ident(bytes[pos + word.len()]);
        if before_ok && after_ok {
            return Some(pos);
        }
        at = pos + 1;
    }
    None
}

fn word_at(code: &[u8], at: usize) -> &str {
    let mut end = at;
    while end < code.len() && is_ident(code[end]) {
        end += 1;
    }
    std::str::from_utf8(&code[at..end]).unwrap_or("")
}

fn next_word(code: &[u8], at: usize) -> (&str, usize) {
    let mut end = at;
    while end < code.len() && is_ident(code[end]) {
        end += 1;
    }
    (std::str::from_utf8(&code[at..end]).unwrap_or(""), end)
}

fn skip_ws(code: &[u8], mut at: usize) -> usize {
    while at < code.len() && code[at].is_ascii_whitespace() {
        at += 1;
    }
    at
}

/// Advances past a balanced `open`..`close` region starting at `at`
/// (which must hold `open`); returns the index just past the close.
fn skip_balanced(code: &[u8], at: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = at;
    while i < code.len() {
        if code[i] == open {
            depth += 1;
        } else if code[i] == close {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(src: &str) -> Vec<PubFn> {
        let f = SourceFile::from_text(PathBuf::from("m.rs"), "m.rs".into(), src.to_string());
        pub_fns(&f)
    }

    #[test]
    fn plain_signature() {
        let fns = parse("pub fn page_count(&self) -> usize {\n    0\n}\n");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "page_count");
        assert_eq!(fns[0].params, "&self");
        assert_eq!(fns[0].ret.as_deref(), Some("usize"));
        assert_eq!(fns[0].line, 1);
        assert_eq!(fns[0].vis, Visibility::Public);
    }

    #[test]
    fn qualifiers_generics_and_multiline_params() {
        let src = "pub const fn z() -> u64 { 0 }\n\
                   pub fn step<I, S>(\n    items: I,\n    level: S,\n) -> Option<UnitRef>\nwhere I: Iterator {\n}\n";
        let fns = parse(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "z");
        assert_eq!(fns[1].name, "step");
        assert_eq!(fns[1].params, "items: I, level: S");
        assert_eq!(fns[1].ret.as_deref(), Some("Option<UnitRef>"));
        assert_eq!(fns[1].line, 2);
    }

    #[test]
    fn restricted_visibility_is_tracked_and_filtered() {
        let src = "pub(crate) fn hidden() {}\npub fn shown() {}\n";
        let fns = parse(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].vis, Visibility::Restricted);
        let f = SourceFile::from_text(PathBuf::from("m.rs"), "m.rs".into(), src.to_string());
        let surface = public_surface(&[f]);
        assert_eq!(surface.len(), 1);
        assert_eq!(surface[0].name, "shown");
    }

    #[test]
    fn non_fn_pub_items_and_test_code_are_skipped() {
        let src = "pub struct S;\npub mod m;\n#[cfg(test)]\nmod tests {\n    pub fn t() {}\n}\n";
        assert!(parse(src).is_empty());
    }

    #[test]
    fn return_type_with_nested_generics() {
        let fns = parse("pub fn spans(&self, level: LogicalLevel) -> &[CharSpan] { x }\n");
        assert_eq!(fns[0].ret.as_deref(), Some("&[CharSpan]"));
        let fns = parse("pub fn iter(&self) -> impl Iterator<Item = (&str, &[u32])> { y }\n");
        assert_eq!(fns[0].ret.as_deref(), Some("impl Iterator<Item = (&str, &[u32])>"));
    }
}
