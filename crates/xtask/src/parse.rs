//! Shared brace-level parsing helpers for the semantic passes.
//!
//! The reset-completeness and codec-coverage passes (and the spec
//! extractor) all need the same structural facts about a code view:
//! where the `impl` blocks are and whom they belong to, which `fn`s a
//! block declares, which `struct`s a file defines and what fields they
//! carry. Everything here works on the comment/string-stripped code view
//! of a [`crate::source::SourceFile`], so string contents can never fake
//! a keyword, and every offset maps back to a real line.

/// One `impl` block: the type it belongs to (the `Y` of `impl Y` and of
/// `impl X for Y`), the byte offset of the `impl` keyword, and the byte
/// range of the brace-balanced body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplBlock {
    /// The implemented type's name, generics stripped.
    pub owner: String,
    /// Byte offset of the `impl` keyword in the code view.
    pub at: usize,
    /// Body range: from the opening `{` to just past its matching `}`.
    pub body: (usize, usize),
}

/// One `fn` item: its name, the byte offset of the `fn` keyword, and the
/// byte range of its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Byte offset of the `fn` keyword in the code view.
    pub at: usize,
    /// Body range: from the opening `{` to just past its matching `}`.
    pub body: (usize, usize),
}

/// One `struct` item with a braced body: its name, the byte offset of the
/// `struct` keyword, and the body range. Tuple and unit structs are
/// skipped — the reset audit cares about named accounting fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// Byte offset of the `struct` keyword in the code view.
    pub at: usize,
    /// Body range: from the opening `{` to just past its matching `}`.
    pub body: (usize, usize),
}

/// One named struct field: its name, the type text after the colon, and
/// the byte offset of the field name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldItem {
    /// The field's name.
    pub name: String,
    /// The raw type text (generics and all).
    pub ty: String,
    /// Byte offset of the field name in the code view.
    pub at: usize,
}

/// Finds `needle` at or after `from` and returns the byte range of the
/// brace-balanced body that follows it (from the opening `{` to just past
/// its matching `}`). Gives up if a `;` ends the item first.
pub fn item_body_from(code: &str, from: usize, needle: &str) -> Option<(usize, usize)> {
    let at = from + code.get(from..)?.find(needle)?;
    body_after(code, at + needle.len())
}

/// The brace-balanced body starting at the first `{` at or after `from`,
/// unless a `;` ends the item first.
pub fn body_after(code: &str, from: usize) -> Option<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut i = from;
    while i < bytes.len() && bytes[i] != b'{' {
        if bytes[i] == b';' {
            return None;
        }
        i += 1;
    }
    let start = i;
    let mut depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, i + 1));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Whether the byte at `at` starts a keyword occurrence: preceded by a
/// non-identifier byte (or the file start) and — because the keywords
/// searched all end before whitespace — followed appropriately by the
/// caller's needle match.
fn keyword_at(code: &str, at: usize) -> bool {
    at == 0 || !is_ident_byte(code.as_bytes()[at - 1])
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Reads the identifier starting at `at` (empty if none).
fn ident_at(code: &str, at: usize) -> String {
    code[at..].chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect()
}

/// All `impl` blocks of a code view. Only `impl` keywords that open a
/// line (nothing but whitespace before them on their line) count, so
/// `-> impl Iterator` return types never start a phantom block. The owner
/// of `impl X for Y` is `Y`; generic parameter lists are skipped.
pub fn impl_blocks(code: &str) -> Vec<ImplBlock> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(found) = code[from..].find("impl") {
        let at = from + found;
        from = at + 4;
        // Keyword boundary on both sides.
        if !keyword_at(code, at) || bytes.get(at + 4).copied().is_some_and(is_ident_byte) {
            continue;
        }
        // Must be the first token on its line.
        let line_start = code[..at].rfind('\n').map_or(0, |p| p + 1);
        if !code[line_start..at].chars().all(char::is_whitespace) {
            continue;
        }
        // Skip a generic parameter list.
        let mut i = at + 4;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if bytes.get(i) == Some(&b'<') {
            let mut depth = 0usize;
            while i < bytes.len() {
                match bytes[i] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        let Some(brace) = code[i..].find('{').map(|p| i + p) else {
            continue;
        };
        let header = &code[i..brace];
        let owner_text = match header.find(" for ") {
            Some(f) => &header[f + 5..],
            None => header,
        };
        let owner_at =
            i + (owner_text.as_ptr() as usize - header.as_ptr() as usize) + owner_text.len()
                - owner_text.trim_start().len();
        let owner = ident_at(code, owner_at);
        if owner.is_empty() {
            continue;
        }
        let Some(body) = body_after(code, brace) else {
            continue;
        };
        out.push(ImplBlock { owner, at, body });
        from = body.1;
    }
    out
}

/// All `fn` items declared inside `range` of the code view (any nesting
/// depth; bodiless trait-method signatures are skipped).
pub fn fns_in(code: &str, range: (usize, usize)) -> Vec<FnItem> {
    let slice = &code[range.0..range.1];
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(found) = slice[from..].find("fn ") {
        let at = from + found;
        from = at + 3;
        if !keyword_at(slice, at) {
            continue;
        }
        let name = ident_at(slice, at + 3);
        if name.is_empty() {
            continue;
        }
        let Some(body) = body_after(slice, at + 3 + name.len()) else {
            continue;
        };
        out.push(FnItem { name, at: range.0 + at, body: (range.0 + body.0, range.0 + body.1) });
        from = body.1;
    }
    out
}

/// All braced `struct` items of a code view.
pub fn structs(code: &str) -> Vec<StructItem> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(found) = code[from..].find("struct ") {
        let at = from + found;
        from = at + 7;
        if !keyword_at(code, at) {
            continue;
        }
        let name = ident_at(code, at + 7);
        if name.is_empty() {
            continue;
        }
        let Some(body) = body_after(code, at + 7 + name.len()) else {
            continue;
        };
        out.push(StructItem { name, at, body });
        from = body.1;
    }
    out
}

/// The named fields declared at depth 1 of a struct body.
pub fn struct_fields(code: &str, body: (usize, usize)) -> Vec<FieldItem> {
    let slice = &code[body.0..body.1];
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut offset = 0;
    for line in slice.split_inclusive('\n') {
        let depth_at_start = depth;
        for b in line.bytes() {
            match b {
                b'{' | b'(' | b'<' => depth += 1,
                b'}' | b')' | b'>' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if depth_at_start == 1 {
            let trimmed = line.trim_start();
            let lead = line.len() - trimmed.len();
            let decl = if let Some(rest) = trimmed.strip_prefix("pub(") {
                rest.split_once(')').map_or(rest, |(_, r)| r).trim_start()
            } else if let Some(rest) = trimmed.strip_prefix("pub ") {
                rest
            } else {
                trimmed
            };
            if !decl.starts_with('#') {
                if let Some(colon) = decl.find(':') {
                    let name = decl[..colon].trim().to_string();
                    let ty = decl[colon + 1..].trim().trim_end_matches(',').to_string();
                    if !name.is_empty()
                        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                        && name.chars().next().is_some_and(|c| !c.is_ascii_uppercase())
                    {
                        out.push(FieldItem { name, ty, at: body.0 + offset + lead });
                    }
                }
            }
        }
        offset += line.len();
    }
    out
}

/// Whether `word` occurs in `text` with identifier boundaries on both
/// sides (so `stall` never matches `install`).
pub fn mentions_word(text: &str, word: &str) -> bool {
    if word.is_empty() {
        return false;
    }
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(found) = text[from..].find(word) {
        let at = from + found;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// The identifier tokens of `text`, in order, duplicates kept.
pub fn ident_tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
pub struct FooStats {
    pub hits: u64,
    pub misses: u64,
}

struct Holder {
    stats: FooStats,
    pool: BufferPool,
}

impl<E: Endpoint> Holder {
    pub fn reset_stats(&mut self) {
        self.stats = FooStats::default();
    }
    fn helper(&self) -> u64 {
        0
    }
}

impl Endpoint for Holder {
    fn reset(&mut self) {}
}
";

    #[test]
    fn finds_structs_and_fields() {
        let items = structs(SRC);
        let names: Vec<&str> = items.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["FooStats", "Holder"]);
        let fields = struct_fields(SRC, items[0].body);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].name, "hits");
        assert_eq!(fields[0].ty, "u64");
        let fields = struct_fields(SRC, items[1].body);
        assert_eq!(fields[1].name, "pool");
        assert_eq!(fields[1].ty, "BufferPool");
    }

    #[test]
    fn finds_impls_with_generics_and_trait_targets() {
        let blocks = impl_blocks(SRC);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].owner, "Holder");
        assert_eq!(blocks[1].owner, "Holder");
        let fns = fns_in(SRC, blocks[0].body);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["reset_stats", "helper"]);
    }

    #[test]
    fn return_position_impl_is_not_a_block() {
        let src = "fn iter() -> impl Iterator<Item = u8> {\n    std::iter::empty()\n}\n";
        assert!(impl_blocks(src).is_empty());
    }

    #[test]
    fn word_boundaries_hold() {
        assert!(mentions_word("self.stall = 0;", "stall"));
        assert!(!mentions_word("installed = true;", "stall"));
        assert_eq!(ident_tokens("Rc<RefCell<PoolInner>>"), vec!["Rc", "RefCell", "PoolInner"]);
    }
}
