//! Diagnostics and the rule registry.

use std::fmt;

/// One `file:line` finding emitted by a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule code (`W001`, `P002`, ...). Always one of [`RULES`].
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(rule: &'static str, file: &str, line: usize, message: impl Into<String>) -> Self {
        Diagnostic { rule, file: file.to_string(), line, message: message.into() }
    }

    /// The diagnostic as one stable JSON object (for `lint --json`):
    /// `{"rule":...,"file":...,"line":...,"message":...}`, keys in that
    /// fixed order so CI annotations never re-parse human text.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_string(self.rule),
            json_string(&self.file),
            self.line,
            json_string(&self.message)
        )
    }
}

/// Escapes `s` as a JSON string literal (quotes included). Shared by the
/// `--json` diagnostics output and the spec extractor's emitter.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// A registered rule: its code, which pass owns it, what it means, and
/// whether existing findings may be ratcheted through `lint-allow.toml`.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule code used in diagnostics and the allow file.
    pub code: &'static str,
    /// Owning pass name.
    pub pass: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Whether `lint-allow.toml` entries may cap this rule. Structural
    /// invariants (wire tags, symmetry) are never allowlistable.
    pub ratchetable: bool,
}

/// Every rule the lint can emit.
pub const RULES: &[Rule] = &[
    Rule {
        code: "W001",
        pass: "wire",
        summary: "duplicate wire tag within one enum's encode/decode",
        ratchetable: false,
    },
    Rule {
        code: "W002",
        pass: "wire",
        summary: "enum variant never assigned a tag in encode",
        ratchetable: false,
    },
    Rule {
        code: "W003",
        pass: "wire",
        summary: "enum variant has no decode match arm",
        ratchetable: false,
    },
    Rule {
        code: "W004",
        pass: "wire",
        summary: "encode and decode disagree on a variant's tag",
        ratchetable: false,
    },
    Rule {
        code: "W005",
        pass: "wire",
        summary: "request and response tag sets do not pair up",
        ratchetable: false,
    },
    Rule {
        code: "P001",
        pass: "panic-freedom",
        summary: "unwrap() in non-test hot-path code",
        ratchetable: true,
    },
    Rule {
        code: "P002",
        pass: "panic-freedom",
        summary: "expect() in non-test hot-path code",
        ratchetable: true,
    },
    Rule {
        code: "P003",
        pass: "panic-freedom",
        summary: "panic!/todo!/unimplemented!/unreachable! in non-test hot-path code",
        ratchetable: true,
    },
    Rule {
        code: "P004",
        pass: "panic-freedom",
        summary: "bare slice/collection indexing in non-test hot-path code",
        ratchetable: true,
    },
    Rule {
        code: "U001",
        pass: "unit-safety",
        summary: "narrowing `as` cast on u128 arithmetic (transfer_cost bug class)",
        ratchetable: true,
    },
    Rule {
        code: "U002",
        pass: "unit-safety",
        summary: "narrowing `as` cast on duration arithmetic outside types/time.rs",
        ratchetable: true,
    },
    Rule {
        code: "U003",
        pass: "unit-safety",
        summary: "varint element count narrowed with `as`; bound via Decoder::get_len or try_from",
        ratchetable: true,
    },
    Rule {
        code: "Q001",
        pass: "queue-growth",
        summary: "queue growth (push/push_back) with no reachable capacity check",
        ratchetable: true,
    },
    Rule {
        code: "A001",
        pass: "alloc-hygiene",
        summary: "fresh allocation (to_vec/clone/with_capacity) on a pooled hot-path module",
        ratchetable: true,
    },
    Rule {
        code: "R001",
        pass: "reset-completeness",
        summary: "reset path covers some but not all fields of a Stats/Report struct",
        ratchetable: true,
    },
    Rule {
        code: "R002",
        pass: "reset-completeness",
        summary: "Stats struct has no reset path in its module",
        ratchetable: true,
    },
    Rule {
        code: "R003",
        pass: "reset-completeness",
        summary: "containing type's reset fn never touches a stats-bearing field",
        ratchetable: true,
    },
    Rule {
        code: "C001",
        pass: "codec-coverage",
        summary: "type encodes but has no decode",
        ratchetable: false,
    },
    Rule {
        code: "C002",
        pass: "codec-coverage",
        summary: "raw varint used as an element count; bound it via Decoder::get_len",
        ratchetable: true,
    },
    Rule {
        code: "C003",
        pass: "codec-coverage",
        summary: "versioned encode whose decode never checks the version",
        ratchetable: false,
    },
    Rule {
        code: "X001",
        pass: "spec",
        summary: "extracted protocol spec violates a conformance invariant",
        ratchetable: false,
    },
    Rule {
        code: "X002",
        pass: "spec",
        summary: "extracted protocol spec drifted from the committed golden",
        ratchetable: false,
    },
    Rule {
        code: "S001",
        pass: "symmetry",
        summary: "text browsing primitive lacks a voice counterpart",
        ratchetable: false,
    },
    Rule {
        code: "S002",
        pass: "symmetry",
        summary: "voice browsing primitive lacks a text counterpart",
        ratchetable: false,
    },
    Rule {
        code: "S003",
        pass: "symmetry",
        summary: "browsing primitive missing from both substrates",
        ratchetable: false,
    },
];

/// Looks up a rule by code.
pub fn rule(code: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_resolvable() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(RULES.iter().skip(i + 1).all(|o| o.code != r.code), "dup {}", r.code);
            assert_eq!(rule(r.code).unwrap().code, r.code);
        }
        assert!(rule("Z999").is_none());
    }

    #[test]
    fn display_is_file_line_code_message() {
        let d = Diagnostic::new("P001", "crates/net/src/link.rs", 7, "unwrap() on hot path");
        assert_eq!(d.to_string(), "crates/net/src/link.rs:7: [P001] unwrap() on hot path");
    }

    #[test]
    fn json_output_is_stable_and_escaped() {
        let d = Diagnostic::new("P001", "a/b.rs", 7, "say \"no\"\n\tto panics");
        assert_eq!(
            d.to_json(),
            "{\"rule\":\"P001\",\"file\":\"a/b.rs\",\"line\":7,\
             \"message\":\"say \\\"no\\\"\\n\\tto panics\"}"
        );
        assert_eq!(json_string("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
