//! Source loading, comment/string stripping, and `#[cfg(test)]` masking.
//!
//! Every pass works over a *code view* of each file: the raw text with
//! comment and string-literal contents blanked to spaces (newlines kept, so
//! byte offsets and line numbers are preserved). Scanning the code view
//! means `"panic!"` inside an error message or an example in a doc comment
//! can never trip a rule. A per-line test mask marks the extent of every
//! `#[cfg(test)]` item so test-only code is exempt.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One workspace source file prepared for scanning.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators (used in diagnostics).
    pub rel: String,
    /// The raw file contents.
    pub raw: String,
    /// The code view: comments and literal contents blanked, same length
    /// and line structure as `raw`.
    pub code: String,
    /// `test_mask[i]` is true when 0-based line `i` is inside a
    /// `#[cfg(test)]` item.
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    /// Loads and prepares `path`, reporting it as `rel` in diagnostics.
    pub fn load(path: &Path, rel: &str) -> io::Result<SourceFile> {
        let raw = fs::read_to_string(path)?;
        Ok(SourceFile::from_text(path.to_path_buf(), rel.to_string(), raw))
    }

    /// Prepares already-read text (used by fixture tests).
    pub fn from_text(path: PathBuf, rel: String, raw: String) -> SourceFile {
        let code = strip_code(&raw);
        let test_mask = test_mask(&code);
        SourceFile { path, rel, raw, code, test_mask }
    }

    /// The code view split into lines (same count as the raw lines).
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.code.lines().enumerate().map(|(i, l)| (i + 1, l))
    }

    /// Whether 1-based `line` is inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_mask.get(line.saturating_sub(1)).copied().unwrap_or(false)
    }

    /// 1-based line number of byte offset `pos` in the code view.
    pub fn line_of(&self, pos: usize) -> usize {
        self.code.as_bytes()[..pos.min(self.code.len())].iter().filter(|&&b| b == b'\n').count() + 1
    }
}

/// Blanks comment and string/char-literal contents to spaces, preserving
/// newlines and overall length.
pub fn strip_code(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, b: u8| out.push(if b == b'\n' { b'\n' } else { b' ' });

    while i < bytes.len() {
        let b = bytes[i];
        // Line comment.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                blank(&mut out, bytes[i]);
                i += 1;
            }
            continue;
        }
        // Block comment (nesting honoured).
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    blank(&mut out, bytes[i]);
                    blank(&mut out, bytes[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string literal r"..." / r#"..."# (with optional b prefix).
        if b == b'r' || (b == b'b' && bytes.get(i + 1) == Some(&b'r')) {
            let start = if b == b'b' { i + 1 } else { i };
            let prev_ident = i > 0 && is_ident_byte(bytes[i - 1]);
            let mut j = start + 1;
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if !prev_ident && bytes.get(j) == Some(&b'"') {
                // Emit the prefix as-is, blank the contents.
                out.extend_from_slice(&bytes[i..=j]);
                let mut k = j + 1;
                'raw: while k < bytes.len() {
                    if bytes[k] == b'"' {
                        let mut h = 0usize;
                        while bytes.get(k + 1 + h) == Some(&b'#') {
                            h += 1;
                        }
                        if h >= hashes {
                            out.push(b'"');
                            out.extend_from_slice(&bytes[k + 1..k + 1 + hashes]);
                            k += 1 + hashes;
                            break 'raw;
                        }
                    }
                    blank(&mut out, bytes[k]);
                    k += 1;
                }
                i = k;
                continue;
            }
        }
        // Normal string literal (with optional b prefix handled by falling
        // through: the b is emitted as code, the quote starts the literal).
        if b == b'"' {
            out.push(b'"');
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => {
                        blank(&mut out, bytes[i]);
                        if i + 1 < bytes.len() {
                            blank(&mut out, bytes[i + 1]);
                        }
                        i += 2;
                    }
                    b'"' => {
                        out.push(b'"');
                        i += 1;
                        break;
                    }
                    other => {
                        blank(&mut out, other);
                        i += 1;
                    }
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'a' / '\n' are literals, 'a in `<'a>`
        // is a lifetime and passes through.
        if b == b'\'' {
            let is_char = match bytes.get(i + 1) {
                Some(b'\\') => true,
                Some(_) => bytes.get(i + 2) == Some(&b'\''),
                None => false,
            };
            if is_char {
                out.push(b'\'');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            blank(&mut out, bytes[i]);
                            if i + 1 < bytes.len() {
                                blank(&mut out, bytes[i + 1]);
                            }
                            i += 2;
                        }
                        b'\'' => {
                            out.push(b'\'');
                            i += 1;
                            break;
                        }
                        other => {
                            blank(&mut out, other);
                            i += 1;
                        }
                    }
                }
                continue;
            }
        }
        out.push(b);
        i += 1;
    }
    // Blanking only ever replaces bytes with ASCII spaces, and multi-byte
    // UTF-8 sequences are either copied whole or blanked whole.
    String::from_utf8(out).unwrap_or_default()
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Computes the per-line `#[cfg(test)]` mask over a code view.
///
/// For each `#[cfg(test)]` attribute the masked extent is the attributed
/// item: everything through the matching close brace of the first `{`
/// opened after the attribute (or through the first `;` if one appears
/// before any brace, as for a `#[cfg(test)] use` line).
pub fn test_mask(code: &str) -> Vec<bool> {
    let line_count = code.lines().count();
    let mut mask = vec![false; line_count];
    let bytes = code.as_bytes();
    let mut search_from = 0;
    while let Some(found) = code[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + found;
        let mut j = attr_at + "#[cfg(test)]".len();
        // Find the end of the attributed item.
        let mut end = code.len();
        while j < bytes.len() {
            match bytes[j] {
                b';' => {
                    end = j + 1;
                    break;
                }
                b'{' => {
                    let mut depth = 0usize;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'{' => depth += 1,
                            b'}' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    end = (j + 1).min(code.len());
                    break;
                }
                _ => j += 1,
            }
        }
        let first_line = bytes[..attr_at].iter().filter(|&&b| b == b'\n').count();
        let last_line = bytes[..end.min(bytes.len())].iter().filter(|&&b| b == b'\n').count();
        for m in mask.iter_mut().take((last_line + 1).min(line_count)).skip(first_line) {
            *m = true;
        }
        search_from = end.max(attr_at + 1);
    }
    mask
}

/// Walks the workspace's lintable source set rooted at `root`:
/// `crates/*/src/**/*.rs` plus the facade's `src/**/*.rs`, excluding the
/// xtask crate itself and everything outside `src` (integration tests,
/// benches, examples and vendored stand-ins are not hot-path code).
pub fn workspace_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xtask"))
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), root, &mut files)?;
    }
    collect_rs(&root.join("src"), root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile::load(&path, &rel)?);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(raw: &str) -> SourceFile {
        SourceFile::from_text(PathBuf::from("mem.rs"), "mem.rs".into(), raw.to_string())
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = sf("let x = \"unwrap() panic!\"; // unwrap()\nlet y = 1;\n");
        assert!(!s.code.contains("unwrap"));
        assert!(!s.code.contains("panic"));
        assert!(s.code.contains("let y = 1;"));
        assert_eq!(s.code.len(), s.raw.len());
    }

    #[test]
    fn block_comments_nest_and_keep_lines() {
        let s = sf("a /* outer /* inner */ still */ b\nc\n");
        assert!(s.code.contains('a'));
        assert!(s.code.contains('b'));
        assert!(!s.code.contains("inner"));
        assert_eq!(s.code.lines().count(), s.raw.lines().count());
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_but_lifetimes_survive() {
        let s = sf("let p = r#\"panic!\"#; let c = '['; fn f<'a>(x: &'a u8) {}\n");
        assert!(!s.code.contains("panic"));
        assert!(!s.code.contains('['));
        assert!(s.code.contains("<'a>"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let s = sf("let x = \"a\\\"unwrap()\\\"b\"; let y = 2;\n");
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let y = 2;"));
    }

    #[test]
    fn cfg_test_mask_covers_the_module() {
        let s = sf("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n");
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn line_of_maps_offsets() {
        let s = sf("one\ntwo\nthree\n");
        assert_eq!(s.line_of(0), 1);
        assert_eq!(s.line_of(4), 2);
        assert_eq!(s.line_of(9), 3);
    }
}
