//! Workspace static analysis for the MINOS reproduction.
//!
//! The paper's central claim is *symmetry*: every text browsing primitive
//! (pages, logical units, pattern search) has a voice counterpart (§1–2).
//! The client/server protocol surface and the simulated-time arithmetic are
//! the contracts everything else rides on. This crate turns those contracts
//! into machine checks — nine homegrown passes over the workspace source
//! tree, with no external dependencies (crates.io is unreachable in the
//! build environment):
//!
//! * [`passes::wire`] — **wire-tag audit** (`W0xx`): parses the
//!   `ServerRequest`/`ServerResponse` enums in `crates/net/src/protocol.rs`
//!   and verifies tag uniqueness, encode/decode coverage, encode/decode
//!   agreement, and request/response tag pairing.
//! * [`passes::panic_free`] — **panic-freedom audit** (`P0xx`): flags
//!   `unwrap()`, `expect(`, panic-family macros, and bare slice indexing in
//!   non-`#[cfg(test)]` code of the hot-path crates (`net`, `server`,
//!   `storage`, `types::codec`).
//! * [`passes::queue_growth`] — **queue-growth audit** (`Q0xx`): flags
//!   `push`/`push_back` growth sites in the transport and service scope
//!   (`net`, `server`, `core::remote`) whose enclosing function never
//!   consults a capacity — the unbounded-buffer bug class the E14
//!   admission-control work exists to prevent.
//! * [`passes::alloc_hygiene`] — **allocation-hygiene audit** (`A0xx`):
//!   flags fresh allocations (`.to_vec()`, `.clone()`,
//!   `Vec::with_capacity(`) on the pooled hot-path modules
//!   (`net::frame`, `net::fault`, `core::remote`, `core::prefetch`),
//!   where the `BufferPool` lease/recycle pattern and borrowed decode
//!   keep the steady state under one allocation per page.
//! * [`passes::units`] — **unit-safety audit** (`U0xx`): flags lossy `as`
//!   casts on duration or widened byte-count arithmetic (the
//!   `Link::transfer_cost` bug class) everywhere except
//!   `crates/types/src/time.rs`, which owns the saturating helpers.
//! * [`passes::symmetry`] — **symmetry audit** (`S0xx`): extracts the
//!   public browsing-primitive surface of `crates/text` and `crates/voice`
//!   and fails when either side of the paper's Section 2 vocabulary is
//!   missing its counterpart.
//! * [`passes::reset`] — **reset-completeness audit** (`R0xx`): parses
//!   every `*Stats`/`*Report` struct in the accounting scope (`net`,
//!   `server`, `core`) and verifies the module's `reset*`/`clear*`/
//!   `*_accounting` fns, taken together, rebuild it or touch every field
//!   — plus delegation drift on the containing types (`R003`).
//! * [`passes::codec_cov`] — **codec-coverage audit** (`C0xx`): over the
//!   codec scope, every encoding type must round-trip (`C001`), element
//!   counts must flow through `Decoder::get_len` (`C002`), and versioned
//!   records must check their version in decode (`C003`).
//! * [`spec`] — **protocol spec extraction** (`X0xx`, the `spec`
//!   subcommand): serializes the wire contract (tags, pairing, priority
//!   bytes, epoch handshake, CRC trailer) as deterministic JSON, checks
//!   its conformance invariants (`X001`), and diffs it against the
//!   committed golden `spec/protocol.json` (`X002`).
//!
//! Panic-freedom, queue-growth, allocation-hygiene, unit-safety,
//! reset-completeness, and `C002` codec-coverage
//! findings may be *ratcheted* through the
//! committed `lint-allow.toml`: existing debt is enumerated per file with a
//! cap, the lint fails when a file exceeds its cap **and** when a cap is
//! stale (fewer findings than allowed), so the debt can only shrink.
//!
//! The building blocks — [`source`] (comment/string stripping and
//! `#[cfg(test)]` masking), [`sig`] (a small `pub fn` signature parser),
//! [`parse`] (shared brace-level item parsing), [`diag`] (rule registry
//! and diagnostics), [`allow`] (the ratchet file loader) — are public so
//! the fixture-driven self-tests under `tests/` can drive each pass
//! against known-bad and known-good snippets.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod allow;
pub mod diag;
pub mod parse;
pub mod passes;
pub mod runner;
pub mod sig;
pub mod source;
pub mod spec;

pub use diag::{rule, Diagnostic, Rule, RULES};
pub use runner::{lint_workspace, LintOutcome};
pub use source::SourceFile;
pub use spec::{spec_workspace, ProtocolSpec, SpecOutcome};
