//! Workspace static analysis for the MINOS reproduction.
//!
//! The paper's central claim is *symmetry*: every text browsing primitive
//! (pages, logical units, pattern search) has a voice counterpart (§1–2).
//! The client/server protocol surface and the simulated-time arithmetic are
//! the contracts everything else rides on. This crate turns those contracts
//! into machine checks — six homegrown passes over the workspace source
//! tree, with no external dependencies (crates.io is unreachable in the
//! build environment):
//!
//! * [`passes::wire`] — **wire-tag audit** (`W0xx`): parses the
//!   `ServerRequest`/`ServerResponse` enums in `crates/net/src/protocol.rs`
//!   and verifies tag uniqueness, encode/decode coverage, encode/decode
//!   agreement, and request/response tag pairing.
//! * [`passes::panic_free`] — **panic-freedom audit** (`P0xx`): flags
//!   `unwrap()`, `expect(`, panic-family macros, and bare slice indexing in
//!   non-`#[cfg(test)]` code of the hot-path crates (`net`, `server`,
//!   `storage`, `types::codec`).
//! * [`passes::queue_growth`] — **queue-growth audit** (`Q0xx`): flags
//!   `push`/`push_back` growth sites in the transport and service scope
//!   (`net`, `server`, `core::remote`) whose enclosing function never
//!   consults a capacity — the unbounded-buffer bug class the E14
//!   admission-control work exists to prevent.
//! * [`passes::alloc_hygiene`] — **allocation-hygiene audit** (`A0xx`):
//!   flags fresh allocations (`.to_vec()`, `.clone()`,
//!   `Vec::with_capacity(`) on the pooled hot-path modules
//!   (`net::frame`, `net::fault`, `core::remote`, `core::prefetch`),
//!   where the `BufferPool` lease/recycle pattern and borrowed decode
//!   keep the steady state under one allocation per page.
//! * [`passes::units`] — **unit-safety audit** (`U0xx`): flags lossy `as`
//!   casts on duration or widened byte-count arithmetic (the
//!   `Link::transfer_cost` bug class) everywhere except
//!   `crates/types/src/time.rs`, which owns the saturating helpers.
//! * [`passes::symmetry`] — **symmetry audit** (`S0xx`): extracts the
//!   public browsing-primitive surface of `crates/text` and `crates/voice`
//!   and fails when either side of the paper's Section 2 vocabulary is
//!   missing its counterpart.
//!
//! Panic-freedom, queue-growth, allocation-hygiene, and unit-safety
//! findings may be *ratcheted* through the
//! committed `lint-allow.toml`: existing debt is enumerated per file with a
//! cap, the lint fails when a file exceeds its cap **and** when a cap is
//! stale (fewer findings than allowed), so the debt can only shrink.
//!
//! The building blocks — [`source`] (comment/string stripping and
//! `#[cfg(test)]` masking), [`sig`] (a small `pub fn` signature parser),
//! [`diag`] (rule registry and diagnostics), [`allow`] (the ratchet file
//! loader) — are public so the fixture-driven self-tests under `tests/`
//! can drive each pass against known-bad and known-good snippets.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod allow;
pub mod diag;
pub mod passes;
pub mod runner;
pub mod sig;
pub mod source;

pub use diag::{rule, Diagnostic, Rule, RULES};
pub use runner::{lint_workspace, LintOutcome};
pub use source::SourceFile;
