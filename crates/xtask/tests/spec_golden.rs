//! Golden-spec tests: the extraction is deterministic, matches the
//! committed `spec/protocol.json` byte-for-byte, and drift is reported
//! as `X002` with a line anchor.

use std::path::PathBuf;

use minos_xtask::spec::{self, check_golden};
use minos_xtask::spec_workspace;

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_contract_conforms() {
    let outcome = spec_workspace(&root()).expect("workspace is readable");
    assert!(
        outcome.errors.is_empty(),
        "the real wire contract must conform:\n{}",
        outcome.errors.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
    // The load-bearing facts of the contract, pinned explicitly so a
    // parser regression that extracts nothing cannot pass as "no drift".
    let spec = &outcome.spec;
    assert_eq!(spec.request_tags.len(), 10, "ten request tags: {spec:?}");
    assert_eq!(spec.response_tags.len(), 10, "ten response tags: {spec:?}");
    assert_eq!(spec.envelope_tags.len(), 2, "request/response envelope: {spec:?}");
    assert_eq!(spec.priority_bytes.len(), 3, "audio/demand/prefetch: {spec:?}");
    assert_eq!(spec.priority_bytes.get("Audio"), Some(&0), "audio preempts: {spec:?}");
    assert_eq!(spec.hello_tag, spec.welcome_tag, "handshake tags agree");
    assert_eq!(spec.crc_trailer_len, Some(4));
}

#[test]
fn extraction_is_deterministic() {
    let a = spec_workspace(&root()).expect("first extraction").spec;
    let b = spec_workspace(&root()).expect("second extraction").spec;
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn extraction_matches_the_committed_golden() {
    let root = root();
    let outcome = spec_workspace(&root).expect("workspace is readable");
    let drift = check_golden(&root, &outcome.spec);
    assert!(
        drift.is_empty(),
        "spec drifted; review the protocol change, then run \
         `cargo run -p minos-xtask -- spec --write`:\n{}",
        drift.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn drift_is_reported_with_a_line_anchor() {
    let root = root();
    let outcome = spec_workspace(&root).expect("workspace is readable");
    let mut mutated = outcome.spec.clone();
    mutated.crc_trailer_len = Some(8);
    let drift = check_golden(&root, &mutated);
    assert_eq!(drift.len(), 1, "{drift:?}");
    assert_eq!(drift[0].rule, "X002");
    assert_eq!(drift[0].file, spec::GOLDEN_FILE);
    assert!(drift[0].line > 0);
}
