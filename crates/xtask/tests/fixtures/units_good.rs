//! Known-good units fixture: widened arithmetic is narrowed through
//! saturating/fallible conversions instead of raw `as` casts.

pub fn transfer_cost(bytes: u64, rate: u64) -> SimDuration {
    let micros = (bytes as u128 * 1_000_000).div_ceil(rate as u128);
    SimDuration::from_micros_saturating(micros)
}

pub fn page_index(total: SimDuration, page: SimDuration) -> usize {
    usize::try_from(total.as_micros() / page.as_micros()).unwrap_or(usize::MAX)
}

pub fn element_count(d: &mut Decoder<'_>) -> Result<usize> {
    d.get_len()
}
