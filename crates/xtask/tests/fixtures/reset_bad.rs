//! Known-bad reset-completeness fixture: trips R001, R002, and R003.

/// R001: the reset fn below touches `hits` and `misses` but never `stall`.
pub struct PipeStats {
    pub hits: u64,
    pub misses: u64,
    pub stall: u64,
}

pub struct Pipe {
    hits: u64,
    misses: u64,
    stall: u64,
}

impl Pipe {
    pub fn reset_accounting(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// R002: no reset fn in this file rebuilds or touches OrphanStats.
pub struct OrphanStats {
    pub ticks: u64,
}

/// R003: Conn has a reset fn, but it never touches the stats-bearing
/// `pipe` field — delegation drift.
pub struct Conn {
    pipe: Pipe,
    round_trips: u64,
}

impl Conn {
    pub fn reset_accounting(&mut self) {
        self.round_trips = 0;
    }
}
