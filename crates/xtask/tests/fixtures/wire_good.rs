//! Known-good wire fixture: unique tags, every variant encoded and decoded,
//! each request tag has a response tag.

pub enum ServerRequest {
    Fetch { id: u64 },
    Query { words: Vec<String> },
}

pub enum ServerResponse {
    Object(Vec<u8>),
    Hits(Vec<u64>),
}

impl ServerRequest {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerRequest::Fetch { id } => {
                e.put_u8(1);
            }
            ServerRequest::Query { words } => {
                e.put_u8(2);
            }
        }
    }
    pub fn decode(bytes: &[u8]) -> Result<ServerRequest> {
        let req = match d.get_u8()? {
            1 => ServerRequest::Fetch { id: 0 },
            2 => ServerRequest::Query { words: vec![] },
            other => return Err(other),
        };
    }
}

impl ServerResponse {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerResponse::Object(b) => {
                e.put_u8(1);
            }
            ServerResponse::Hits(h) => {
                e.put_u8(2);
            }
        }
    }
    pub fn decode(bytes: &[u8]) -> Result<ServerResponse> {
        let resp = match d.get_u8()? {
            1 => ServerResponse::Object(vec![]),
            2 => ServerResponse::Hits(vec![]),
            other => return Err(other),
        };
    }
}
