//! Known-bad units fixture: lossy narrowing casts on widened and duration
//! arithmetic.

pub fn transfer_micros(bytes: u64, rate: u64) -> u64 {
    (bytes as u128 * 1_000_000 / rate as u128) as u64
}

pub fn page_index(total: SimDuration, page: SimDuration) -> usize {
    (total.as_micros() / page.as_micros()) as usize
}

pub fn element_count(d: &mut Decoder<'_>) -> Result<usize> {
    Ok(d.get_varint()? as usize)
}
