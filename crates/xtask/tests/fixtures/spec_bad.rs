//! Known-bad spec fixture: response tag 3 has no paired request tag,
//! two priority classes share wire byte 0, and there is no CRC trailer
//! constant. Used as both the protocol file and the frame file.

pub enum ServerRequest {
    Fetch { id: u64 },
    Hello { epoch: u64 },
}

pub enum ServerResponse {
    Object(Vec<u8>),
    Welcome { epoch: u64 },
}

pub enum FramePayload {
    Request(ServerRequest),
    Response(ServerResponse),
}

impl ServerRequest {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerRequest::Fetch { id } => {
                e.put_u8(1);
            }
            ServerRequest::Hello { epoch } => {
                e.put_u8(8);
            }
        }
    }
    pub fn decode(bytes: &[u8]) -> Result<ServerRequest> {
        let req = match d.get_u8()? {
            1 => ServerRequest::Fetch { id: 0 },
            8 => ServerRequest::Hello { epoch: 0 },
            other => return Err(other),
        };
    }
}

impl ServerResponse {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerResponse::Object(b) => {
                e.put_u8(3);
            }
            ServerResponse::Welcome { epoch } => {
                e.put_u8(8);
            }
        }
    }
    pub fn decode(bytes: &[u8]) -> Result<ServerResponse> {
        let resp = match d.get_u8()? {
            3 => ServerResponse::Object(vec![]),
            8 => ServerResponse::Welcome { epoch: 0 },
            other => return Err(other),
        };
    }
}

impl FramePayload {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            FramePayload::Request(r) => {
                e.put_u8(1);
            }
            FramePayload::Response(r) => {
                e.put_u8(2);
            }
        }
    }
    pub fn decode(bytes: &[u8]) -> Result<FramePayload> {
        let p = match d.get_u8()? {
            1 => FramePayload::Request(r),
            2 => FramePayload::Response(r),
            other => return Err(other),
        };
    }
}

impl Priority {
    pub fn wire_tag(self) -> u8 {
        match self {
            Priority::Audio => 0,
            Priority::Demand => 0,
            Priority::Prefetch => 2,
        }
    }
}
