//! Known-good voice-side symmetry fixture: every browsing primitive has
//! its voice spelling.

pub fn page_count(&self) -> usize {}
pub fn page_containing(&self, t: SimInstant) -> Option<usize> {}
pub fn page_number_containing(&self, t: SimInstant) -> Option<PageNumber> {}
pub fn next_start_after(&self, t: SimInstant, level: LogicalLevel) -> Option<SimInstant> {}
pub fn prev_start_before(&self, t: SimInstant, level: LogicalLevel) -> Option<SimInstant> {}
pub fn available_levels(&self) -> &[LogicalLevel] {}
pub fn count(&self, level: LogicalLevel) -> usize {}
pub fn next_occurrence(&self, from: SimInstant) -> Option<TimeSpan> {}
pub fn prev_occurrence(&self, from: SimInstant) -> Option<TimeSpan> {}
pub fn occurrences(&self) -> Vec<TimeSpan> {}
