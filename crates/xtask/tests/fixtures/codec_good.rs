//! Known-good codec-coverage fixture: round-trips, bounded counts, and a
//! checked version.

pub struct Record {
    pub items: Vec<u8>,
}

impl Record {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(RECORD_VERSION);
        e.put_varint(self.items.len() as u64);
        e.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<Record> {
        let mut d = Decoder::new(bytes);
        let version = d.get_u8()?;
        if version != RECORD_VERSION {
            return Err(CodecError::Version(version));
        }
        let count = d.get_len()?;
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(d.get_u8()?);
        }
        Ok(Record { items })
    }
}

/// Decode-only types are fine: decoding is the hard half.
pub struct Probe;

impl Probe {
    pub fn decode(bytes: &[u8]) -> Result<Probe> {
        Ok(Probe)
    }
}
