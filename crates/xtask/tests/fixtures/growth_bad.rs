//! Known-bad queue-growth fixture: both growth sites sit in functions
//! that never consult a capacity, so an overloaded sender can grow the
//! buffers without bound.

use std::collections::VecDeque;

pub struct Mailbox {
    inbox: VecDeque<u64>,
    log: Vec<u64>,
}

impl Mailbox {
    pub fn deliver(&mut self, frame: u64) {
        self.inbox.push_back(frame);
    }

    pub fn record(&mut self, frame: u64) {
        self.log.push(frame);
    }
}
