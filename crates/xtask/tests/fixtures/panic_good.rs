//! Known-good panic fixture: fallible handling in real code, panics only
//! inside `#[cfg(test)]`, and the never-panicking idioms the pass exempts.

pub fn serve(blocks: &[Block], i: usize) -> Result<Vec<u8>> {
    let block = lookup(i).ok_or(MinosError::NotFound)?;
    let meta = parse(block).unwrap_or_default();
    let bytes = blocks.get(i).ok_or(MinosError::NotFound)?;
    let all = &bytes[..];
    let [first] = head.take_array::<1>()?;
    Ok(all.to_vec())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_index() {
        let v = vec![1, 2, 3];
        assert_eq!(v[0], 1);
        let x: Option<u8> = Some(9);
        assert_eq!(x.unwrap(), 9);
    }
}
