//! Known-bad panic fixture: one of each offender in non-test code.

pub fn serve(blocks: &[Block], i: usize) -> Vec<u8> {
    let block = lookup(i).unwrap();
    let meta = parse(block).expect("metadata is always present");
    if meta.kind == Kind::Unknown {
        panic!("unknown block kind");
    }
    blocks[i].bytes.clone()
}
