//! Known-good queue-growth fixture: every growth site's enclosing
//! function consults a capacity before admitting, and test-only growth is
//! exempt.

use std::collections::VecDeque;

pub struct Mailbox {
    inbox: VecDeque<u64>,
    log: Vec<u64>,
    global_cap: usize,
}

impl Mailbox {
    pub fn is_full(&self) -> bool {
        self.inbox.len() >= self.global_cap
    }

    pub fn deliver(&mut self, frame: u64) -> bool {
        if self.is_full() {
            return false;
        }
        self.inbox.push_back(frame);
        true
    }

    pub fn record_bounded(&mut self, frame: u64, limit: usize) {
        self.log.truncate(limit.saturating_sub(1));
        self.log.push(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unchecked_growth_in_tests_is_exempt() {
        let mut scratch = Vec::new();
        scratch.push(1u64);
        assert_eq!(scratch.len(), 1);
    }
}
