//! Known-bad codec-coverage fixture: trips C001, C002, and C003.

/// C001: encodes but never decodes.
pub struct OneWay {
    pub id: u64,
}

impl OneWay {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_varint(self.id);
        e.finish()
    }
}

/// C002 and C003 live here: the count skips get_len and the decode never
/// looks at RECORD_VERSION.
pub struct Record {
    pub items: Vec<u8>,
}

impl Record {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(RECORD_VERSION);
        e.put_varint(self.items.len() as u64);
        e.finish()
    }

    pub fn decode(bytes: &[u8]) -> Result<Record> {
        let mut d = Decoder::new(bytes);
        let _version = d.get_u8()?;
        let count = d.get_varint()?;
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(d.get_u8()?);
        }
        Ok(Record { items })
    }
}
