//! Known-good reset-completeness fixture: wholesale rebuilds, split
//! resets, containment, delegation, and the Report exemption all pass.

/// Covered wholesale: the reset fn rebuilds it from Default.
pub struct LinkStats {
    pub messages: u64,
    pub bytes: u64,
}

/// Covered by containment: embedded in the wholesale-covered LinkStats
/// owner's sibling below.
pub struct PerConnStats {
    pub served: u64,
}

pub struct QueueStats {
    pub served: u64,
    pub per_conn: Vec<PerConnStats>,
}

/// Exempt: `*Report` structs are per-run outputs, built fresh each time.
pub struct RunReport {
    pub pages: u64,
    pub stalls: u64,
}

pub struct Link {
    stats: LinkStats,
}

impl Link {
    pub fn reset_stats(&mut self) {
        self.stats = LinkStats::default();
    }
}

pub struct Queue {
    stats: QueueStats,
    depth: usize,
}

impl Queue {
    /// Split reset: one fn rebuilds the stats...
    pub fn reset_stats(&mut self) {
        self.stats = QueueStats::default();
    }

    /// ...and another clears the transient state.
    pub fn clear_backlog(&mut self) {
        self.depth = 0;
    }
}

/// Delegation covered: the reset fn touches the stats-bearing field.
pub struct Conn {
    link: Link,
    round_trips: u64,
}

impl Conn {
    pub fn reset_accounting(&mut self) {
        self.link.reset_stats();
        self.round_trips = 0;
    }
}
