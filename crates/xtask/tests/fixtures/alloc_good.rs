//! Known-good allocation-hygiene fixture: the hot path leases from the
//! pool, copies into leased buffers, returns them when consumed, and
//! decodes by borrowing — test-only allocations are exempt.

use minos_net::BufferPool;

pub struct Retransmit {
    pool: BufferPool,
    request: Vec<u8>,
}

impl Retransmit {
    pub fn stash(&mut self, wire: &[u8]) {
        let mut leased = self.pool.lease_vec();
        leased.extend_from_slice(wire);
        self.pool.recycle(std::mem::replace(&mut self.request, leased));
    }

    pub fn resend(&self) -> &[u8] {
        &self.request
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_in_tests_is_exempt() {
        let copied = [1u8, 2, 3].to_vec();
        assert_eq!(copied.clone(), copied);
    }
}
