//! Text-side symmetry fixture: the full Section 2 browsing vocabulary.

pub fn page_count(&self) -> usize {}
pub fn page_containing(&self, pos: CharPos) -> Option<usize> {}
pub fn page_number_containing(&self, pos: CharPos) -> Option<PageNumber> {}
pub fn next_start_after(&self, pos: CharPos, level: LogicalLevel) -> Option<CharPos> {}
pub fn prev_start_before(&self, pos: CharPos, level: LogicalLevel) -> Option<CharPos> {}
pub fn available_levels(&self) -> &[LogicalLevel] {}
pub fn count(&self, level: LogicalLevel) -> usize {}
pub fn find_next(&self, pattern: &str, from: CharPos) -> Option<CharSpan> {}
pub fn find_prev(&self, pattern: &str, from: CharPos) -> Option<CharSpan> {}
pub fn find_all(&self, pattern: &str) -> Vec<CharSpan> {}
