//! Known-bad frame fixture: `Response` reuses envelope tag 1, so the
//! payload enum has a duplicate wire tag (W001) and the decode arm for 2
//! disagrees with the encode side (W004).

pub enum FramePayload {
    Request(ServerRequest),
    Response(ServerResponse),
}

impl FramePayload {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            FramePayload::Request(request) => {
                e.put_u8(1);
            }
            FramePayload::Response(response) => {
                e.put_u8(1);
            }
        }
    }
    pub fn decode(bytes: &[u8]) -> Result<FramePayload> {
        let payload = match d.get_u8()? {
            1 => FramePayload::Request(ServerRequest::decode(&d.get_bytes()?)?),
            2 => FramePayload::Response(ServerResponse::decode(&d.get_bytes()?)?),
            other => return Err(other),
        };
    }
}
