//! Known-bad allocation-hygiene fixture: every idiom the pass flags —
//! a borrowed span copied with `to_vec`, a message duplicated with
//! `clone` where a move would do, and a buffer minted with
//! `with_capacity` instead of leased from the pool.

pub struct Retransmit {
    request: Vec<u8>,
}

impl Retransmit {
    pub fn stash(&mut self, wire: &[u8]) {
        self.request = wire.to_vec();
    }

    pub fn resend(&self) -> Vec<u8> {
        self.request.clone()
    }

    pub fn fresh_payload(len: usize) -> Vec<u8> {
        Vec::with_capacity(len)
    }
}
