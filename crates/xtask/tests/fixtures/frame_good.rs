//! Known-good frame fixture: unique envelope tags, every payload variant
//! encoded and decoded, encode and decode in agreement.

pub enum FramePayload {
    Request(ServerRequest),
    Response(ServerResponse),
}

impl FramePayload {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            FramePayload::Request(request) => {
                e.put_u8(1);
            }
            FramePayload::Response(response) => {
                e.put_u8(2);
            }
        }
    }
    pub fn decode(bytes: &[u8]) -> Result<FramePayload> {
        let payload = match d.get_u8()? {
            1 => FramePayload::Request(ServerRequest::decode(&d.get_bytes()?)?),
            2 => FramePayload::Response(ServerResponse::decode(&d.get_bytes()?)?),
            other => return Err(other),
        };
    }
}
