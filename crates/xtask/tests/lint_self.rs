//! Fixture self-tests: every pass flags its known-bad fixture with the
//! right rule codes and a real `file:line` anchor, stays quiet on the
//! known-good twin — and the workspace itself lints clean.

use std::path::{Path, PathBuf};

use minos_xtask::passes::{
    alloc_hygiene, codec_cov, panic_free, queue_growth, reset, symmetry, units, wire,
};
use minos_xtask::sig;
use minos_xtask::{lint_workspace, Diagnostic, ProtocolSpec, SourceFile};

fn fixture(name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    SourceFile::load(&path, name).expect("fixture file exists")
}

fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = diags.iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

fn assert_anchored(diags: &[Diagnostic], file: &str) {
    for d in diags {
        assert_eq!(d.file, file, "diagnostic anchored to the fixture: {d}");
        assert!(d.line > 0, "diagnostic carries a 1-based line: {d}");
    }
}

#[test]
fn wire_bad_fixture_has_duplicate_tag() {
    let diags = wire::run(&fixture("wire_bad.rs"), "ServerRequest", "ServerResponse");
    assert!(rules(&diags).contains(&"W001"), "expected W001, got {diags:?}");
    assert_anchored(&diags, "wire_bad.rs");
}

#[test]
fn wire_good_fixture_is_clean() {
    let diags = wire::run(&fixture("wire_good.rs"), "ServerRequest", "ServerResponse");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn frame_bad_fixture_has_duplicate_envelope_tag() {
    let diags = wire::run_single(&fixture("frame_bad.rs"), "FramePayload");
    let rules = rules(&diags);
    assert!(rules.contains(&"W001"), "expected W001, got {diags:?}");
    assert!(rules.contains(&"W004"), "expected W004, got {diags:?}");
    assert_anchored(&diags, "frame_bad.rs");
}

#[test]
fn frame_good_fixture_is_clean() {
    let diags = wire::run_single(&fixture("frame_good.rs"), "FramePayload");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn panic_bad_fixture_trips_every_rule() {
    let diags = panic_free::run(&[fixture("panic_bad.rs")]);
    assert_eq!(rules(&diags), vec!["P001", "P002", "P003", "P004"], "got {diags:?}");
    assert_anchored(&diags, "panic_bad.rs");
}

#[test]
fn panic_good_fixture_is_clean() {
    let diags = panic_free::run(&[fixture("panic_good.rs")]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn growth_bad_fixture_flags_both_sites() {
    let diags = queue_growth::run(&[fixture("growth_bad.rs")]);
    assert_eq!(rules(&diags), vec!["Q001"], "got {diags:?}");
    assert_eq!(diags.len(), 2, "push_back and push both flagged: {diags:?}");
    assert_anchored(&diags, "growth_bad.rs");
}

#[test]
fn growth_good_fixture_is_clean() {
    let diags = queue_growth::run(&[fixture("growth_good.rs")]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn alloc_bad_fixture_flags_every_idiom() {
    let diags = alloc_hygiene::run(&[fixture("alloc_bad.rs")]);
    assert_eq!(rules(&diags), vec!["A001"], "got {diags:?}");
    assert_eq!(diags.len(), 3, "to_vec, clone, and with_capacity all flagged: {diags:?}");
    assert_anchored(&diags, "alloc_bad.rs");
}

#[test]
fn alloc_good_fixture_is_clean() {
    let diags = alloc_hygiene::run(&[fixture("alloc_good.rs")]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn units_bad_fixture_trips_all_rules() {
    let diags = units::run(&[fixture("units_bad.rs")]);
    assert_eq!(rules(&diags), vec!["U001", "U002", "U003"], "got {diags:?}");
    assert_anchored(&diags, "units_bad.rs");
}

#[test]
fn units_good_fixture_is_clean() {
    let diags = units::run(&[fixture("units_good.rs")]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn asymmetric_voice_fixture_is_s001() {
    let text = sig::pub_fns(&fixture("symmetry_text.rs"));
    let voice = sig::pub_fns(&fixture("symmetry_voice_bad.rs"));
    let diags = symmetry::run(&text, &voice);
    assert_eq!(rules(&diags), vec!["S001"], "got {diags:?}");
    assert!(diags[0].message.contains("search all"), "{diags:?}");
    // S001 anchors at the text primitive that lost its counterpart.
    assert_anchored(&diags, "symmetry_text.rs");
}

#[test]
fn symmetric_fixtures_are_clean() {
    let text = sig::pub_fns(&fixture("symmetry_text.rs"));
    let voice = sig::pub_fns(&fixture("symmetry_voice_good.rs"));
    let diags = symmetry::run(&text, &voice);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn reset_bad_fixture_trips_every_rule() {
    let diags = reset::run(&[fixture("reset_bad.rs")]);
    let mut seen = rules(&diags);
    seen.sort_unstable();
    assert_eq!(seen, vec!["R001", "R002", "R003"], "got {diags:?}");
    assert!(
        diags.iter().any(|d| d.rule == "R001" && d.message.contains("stall")),
        "R001 names the missed field: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.rule == "R003" && d.message.contains("Conn::pipe")),
        "R003 names the drifted field: {diags:?}"
    );
    assert_anchored(&diags, "reset_bad.rs");
}

#[test]
fn reset_good_fixture_is_clean() {
    let diags = reset::run(&[fixture("reset_good.rs")]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn codec_bad_fixture_trips_every_rule() {
    let diags = codec_cov::run(&[fixture("codec_bad.rs")]);
    let mut seen = rules(&diags);
    seen.sort_unstable();
    assert_eq!(seen, vec!["C001", "C002", "C003"], "got {diags:?}");
    assert!(
        diags.iter().any(|d| d.rule == "C001" && d.message.contains("OneWay")),
        "C001 names the one-way type: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.rule == "C003" && d.message.contains("RECORD_VERSION")),
        "C003 names the unchecked const: {diags:?}"
    );
    assert_anchored(&diags, "codec_bad.rs");
}

#[test]
fn codec_good_fixture_is_clean() {
    let diags = codec_cov::run(&[fixture("codec_good.rs")]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn spec_bad_fixture_fails_conformance() {
    let f = fixture("spec_bad.rs");
    let spec = ProtocolSpec::extract(&f, &f);
    let diags = spec.conformance("spec_bad.rs", "spec_bad.rs");
    assert_eq!(rules(&diags), vec!["X001"], "got {diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("no paired request tag")),
        "unpaired response tag flagged: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("share wire byte 0")),
        "duplicate priority byte flagged: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("CRC trailer")),
        "missing CRC trailer flagged: {diags:?}"
    );
    assert_anchored(&diags, "spec_bad.rs");
}

#[test]
fn spec_good_fixture_conforms() {
    let f = fixture("spec_good.rs");
    let spec = ProtocolSpec::extract(&f, &f);
    let diags = spec.conformance("spec_good.rs", "spec_good.rs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(spec.hello_tag, Some(8));
    assert_eq!(spec.crc_trailer_len, Some(4));
}

#[test]
fn workspace_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = lint_workspace(&root).expect("workspace is readable");
    assert!(
        outcome.is_clean(),
        "workspace lint must stay clean:\n{}",
        outcome.errors.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(outcome.checked_files > 50, "walker saw the workspace, not a stub");
}
