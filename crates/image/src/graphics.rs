//! Graphics objects and labels.
//!
//! "Images with graphics contain graphics objects such as points, polygons,
//! polylines, circles, etc. Graphics objects may have a label associated
//! with them. A label is some short information about the object. The
//! presentation form of a label may be invisible, text label, or voice
//! label." (§2)

use minos_types::{bounding_box, polygon_contains, Point, Rect};

/// The geometric shape of a graphics object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Shape {
    /// A single pixel marker.
    Point(Point),
    /// An open chain of line segments.
    Polyline(Vec<Point>),
    /// A closed polygon, optionally filled ("possibly shaded", §2).
    Polygon {
        /// Vertices in order.
        vertices: Vec<Point>,
        /// Whether the interior is shaded.
        filled: bool,
    },
    /// A circle, optionally filled.
    Circle {
        /// Centre.
        center: Point,
        /// Radius in pixels.
        radius: u32,
        /// Whether the interior is shaded.
        filled: bool,
    },
}

impl Shape {
    /// Axis-aligned bounding box of the shape (used for highlighting and
    /// hit-testing). `None` for degenerate empty shapes.
    pub fn bounding_box(&self) -> Option<Rect> {
        match self {
            Shape::Point(p) => Some(Rect::new(p.x, p.y, 1, 1)),
            Shape::Polyline(pts) => bounding_box(pts),
            Shape::Polygon { vertices, .. } => bounding_box(vertices),
            Shape::Circle { center, radius, .. } => {
                let r = *radius as i32;
                Some(Rect::new(center.x - r, center.y - r, 2 * radius + 1, 2 * radius + 1))
            }
        }
    }

    /// Whether `p` hits the shape (interior for closed shapes, bounding box
    /// for polylines — generous hit targets suit mouse selection).
    pub fn hit_test(&self, p: Point) -> bool {
        match self {
            Shape::Point(q) => p.distance_sq(*q) <= 4,
            Shape::Polyline(_) => self.bounding_box().map(|b| b.contains(p)).unwrap_or(false),
            Shape::Polygon { vertices, .. } => polygon_contains(vertices, p),
            Shape::Circle { center, radius, .. } => {
                p.distance_sq(*center) <= (*radius as i64) * (*radius as i64)
            }
        }
    }
}

/// What a label presents when activated.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LabelContent {
    /// A short piece of text displayed near the object.
    Text(String),
    /// A short piece of voice, named by its data-file tag; a voice label
    /// indicator is displayed and the voice plays on selection.
    Voice {
        /// Tag of the voice data file.
        tag: String,
        /// Transcript of the label (what recognition/indexing sees).
        transcript: String,
    },
}

impl LabelContent {
    /// The searchable text of the label — the text itself, or the voice
    /// label's transcript ("the user can specify a pattern and request that
    /// the objects in which this pattern appears within their label are
    /// highlighted", §2).
    pub fn searchable_text(&self) -> &str {
        match self {
            LabelContent::Text(t) => t,
            LabelContent::Voice { transcript, .. } => transcript,
        }
    }

    /// Whether this is a voice label.
    pub fn is_voice(&self) -> bool {
        matches!(self, LabelContent::Voice { .. })
    }
}

/// A label attached to a graphics object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Label {
    /// What the label presents.
    pub content: LabelContent,
    /// Designer-specified display position near the object.
    pub anchor: Point,
    /// Invisible labels "do not display any information about their
    /// existence by default" (§2) but still participate in search.
    pub visible: bool,
}

/// One graphics object: a shape plus an optional label.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GraphicsObject {
    /// Geometry.
    pub shape: Shape,
    /// Optional label.
    pub label: Option<Label>,
}

impl GraphicsObject {
    /// An unlabelled object.
    pub fn new(shape: Shape) -> Self {
        GraphicsObject { shape, label: None }
    }

    /// Attaches a label.
    pub fn with_label(mut self, label: Label) -> Self {
        self.label = Some(label);
        self
    }
}

/// A graphics image: an extent plus its objects in z-order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GraphicsImage {
    /// Pixel extent of the image.
    pub width: u32,
    /// Pixel extent of the image.
    pub height: u32,
    /// Objects, first drawn first.
    pub objects: Vec<GraphicsObject>,
}

impl GraphicsImage {
    /// Creates an empty graphics image.
    pub fn new(width: u32, height: u32) -> Self {
        GraphicsImage { width, height, objects: Vec::new() }
    }

    /// Adds an object, returning its index.
    pub fn push(&mut self, object: GraphicsObject) -> usize {
        self.objects.push(object);
        self.objects.len() - 1
    }

    /// The topmost object hit by `p`, if any (later objects are on top).
    pub fn object_at(&self, p: Point) -> Option<usize> {
        self.objects.iter().rposition(|o| o.shape.hit_test(p))
    }

    /// Indices of objects whose label text contains `pattern`
    /// (case-insensitive) — the highlight query of §2.
    pub fn objects_with_label_pattern(&self, pattern: &str) -> Vec<usize> {
        let needle = pattern.to_lowercase();
        if needle.is_empty() {
            return Vec::new();
        }
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, o)| {
                o.label
                    .as_ref()
                    .map(|l| l.content.searchable_text().to_lowercase().contains(&needle))
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// All voice labels in the image in z-order, as `(object index, tag)` —
    /// the system-defined order used when "the user … request\[s\] that all
    /// voice labels are played" (§2).
    pub fn voice_labels(&self) -> Vec<(usize, &str)> {
        self.objects
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match &o.label {
                Some(Label { content: LabelContent::Voice { tag, .. }, .. }) => {
                    Some((i, tag.as_str()))
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labelled(shape: Shape, text: &str) -> GraphicsObject {
        GraphicsObject::new(shape).with_label(Label {
            content: LabelContent::Text(text.into()),
            anchor: Point::new(0, 0),
            visible: true,
        })
    }

    #[test]
    fn shape_bounding_boxes() {
        assert_eq!(Shape::Point(Point::new(3, 4)).bounding_box(), Some(Rect::new(3, 4, 1, 1)));
        assert_eq!(
            Shape::Circle { center: Point::new(10, 10), radius: 3, filled: false }.bounding_box(),
            Some(Rect::new(7, 7, 7, 7))
        );
        let poly = Shape::Polygon {
            vertices: vec![Point::new(0, 0), Point::new(4, 0), Point::new(2, 6)],
            filled: true,
        };
        assert_eq!(poly.bounding_box(), Some(Rect::new(0, 0, 5, 7)));
        assert_eq!(Shape::Polyline(vec![]).bounding_box(), None);
    }

    #[test]
    fn hit_tests() {
        let circle = Shape::Circle { center: Point::new(10, 10), radius: 5, filled: true };
        assert!(circle.hit_test(Point::new(10, 10)));
        assert!(circle.hit_test(Point::new(13, 13))); // dist^2 = 18 <= 25
        assert!(!circle.hit_test(Point::new(14, 14))); // dist^2 = 32 > 25
        let square = Shape::Polygon {
            vertices: vec![
                Point::new(0, 0),
                Point::new(10, 0),
                Point::new(10, 10),
                Point::new(0, 10),
            ],
            filled: false,
        };
        assert!(square.hit_test(Point::new(5, 5)));
        assert!(!square.hit_test(Point::new(15, 5)));
        assert!(Shape::Point(Point::new(2, 2)).hit_test(Point::new(3, 3)));
        assert!(!Shape::Point(Point::new(2, 2)).hit_test(Point::new(6, 6)));
    }

    #[test]
    fn object_at_returns_topmost() {
        let mut img = GraphicsImage::new(100, 100);
        let below = img.push(labelled(
            Shape::Circle { center: Point::new(50, 50), radius: 20, filled: true },
            "below",
        ));
        let above = img.push(labelled(
            Shape::Circle { center: Point::new(50, 50), radius: 10, filled: true },
            "above",
        ));
        assert_eq!(img.object_at(Point::new(50, 50)), Some(above));
        assert_eq!(img.object_at(Point::new(65, 50)), Some(below));
        assert_eq!(img.object_at(Point::new(90, 90)), None);
    }

    #[test]
    fn label_pattern_search_is_case_insensitive() {
        let mut img = GraphicsImage::new(200, 200);
        img.push(labelled(Shape::Point(Point::new(1, 1)), "General Hospital"));
        img.push(labelled(Shape::Point(Point::new(2, 2)), "City Hall"));
        img.push(GraphicsObject::new(Shape::Point(Point::new(3, 3)))); // no label
        img.push(labelled(Shape::Point(Point::new(4, 4)), "hospital annex"));
        assert_eq!(img.objects_with_label_pattern("HOSPITAL"), vec![0, 3]);
        assert_eq!(img.objects_with_label_pattern("hall"), vec![1]);
        assert!(img.objects_with_label_pattern("").is_empty());
    }

    #[test]
    fn voice_label_transcripts_are_searchable() {
        let mut img = GraphicsImage::new(100, 100);
        img.push(GraphicsObject::new(Shape::Point(Point::new(5, 5))).with_label(Label {
            content: LabelContent::Voice {
                tag: "v1".into(),
                transcript: "university of waterloo".into(),
            },
            anchor: Point::new(5, 5),
            visible: true,
        }));
        assert_eq!(img.objects_with_label_pattern("waterloo"), vec![0]);
        assert_eq!(img.voice_labels(), vec![(0, "v1")]);
        assert!(img.objects[0].label.as_ref().unwrap().content.is_voice());
    }

    #[test]
    fn invisible_labels_still_searchable() {
        let mut img = GraphicsImage::new(100, 100);
        img.push(GraphicsObject::new(Shape::Point(Point::new(5, 5))).with_label(Label {
            content: LabelContent::Text("hidden landmark".into()),
            anchor: Point::new(5, 5),
            visible: false,
        }));
        assert_eq!(img.objects_with_label_pattern("landmark"), vec![0]);
    }
}
