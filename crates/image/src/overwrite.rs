//! Overwrite pages.
//!
//! "An overwrite is a visual page with an image which contains a number of
//! bitmaps or graphics objects (possibly shaded). When the overwrite page
//! is turned, the bitmaps, lines, and shades of the overwrite image replace
//! whatever existed in the previous page but they leave anything else
//! intact." (§2)
//!
//! Unlike a transparency (pure OR), an overwrite can *blank* regions — that
//! is how Figures 9–10 mark the walked route with "blank spots". The
//! content therefore carries an explicit mask: where the mask has ink the
//! destination takes the overwrite's pixel (ink or blank); elsewhere the
//! previous page shows through.

use crate::bitmap::Bitmap;
use minos_types::{MinosError, Point, Rect, Result};

/// One overwrite page.
#[derive(Clone, PartialEq, Debug)]
pub struct Overwrite {
    content: Bitmap,
    mask: Bitmap,
    at: Point,
}

impl Overwrite {
    /// Creates an overwrite whose `content` replaces the destination
    /// wherever `mask` has ink, positioned at `at`.
    pub fn new(content: Bitmap, mask: Bitmap, at: Point) -> Result<Self> {
        if content.size() != mask.size() {
            return Err(MinosError::Geometry("overwrite mask must match content size".into()));
        }
        Ok(Overwrite { content, mask, at })
    }

    /// An overwrite that paints `content`'s ink (mask = content): the
    /// common "add these marks" case.
    pub fn paint(content: Bitmap, at: Point) -> Self {
        let mask = content.clone();
        Overwrite { content, mask, at }
    }

    /// An overwrite that blanks `rect` — the "blank spots identify the
    /// route followed so far" of Figures 9–10.
    pub fn blank(rect: Rect) -> Self {
        let content = Bitmap::new(rect.size.width, rect.size.height);
        let mut mask = Bitmap::new(rect.size.width, rect.size.height);
        mask.fill_rect(Rect::of_size(rect.size), true);
        Overwrite { content, mask, at: rect.origin }
    }

    /// Position of the overwrite on the page.
    pub fn position(&self) -> Point {
        self.at
    }

    /// The content raster.
    pub fn content(&self) -> &Bitmap {
        &self.content
    }

    /// The mask raster.
    pub fn mask(&self) -> &Bitmap {
        &self.mask
    }

    /// Applies the overwrite to `page` in place.
    pub fn apply(&self, page: &mut Bitmap) {
        page.blit_masked(&self.content, &self.mask, self.at);
    }
}

/// Applies a sequence of overwrites to a copy of `base`, returning the page
/// after the `upto`-th overwrite (exclusive upper bound = state after that
/// many page turns).
pub fn apply_sequence(base: &Bitmap, overwrites: &[Overwrite], upto: usize) -> Bitmap {
    let mut page = base.clone();
    for o in overwrites.iter().take(upto) {
        o.apply(&mut page);
    }
    page
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkerboard(n: u32) -> Bitmap {
        let mut bm = Bitmap::new(n, n);
        for y in 0..n as i32 {
            for x in 0..n as i32 {
                if (x + y) % 2 == 0 {
                    bm.set(x, y, true);
                }
            }
        }
        bm
    }

    #[test]
    fn paint_adds_ink_and_leaves_rest_intact() {
        let base = checkerboard(8);
        let mut marks = Bitmap::new(3, 3);
        marks.set(1, 1, true);
        let ow = Overwrite::paint(marks, Point::new(2, 2));
        let mut page = base.clone();
        ow.apply(&mut page);
        assert!(page.get(3, 3));
        // Everything outside the single masked pixel is unchanged.
        for y in 0..8 {
            for x in 0..8 {
                if (x, y) != (3, 3) {
                    assert_eq!(page.get(x, y), base.get(x, y), "changed at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn blank_clears_a_region() {
        let base = checkerboard(8);
        let ow = Overwrite::blank(Rect::new(2, 2, 3, 3));
        let mut page = base.clone();
        ow.apply(&mut page);
        for y in 2..5 {
            for x in 2..5 {
                assert!(!page.get(x, y), "not blanked at ({x},{y})");
            }
        }
        assert_eq!(page.get(0, 0), base.get(0, 0));
    }

    #[test]
    fn masked_content_can_mix_ink_and_blank() {
        // Replace a 2x2 block with a diagonal: ink at (0,0),(1,1), blank at
        // the anti-diagonal.
        let mut content = Bitmap::new(2, 2);
        content.set(0, 0, true);
        content.set(1, 1, true);
        let mut mask = Bitmap::new(2, 2);
        mask.fill_rect(Rect::new(0, 0, 2, 2), true);
        let ow = Overwrite::new(content, mask, Point::new(0, 0)).unwrap();
        let mut page = checkerboard(2);
        ow.apply(&mut page);
        assert!(page.get(0, 0) && page.get(1, 1));
        assert!(!page.get(1, 0) && !page.get(0, 1));
    }

    #[test]
    fn size_mismatch_is_error() {
        assert!(Overwrite::new(Bitmap::new(2, 2), Bitmap::new(3, 3), Point::ORIGIN).is_err());
    }

    #[test]
    fn apply_sequence_is_cumulative_and_ordered() {
        let base = Bitmap::new(8, 8);
        let mut ink = Bitmap::new(2, 2);
        ink.fill_rect(Rect::new(0, 0, 2, 2), true);
        let seq = vec![
            Overwrite::paint(ink.clone(), Point::new(0, 0)),
            Overwrite::paint(ink.clone(), Point::new(4, 4)),
            Overwrite::blank(Rect::new(0, 0, 2, 2)), // erases the first
        ];
        let p0 = apply_sequence(&base, &seq, 0);
        assert!(p0.is_blank());
        let p1 = apply_sequence(&base, &seq, 1);
        assert_eq!(p1.count_ink(), 4);
        let p2 = apply_sequence(&base, &seq, 2);
        assert_eq!(p2.count_ink(), 8);
        let p3 = apply_sequence(&base, &seq, 3);
        assert_eq!(p3.count_ink(), 4);
        assert!(p3.get(5, 5) && !p3.get(0, 0));
    }

    #[test]
    fn overwrite_order_matters() {
        let base = Bitmap::new(4, 4);
        let mut ink = Bitmap::new(4, 4);
        ink.fill_rect(Rect::new(0, 0, 4, 4), true);
        let paint = Overwrite::paint(ink, Point::ORIGIN);
        let blank = Overwrite::blank(Rect::new(0, 0, 4, 4));
        let paint_then_blank = apply_sequence(&base, &[paint.clone(), blank.clone()], 2);
        let blank_then_paint = apply_sequence(&base, &[blank, paint], 2);
        assert!(paint_then_blank.is_blank());
        assert_eq!(blank_then_paint.count_ink(), 16);
    }
}
