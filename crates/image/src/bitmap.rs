//! Bit-packed monochrome rasters.
//!
//! A [`Bitmap`] is the concrete form of every image on the simulated
//! workstation: captured pages, x-rays, maps, rendered graphics, the screen
//! itself. Pixels are 1 (ink) or 0 (background), packed 64 per word. The
//! blit modes correspond to presentation semantics: `Replace` for ordinary
//! page drawing, `Or` for transparencies (ink accumulates, background shows
//! through), and masked blits for overwrites (§2: overwrite content
//! "replace\[s\] whatever existed in the previous page but … leave\[s\]
//! anything else intact").

use minos_types::{MinosError, Point, Rect, Result, Size};

/// How source pixels combine with destination pixels in a blit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlitMode {
    /// Destination := source.
    Replace,
    /// Destination := destination OR source (transparency superposition).
    Or,
    /// Destination := destination AND NOT source (erase source ink).
    Clear,
    /// Destination := destination XOR source (highlight flashing).
    Xor,
}

/// A monochrome bitmap.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Bitmap {
    width: u32,
    height: u32,
    /// Row-major, `words_per_row` u64 words per row, LSB-first within each
    /// word.
    words: Vec<u64>,
    words_per_row: u32,
}

impl Bitmap {
    /// Creates an all-background bitmap.
    pub fn new(width: u32, height: u32) -> Self {
        let words_per_row = width.div_ceil(64);
        Bitmap {
            width,
            height,
            words: vec![0; (words_per_row as usize) * (height as usize)],
            words_per_row,
        }
    }

    /// Creates a bitmap of `size`.
    pub fn of_size(size: Size) -> Self {
        Self::new(size.width, size.height)
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Extent as a [`Size`].
    pub fn size(&self) -> Size {
        Size::new(self.width, self.height)
    }

    /// The bitmap's bounds as a rectangle at the origin.
    pub fn bounds(&self) -> Rect {
        Rect::of_size(self.size())
    }

    /// Storage footprint in bytes — what a transfer of this bitmap costs on
    /// the simulated network and disks.
    pub fn byte_size(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    #[inline]
    fn index(&self, x: u32, y: u32) -> (usize, u64) {
        let word = y as usize * self.words_per_row as usize + (x / 64) as usize;
        let bit = 1u64 << (x % 64);
        (word, bit)
    }

    /// Pixel value at `(x, y)`; out-of-bounds reads are background.
    pub fn get(&self, x: i32, y: i32) -> bool {
        if x < 0 || y < 0 || x as u32 >= self.width || y as u32 >= self.height {
            return false;
        }
        let (w, b) = self.index(x as u32, y as u32);
        self.words[w] & b != 0
    }

    /// Sets the pixel at `(x, y)`; out-of-bounds writes are ignored
    /// (rasterization clips at edges).
    pub fn set(&mut self, x: i32, y: i32, ink: bool) {
        if x < 0 || y < 0 || x as u32 >= self.width || y as u32 >= self.height {
            return;
        }
        let (w, b) = self.index(x as u32, y as u32);
        if ink {
            self.words[w] |= b;
        } else {
            self.words[w] &= !b;
        }
    }

    /// Number of ink pixels.
    pub fn count_ink(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether the bitmap has no ink at all.
    pub fn is_blank(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Fills `rect` (clipped to bounds) with ink or background.
    pub fn fill_rect(&mut self, rect: Rect, ink: bool) {
        let Some(r) = rect.intersect(self.bounds()) else { return };
        for y in r.top()..r.bottom() {
            for x in r.left()..r.right() {
                self.set(x, y, ink);
            }
        }
    }

    /// Copies the pixels of `rect` (which must lie within bounds) into a
    /// new bitmap — the retrieval primitive behind views: "The system will
    /// only retrieve the relevant data" (§2).
    pub fn extract(&self, rect: Rect) -> Result<Bitmap> {
        if !self.bounds().contains_rect(rect) {
            return Err(MinosError::Geometry(format!(
                "extract rect {rect:?} outside bitmap {}x{}",
                self.width, self.height
            )));
        }
        let mut out = Bitmap::new(rect.size.width, rect.size.height);
        for y in 0..rect.size.height as i32 {
            for x in 0..rect.size.width as i32 {
                if self.get(rect.left() + x, rect.top() + y) {
                    out.set(x, y, true);
                }
            }
        }
        Ok(out)
    }

    /// Blits `src` onto `self` with its top-left corner at `at`, combining
    /// pixels per `mode`. Source pixels falling outside `self` are clipped.
    pub fn blit(&mut self, src: &Bitmap, at: Point, mode: BlitMode) {
        for y in 0..src.height as i32 {
            for x in 0..src.width as i32 {
                let s = src.get(x, y);
                let dx = at.x + x;
                let dy = at.y + y;
                match mode {
                    BlitMode::Replace => self.set(dx, dy, s),
                    BlitMode::Or => {
                        if s {
                            self.set(dx, dy, true);
                        }
                    }
                    BlitMode::Clear => {
                        if s {
                            self.set(dx, dy, false);
                        }
                    }
                    BlitMode::Xor => {
                        if s {
                            let d = self.get(dx, dy);
                            self.set(dx, dy, !d);
                        }
                    }
                }
            }
        }
    }

    /// Masked blit: where `mask` has ink, destination := `src` pixel;
    /// elsewhere the destination is left intact. This is the §2 overwrite
    /// semantics — note a masked pixel may be *blank* in `src`, which is
    /// how Figures 9–10 blank out the walked route.
    pub fn blit_masked(&mut self, src: &Bitmap, mask: &Bitmap, at: Point) {
        debug_assert_eq!(src.size(), mask.size(), "mask must match source size");
        for y in 0..src.height as i32 {
            for x in 0..src.width as i32 {
                if mask.get(x, y) {
                    self.set(at.x + x, at.y + y, src.get(x, y));
                }
            }
        }
    }

    /// Rows as strings of `#`/`.` for golden tests and terminal demos.
    pub fn to_ascii(&self) -> Vec<String> {
        (0..self.height as i32)
            .map(|y| {
                (0..self.width as i32).map(|x| if self.get(x, y) { '#' } else { '.' }).collect()
            })
            .collect()
    }

    /// Parses the format produced by [`Bitmap::to_ascii`]; any character
    /// other than `.` or space is ink.
    pub fn from_ascii(rows: &[&str]) -> Bitmap {
        let height = rows.len() as u32;
        let width = rows.iter().map(|r| r.chars().count()).max().unwrap_or(0) as u32;
        let mut bm = Bitmap::new(width, height);
        for (y, row) in rows.iter().enumerate() {
            for (x, ch) in row.chars().enumerate() {
                if ch != '.' && ch != ' ' {
                    bm.set(x as i32, y as i32, true);
                }
            }
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_bitmap_is_blank() {
        let bm = Bitmap::new(100, 50);
        assert!(bm.is_blank());
        assert_eq!(bm.count_ink(), 0);
        assert_eq!(bm.size(), Size::new(100, 50));
    }

    #[test]
    fn set_get_round_trip() {
        let mut bm = Bitmap::new(130, 4); // spans multiple words per row
        bm.set(0, 0, true);
        bm.set(63, 1, true);
        bm.set(64, 1, true);
        bm.set(129, 3, true);
        assert!(bm.get(0, 0));
        assert!(bm.get(63, 1));
        assert!(bm.get(64, 1));
        assert!(bm.get(129, 3));
        assert!(!bm.get(1, 0));
        assert_eq!(bm.count_ink(), 4);
        bm.set(63, 1, false);
        assert!(!bm.get(63, 1));
        assert_eq!(bm.count_ink(), 3);
    }

    #[test]
    fn out_of_bounds_access_is_safe() {
        let mut bm = Bitmap::new(10, 10);
        bm.set(-1, 5, true);
        bm.set(5, -1, true);
        bm.set(10, 5, true);
        bm.set(5, 10, true);
        assert!(bm.is_blank());
        assert!(!bm.get(-1, -1));
        assert!(!bm.get(100, 100));
    }

    #[test]
    fn fill_rect_clips() {
        let mut bm = Bitmap::new(10, 10);
        bm.fill_rect(Rect::new(5, 5, 100, 100), true);
        assert_eq!(bm.count_ink(), 25);
        bm.fill_rect(Rect::new(-100, -100, 10, 10), true);
        assert_eq!(bm.count_ink(), 25); // fully off-screen
        bm.fill_rect(Rect::new(0, 0, 10, 10), false);
        assert!(bm.is_blank());
    }

    #[test]
    fn extract_matches_source() {
        let mut bm = Bitmap::new(20, 20);
        bm.fill_rect(Rect::new(4, 4, 6, 6), true);
        let ex = bm.extract(Rect::new(2, 2, 10, 10)).unwrap();
        assert_eq!(ex.size(), Size::new(10, 10));
        assert_eq!(ex.count_ink(), 36);
        assert!(ex.get(2, 2));
        assert!(!ex.get(0, 0));
    }

    #[test]
    fn extract_out_of_bounds_is_error() {
        let bm = Bitmap::new(20, 20);
        assert!(bm.extract(Rect::new(15, 15, 10, 10)).is_err());
        assert!(bm.extract(Rect::new(-1, 0, 5, 5)).is_err());
        assert!(bm.extract(Rect::new(0, 0, 20, 20)).is_ok());
    }

    #[test]
    fn blit_replace_copies_background_too() {
        let mut dst = Bitmap::new(8, 8);
        dst.fill_rect(Rect::new(0, 0, 8, 8), true);
        let src = Bitmap::new(4, 4); // blank
        dst.blit(&src, Point::new(2, 2), BlitMode::Replace);
        assert_eq!(dst.count_ink(), 64 - 16);
        assert!(!dst.get(3, 3));
        assert!(dst.get(0, 0));
    }

    #[test]
    fn blit_or_accumulates_ink() {
        let mut dst = Bitmap::new(8, 8);
        dst.set(0, 0, true);
        let mut src = Bitmap::new(8, 8);
        src.set(1, 1, true);
        dst.blit(&src, Point::ORIGIN, BlitMode::Or);
        assert!(dst.get(0, 0), "OR must not erase existing ink");
        assert!(dst.get(1, 1));
    }

    #[test]
    fn blit_clear_and_xor() {
        let mut dst = Bitmap::new(4, 4);
        dst.fill_rect(Rect::new(0, 0, 4, 4), true);
        let mut src = Bitmap::new(4, 4);
        src.set(1, 1, true);
        src.set(2, 2, true);
        dst.blit(&src, Point::ORIGIN, BlitMode::Clear);
        assert!(!dst.get(1, 1));
        assert!(dst.get(0, 0));
        dst.blit(&src, Point::ORIGIN, BlitMode::Xor);
        assert!(dst.get(1, 1)); // was cleared, xor sets
        assert!(dst.get(0, 0)); // untouched by xor (src blank there)
    }

    #[test]
    fn blit_clips_at_edges() {
        let mut dst = Bitmap::new(4, 4);
        let mut src = Bitmap::new(4, 4);
        src.fill_rect(Rect::new(0, 0, 4, 4), true);
        dst.blit(&src, Point::new(2, 2), BlitMode::Or);
        assert_eq!(dst.count_ink(), 4);
        dst.blit(&src, Point::new(-2, -2), BlitMode::Or);
        // Adds the (0..2)x(0..2) block, disjoint from the first blit.
        assert_eq!(dst.count_ink(), 8);
    }

    #[test]
    fn masked_blit_replaces_only_under_mask() {
        // Destination all ink; source blank; mask marks a 2x2 block: those
        // pixels become blank (the "blank spots" of Figures 9-10).
        let mut dst = Bitmap::new(4, 4);
        dst.fill_rect(Rect::new(0, 0, 4, 4), true);
        let src = Bitmap::new(4, 4);
        let mut mask = Bitmap::new(4, 4);
        mask.fill_rect(Rect::new(1, 1, 2, 2), true);
        dst.blit_masked(&src, &mask, Point::ORIGIN);
        assert!(!dst.get(1, 1));
        assert!(!dst.get(2, 2));
        assert!(dst.get(0, 0), "unmasked pixels left intact");
        assert_eq!(dst.count_ink(), 12);
    }

    #[test]
    fn ascii_round_trip() {
        let rows = ["#..#", ".##.", "#..#"];
        let bm = Bitmap::from_ascii(&rows);
        assert_eq!(bm.to_ascii(), vec!["#..#", ".##.", "#..#"]);
        assert_eq!(bm.count_ink(), 6);
    }

    #[test]
    fn byte_size_accounts_packing() {
        assert_eq!(Bitmap::new(64, 10).byte_size(), 80);
        assert_eq!(Bitmap::new(65, 10).byte_size(), 160);
        assert_eq!(Bitmap::new(1, 1).byte_size(), 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn blit_or_is_idempotent(
            pts in proptest::collection::vec((0i32..16, 0i32..16), 0..32)
        ) {
            let mut src = Bitmap::new(16, 16);
            for (x, y) in &pts {
                src.set(*x, *y, true);
            }
            let mut once = Bitmap::new(16, 16);
            once.blit(&src, Point::ORIGIN, BlitMode::Or);
            let mut twice = once.clone();
            twice.blit(&src, Point::ORIGIN, BlitMode::Or);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn xor_twice_is_identity(
            base_pts in proptest::collection::vec((0i32..16, 0i32..16), 0..32),
            src_pts in proptest::collection::vec((0i32..16, 0i32..16), 0..32),
        ) {
            let mut dst = Bitmap::new(16, 16);
            for (x, y) in &base_pts { dst.set(*x, *y, true); }
            let orig = dst.clone();
            let mut src = Bitmap::new(16, 16);
            for (x, y) in &src_pts { src.set(*x, *y, true); }
            dst.blit(&src, Point::ORIGIN, BlitMode::Xor);
            dst.blit(&src, Point::ORIGIN, BlitMode::Xor);
            prop_assert_eq!(dst, orig);
        }

        #[test]
        fn extract_then_blit_replace_round_trips(
            pts in proptest::collection::vec((0i32..12, 0i32..12), 0..40)
        ) {
            let mut bm = Bitmap::new(12, 12);
            for (x, y) in &pts { bm.set(*x, *y, true); }
            let rect = Rect::new(2, 3, 8, 7);
            let ex = bm.extract(rect).unwrap();
            let mut back = bm.clone();
            back.fill_rect(rect, false);
            back.blit(&ex, rect.origin, BlitMode::Or);
            prop_assert_eq!(back, bm);
        }
    }
}
