//! Views: rectangular windows over large images.
//!
//! "A view is a rectangle overlaid on an image. The portion of the image
//! which is enclosed by the rectangle is presented into the display … The
//! view can be moved at the top of the image using menu options and the
//! mouse. … Non-contiguous moves (jumps) of the view can also be specified
//! … The dimensions of the view can be shrunk or expanded by small
//! quantities at a time." (§2)
//!
//! A [`View`] is pure geometry plus the bookkeeping experiment E5 needs:
//! every retrieval through the view reports how many bytes of image data it
//! required, which is what the paper's retrieval argument is about.

use crate::bitmap::Bitmap;
use minos_types::{MinosError, Point, Rect, Result, Size};

/// Directions a view can be moved by menu option.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MoveDirection {
    /// Toward smaller x.
    Left,
    /// Toward larger x.
    Right,
    /// Toward smaller y.
    Up,
    /// Toward larger y.
    Down,
}

/// A view over an image of a known size.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct View {
    rect: Rect,
    image_size: Size,
    /// Pixels moved per menu-option step.
    step: u32,
}

impl View {
    /// Creates a view of `view_size` at the image's top-left corner.
    /// Errors if the image is empty.
    pub fn new(image_size: Size, view_size: Size, step: u32) -> Result<Self> {
        if image_size.is_empty() {
            return Err(MinosError::Geometry("view over empty image".into()));
        }
        let rect = Rect::of_size(view_size).clamp_within(Rect::of_size(image_size));
        Ok(View { rect, image_size, step: step.max(1) })
    }

    /// The current window rectangle (always within the image).
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// The underlying image extent.
    pub fn image_size(&self) -> Size {
        self.image_size
    }

    /// Moves one step in `direction`, clamped at the image edge. Returns
    /// whether the view actually moved.
    pub fn step(&mut self, direction: MoveDirection) -> bool {
        let s = self.step as i32;
        let (dx, dy) = match direction {
            MoveDirection::Left => (-s, 0),
            MoveDirection::Right => (s, 0),
            MoveDirection::Up => (0, -s),
            MoveDirection::Down => (0, s),
        };
        let moved = self.rect.translate(dx, dy).clamp_within(Rect::of_size(self.image_size));
        let changed = moved != self.rect;
        self.rect = moved;
        changed
    }

    /// Non-contiguous move: centres the view on `target` (clamped).
    pub fn jump_to(&mut self, target: Point) {
        let half_w = (self.rect.size.width / 2) as i32;
        let half_h = (self.rect.size.height / 2) as i32;
        self.rect = self
            .rect
            .at(Point::new(target.x - half_w, target.y - half_h))
            .clamp_within(Rect::of_size(self.image_size));
    }

    /// Expands both dimensions by `amount` pixels ("expanded by small
    /// quantities at a time"), clamped to the image.
    pub fn expand(&mut self, amount: u32) {
        let new = Rect::new(
            self.rect.left() - (amount / 2) as i32,
            self.rect.top() - (amount / 2) as i32,
            self.rect.size.width + amount,
            self.rect.size.height + amount,
        );
        self.rect = new.clamp_within(Rect::of_size(self.image_size));
    }

    /// Shrinks both dimensions by `amount` pixels, never below 1×1.
    pub fn shrink(&mut self, amount: u32) {
        let w = self.rect.size.width.saturating_sub(amount).max(1);
        let h = self.rect.size.height.saturating_sub(amount).max(1);
        let new = Rect::new(
            self.rect.left() + ((self.rect.size.width - w) / 2) as i32,
            self.rect.top() + ((self.rect.size.height - h) / 2) as i32,
            w,
            h,
        );
        self.rect = new.clamp_within(Rect::of_size(self.image_size));
    }

    /// Retrieves the window's pixels from the full raster, returning the
    /// extracted data and the number of image bytes the retrieval required
    /// (the E5 metric). Only the view's bytes are touched — "the system has
    /// to transfer only the data of the view in main memory and not the
    /// whole image" (§2).
    pub fn retrieve(&self, full: &Bitmap) -> Result<(Bitmap, u64)> {
        if full.size() != self.image_size {
            return Err(MinosError::Geometry(format!(
                "view image size {:?} does not match raster {:?}",
                self.image_size,
                full.size()
            )));
        }
        let window = full.extract(self.rect)?;
        let bytes = window.byte_size();
        Ok((window, bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> View {
        View::new(Size::new(1000, 800), Size::new(200, 100), 50).unwrap()
    }

    #[test]
    fn new_view_starts_at_origin() {
        let v = view();
        assert_eq!(v.rect(), Rect::new(0, 0, 200, 100));
    }

    #[test]
    fn oversized_view_is_clamped_to_image() {
        let v = View::new(Size::new(100, 100), Size::new(500, 500), 10).unwrap();
        assert_eq!(v.rect(), Rect::new(0, 0, 100, 100));
    }

    #[test]
    fn empty_image_is_an_error() {
        assert!(View::new(Size::new(0, 100), Size::new(10, 10), 1).is_err());
    }

    #[test]
    fn step_moves_and_clamps() {
        let mut v = view();
        assert!(v.step(MoveDirection::Right));
        assert_eq!(v.rect().origin, Point::new(50, 0));
        assert!(!v.step(MoveDirection::Up), "already at top edge");
        for _ in 0..100 {
            v.step(MoveDirection::Right);
        }
        assert_eq!(v.rect().right(), 1000);
        assert!(!v.step(MoveDirection::Right));
    }

    #[test]
    fn jump_centres_on_target() {
        let mut v = view();
        v.jump_to(Point::new(500, 400));
        assert_eq!(v.rect().center(), Point::new(500, 400));
        // Jump near a corner clamps.
        v.jump_to(Point::new(0, 0));
        assert_eq!(v.rect().origin, Point::new(0, 0));
        v.jump_to(Point::new(2000, 2000));
        assert_eq!(v.rect().right(), 1000);
        assert_eq!(v.rect().bottom(), 800);
    }

    #[test]
    fn expand_and_shrink() {
        let mut v = view();
        v.jump_to(Point::new(500, 400));
        let before = v.rect().size;
        v.expand(20);
        assert_eq!(v.rect().size, Size::new(before.width + 20, before.height + 20));
        v.shrink(20);
        assert_eq!(v.rect().size, before);
        // Shrink below 1 clamps.
        v.shrink(10_000);
        assert_eq!(v.rect().size, Size::new(1, 1));
        // Expand past the image clamps to image size.
        v.expand(10_000);
        assert_eq!(v.rect().size, Size::new(1000, 800));
    }

    #[test]
    fn retrieve_returns_window_bytes_only() {
        let mut full = Bitmap::new(1000, 800);
        full.set(60, 10, true);
        let mut v = view();
        let (window, bytes) = v.retrieve(&full).unwrap();
        assert_eq!(window.size(), Size::new(200, 100));
        assert!(window.get(60, 10));
        assert_eq!(bytes, window.byte_size());
        assert!(bytes * 4 < full.byte_size(), "view should cost far less than the image");
        v.step(MoveDirection::Down);
        let (window2, _) = v.retrieve(&full).unwrap();
        assert!(!window2.get(60, 10), "moved view no longer covers the pixel");
    }

    #[test]
    fn retrieve_checks_image_size() {
        let v = view();
        let wrong = Bitmap::new(10, 10);
        assert!(v.retrieve(&wrong).is_err());
    }

    #[test]
    fn view_rect_always_inside_image() {
        let mut v = view();
        let bounds = Rect::of_size(v.image_size());
        for i in 0..200 {
            match i % 7 {
                0 => {
                    v.step(MoveDirection::Right);
                }
                1 => {
                    v.step(MoveDirection::Down);
                }
                2 => v.jump_to(Point::new(i * 13 % 1100, i * 7 % 900)),
                3 => v.expand(30),
                4 => v.shrink(45),
                5 => {
                    v.step(MoveDirection::Left);
                }
                _ => {
                    v.step(MoveDirection::Up);
                }
            }
            assert!(bounds.contains_rect(v.rect()), "escaped at step {i}: {:?}", v.rect());
            assert!(!v.rect().is_empty());
        }
    }
}
