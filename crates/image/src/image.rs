//! The image type: bitmap or graphics.

use crate::bitmap::Bitmap;
use crate::graphics::GraphicsImage;
use crate::raster::render_graphics;
use minos_types::Size;

/// An image part of a multimedia object (§2: "Images in MINOS may be
/// bitmaps or graphics").
#[derive(Clone, PartialEq, Debug)]
pub enum Image {
    /// A captured raster (e.g. a scanned page or an x-ray).
    Bitmap(Bitmap),
    /// A structured drawing whose archival form is symbolic.
    Graphics(GraphicsImage),
}

impl Image {
    /// Pixel extent.
    pub fn size(&self) -> Size {
        match self {
            Image::Bitmap(b) => b.size(),
            Image::Graphics(g) => Size::new(g.width, g.height),
        }
    }

    /// Renders to a raster for display. Bitmaps are returned as-is
    /// (cloned); graphics are rasterized.
    pub fn render(&self) -> Bitmap {
        match self {
            Image::Bitmap(b) => b.clone(),
            Image::Graphics(g) => render_graphics(g),
        }
    }

    /// Approximate stored size in bytes: raster bytes for bitmaps, a
    /// symbolic estimate for graphics (vertices are compact — the reason
    /// graphics archival forms are small).
    pub fn byte_size(&self) -> u64 {
        match self {
            Image::Bitmap(b) => b.byte_size(),
            Image::Graphics(g) => {
                let mut bytes = 8u64;
                for o in &g.objects {
                    bytes += 16; // shape header
                    bytes += match &o.shape {
                        crate::graphics::Shape::Point(_) => 8,
                        crate::graphics::Shape::Polyline(p) => 8 * p.len() as u64,
                        crate::graphics::Shape::Polygon { vertices, .. } => {
                            8 * vertices.len() as u64
                        }
                        crate::graphics::Shape::Circle { .. } => 12,
                    };
                    if let Some(l) = &o.label {
                        bytes += 16 + l.content.searchable_text().len() as u64;
                    }
                }
                bytes
            }
        }
    }

    /// The graphics structure, if this is a graphics image (labels and
    /// object hit-testing only exist for graphics).
    pub fn as_graphics(&self) -> Option<&GraphicsImage> {
        match self {
            Image::Graphics(g) => Some(g),
            Image::Bitmap(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphics::{GraphicsObject, Shape};
    use minos_types::Point;

    #[test]
    fn bitmap_image_round_trip() {
        let mut bm = Bitmap::new(10, 8);
        bm.set(3, 3, true);
        let img = Image::Bitmap(bm.clone());
        assert_eq!(img.size(), Size::new(10, 8));
        assert_eq!(img.render(), bm);
        assert_eq!(img.byte_size(), bm.byte_size());
        assert!(img.as_graphics().is_none());
    }

    #[test]
    fn graphics_image_renders() {
        let mut g = GraphicsImage::new(20, 20);
        g.push(GraphicsObject::new(Shape::Circle {
            center: Point::new(10, 10),
            radius: 5,
            filled: false,
        }));
        let img = Image::Graphics(g);
        let bm = img.render();
        assert!(bm.get(15, 10));
        assert!(img.as_graphics().is_some());
    }

    #[test]
    fn graphics_are_much_smaller_than_their_raster() {
        let mut g = GraphicsImage::new(1000, 1000);
        g.push(GraphicsObject::new(Shape::Circle {
            center: Point::new(500, 500),
            radius: 400,
            filled: false,
        }));
        let img = Image::Graphics(g);
        let raster_bytes = img.render().byte_size();
        assert!(img.byte_size() * 100 < raster_bytes);
    }
}
