//! Image substrate for the MINOS reproduction.
//!
//! "Images in MINOS may be bitmaps or graphics. Images with graphics
//! contain graphics objects such as points, polygons, polylines, circles,
//! etc. Graphics objects may have a label associated with them." (§2)
//!
//! The target display is a 1-bit workstation bitmap (SUN-3 class), so the
//! whole substrate works in monochrome:
//!
//! * [`bitmap`] — bit-packed rasters with replace/or/masked blitting;
//! * [`graphics`] — graphics objects and their labels (text, voice,
//!   invisible);
//! * [`raster`] — Bresenham/midpoint/scanline rasterization of graphics
//!   into bitmaps;
//! * [`image`] — the bitmap-or-graphics image type;
//! * [`miniature`] — representation images ("miniatures"), downsampled
//!   stand-ins that are "easily transferable to main memory" (§2);
//! * [`view`] — rectangular views over large images, with menu-style
//!   moves, jumps and resizes;
//! * [`tour`] — designer-defined view sequences played automatically;
//! * [`transparency`] — transparencies and transparency sets with the two
//!   display methods of §2;
//! * [`overwrite`] — masked-replace overwrite pages (Figures 9–10);
//! * [`labels`] — pattern→object highlighting and object→label lookup.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitmap;
pub mod graphics;
pub mod image;
pub mod labels;
pub mod miniature;
pub mod overwrite;
pub mod raster;
pub mod tour;
pub mod transparency;
pub mod view;

pub use bitmap::{Bitmap, BlitMode};
pub use graphics::{GraphicsImage, GraphicsObject, Label, LabelContent, Shape};
pub use image::Image;
pub use labels::LabelIndex;
pub use miniature::Miniature;
pub use overwrite::Overwrite;
pub use tour::{Tour, TourPlayer, TourStop};
pub use transparency::{TransparencyDisplay, TransparencySet};
pub use view::View;
