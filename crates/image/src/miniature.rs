//! Representation images (miniatures).
//!
//! "A representation of the image is an image itself, where only a high
//! level representation of the content of the image are presented in
//! positions which correspond to the actual positions of the objects of
//! the image (a miniature). The representation of the image is much smaller
//! than the image itself, and thus it is easily transferable to main memory
//! and projected on the display." (§2)
//!
//! A [`Miniature`] carries the downsampled raster plus the scale factor,
//! and converts geometry both ways so a view defined on the representation
//! maps onto the full image.

use crate::bitmap::Bitmap;
use minos_types::{Point, Rect, Size};

/// A downsampled representation of a full image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Miniature {
    raster: Bitmap,
    full_size: Size,
    /// Downsampling factor: one miniature pixel covers `factor × factor`
    /// full-image pixels.
    factor: u32,
}

impl Miniature {
    /// Builds a miniature by OR-downsampling: a miniature pixel is ink if
    /// any covered full pixel is ink, which keeps thin strokes (subway
    /// lines, polygon outlines) visible at small scale.
    pub fn build(full: &Bitmap, factor: u32) -> Self {
        assert!(factor > 0, "factor must be positive");
        let w = full.width().div_ceil(factor);
        let h = full.height().div_ceil(factor);
        let mut raster = Bitmap::new(w, h);
        for y in 0..h as i32 {
            for x in 0..w as i32 {
                'block: for by in 0..factor as i32 {
                    for bx in 0..factor as i32 {
                        if full.get(x * factor as i32 + bx, y * factor as i32 + by) {
                            raster.set(x, y, true);
                            break 'block;
                        }
                    }
                }
            }
        }
        Miniature { raster, full_size: full.size(), factor }
    }

    /// The miniature raster.
    pub fn raster(&self) -> &Bitmap {
        &self.raster
    }

    /// The full image's extent.
    pub fn full_size(&self) -> Size {
        self.full_size
    }

    /// The downsampling factor.
    pub fn factor(&self) -> u32 {
        self.factor
    }

    /// Transfer cost of the miniature in bytes.
    pub fn byte_size(&self) -> u64 {
        self.raster.byte_size()
    }

    /// Maps a point on the miniature to the corresponding full-image point
    /// (centre of the covered block).
    pub fn to_full(&self, p: Point) -> Point {
        let f = self.factor as i32;
        Point::new(p.x * f + f / 2, p.y * f + f / 2)
    }

    /// Maps a full-image point onto the miniature.
    pub fn to_miniature(&self, p: Point) -> Point {
        let f = self.factor as i32;
        Point::new(p.x.div_euclid(f), p.y.div_euclid(f))
    }

    /// Maps a rectangle drawn on the miniature (e.g. a view defined "on the
    /// top of a representation of the image", §2) to full-image
    /// coordinates, clamped inside the full image.
    pub fn rect_to_full(&self, r: Rect) -> Rect {
        let f = self.factor;
        let full = Rect::new(
            r.origin.x * f as i32,
            r.origin.y * f as i32,
            r.size.width * f,
            r.size.height * f,
        );
        full.clamp_within(Rect::of_size(self.full_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn striped(width: u32, height: u32) -> Bitmap {
        let mut bm = Bitmap::new(width, height);
        for y in (0..height as i32).step_by(8) {
            for x in 0..width as i32 {
                bm.set(x, y, true);
            }
        }
        bm
    }

    #[test]
    fn miniature_is_smaller() {
        let full = striped(640, 480);
        let mini = Miniature::build(&full, 8);
        assert_eq!(mini.raster().size(), Size::new(80, 60));
        assert!(mini.byte_size() * 32 <= full.byte_size());
    }

    #[test]
    fn or_downsampling_keeps_thin_strokes() {
        let mut full = Bitmap::new(64, 64);
        for x in 0..64 {
            full.set(x, 17, true); // one-pixel horizontal stroke
        }
        let mini = Miniature::build(&full, 8);
        // The stroke survives in miniature row 2.
        assert!((0..8).all(|x| mini.raster().get(x, 2)));
    }

    #[test]
    fn blank_image_gives_blank_miniature() {
        let mini = Miniature::build(&Bitmap::new(100, 100), 10);
        assert!(mini.raster().is_blank());
    }

    #[test]
    fn point_mapping_round_trips_within_a_block() {
        let full = striped(320, 240);
        let mini = Miniature::build(&full, 8);
        let p = Point::new(13, 9);
        let fp = mini.to_full(p);
        assert_eq!(mini.to_miniature(fp), p);
    }

    #[test]
    fn rect_to_full_scales_and_clamps() {
        let full = striped(320, 240);
        let mini = Miniature::build(&full, 8);
        let r = mini.rect_to_full(Rect::new(2, 3, 10, 5));
        assert_eq!(r, Rect::new(16, 24, 80, 40));
        // A rect running off the miniature edge clamps inside the full image.
        let r = mini.rect_to_full(Rect::new(38, 28, 10, 10));
        assert!(Rect::of_size(Size::new(320, 240)).contains_rect(r));
        assert_eq!(r.size, Size::new(80, 80));
    }

    #[test]
    fn uneven_dimensions_round_up() {
        let full = Bitmap::new(65, 33);
        let mini = Miniature::build(&full, 8);
        assert_eq!(mini.raster().size(), Size::new(9, 5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_rejected() {
        let _ = Miniature::build(&Bitmap::new(10, 10), 0);
    }
}
