//! Tours: designer-defined view sequences.
//!
//! "A tour is a sequence of views defined on an image by the multimedia
//! object designer. The sequence is played automatically (the user does not
//! need to press the next page button). A tour is defined by a rectangle
//! and a sequence of points indicating the position of the rectangle on the
//! large image or on a representation of it. A logical message (visual or
//! audio) may be associated with each position of the tour. The user may
//! interrupt the tour and move the window all round in order to navigate
//! through other positions of the image." (§2)
//!
//! The tour definition lives here; logical-message payloads are carried as
//! opaque indices resolved by the object layer, and the actual playing is a
//! small state machine ([`TourPlayer`]) the presentation manager drives.

use crate::view::View;
use minos_types::{MinosError, Point, Rect, Result, SimDuration, Size};

/// One stop of a tour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TourStop {
    /// Where the view's top-left corner sits at this stop.
    pub position: Point,
    /// Index of the logical message attached to this stop, if any
    /// (resolved against the owning object's message table).
    pub message: Option<usize>,
    /// How long the stop is held before the tour advances (dwell).
    pub dwell: SimDuration,
}

/// A tour definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tour {
    window: Size,
    image_size: Size,
    stops: Vec<TourStop>,
}

impl Tour {
    /// Creates a tour of `window`-sized views over an image of
    /// `image_size`, visiting `stops` in order. Errors on an empty window
    /// or no stops.
    pub fn new(image_size: Size, window: Size, stops: Vec<TourStop>) -> Result<Self> {
        if window.is_empty() {
            return Err(MinosError::Geometry("tour window must be non-empty".into()));
        }
        if stops.is_empty() {
            return Err(MinosError::Geometry("tour needs at least one stop".into()));
        }
        Ok(Tour { window, image_size, stops })
    }

    /// The view rectangle size.
    pub fn window(&self) -> Size {
        self.window
    }

    /// The toured image's extent.
    pub fn image_size(&self) -> Size {
        self.image_size
    }

    /// The stops.
    pub fn stops(&self) -> &[TourStop] {
        &self.stops
    }

    /// The view rectangle at stop `i` (clamped within the image).
    pub fn view_at(&self, i: usize) -> Option<Rect> {
        self.stops.get(i).map(|s| {
            Rect { origin: s.position, size: self.window }
                .clamp_within(Rect::of_size(self.image_size))
        })
    }
}

/// Playing state of a tour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TourState {
    /// Advancing automatically through the stops.
    Playing,
    /// Interrupted by the user; the view is free-moving.
    Interrupted,
    /// All stops visited.
    Finished,
}

/// Drives a [`Tour`] against simulated time.
#[derive(Clone, Debug)]
pub struct TourPlayer {
    tour: Tour,
    current: usize,
    state: TourState,
    /// Time left at the current stop.
    remaining: SimDuration,
    /// The free-moving view used while interrupted.
    free_view: View,
}

impl TourPlayer {
    /// Starts a player at the first stop.
    pub fn new(tour: Tour) -> Result<Self> {
        let first_dwell = tour.stops[0].dwell;
        let rect = tour.view_at(0).expect("tour has stops");
        let mut free_view = View::new(tour.image_size(), tour.window(), 32)?;
        free_view.jump_to(rect.center());
        Ok(TourPlayer {
            tour,
            current: 0,
            state: TourState::Playing,
            remaining: first_dwell,
            free_view,
        })
    }

    /// The tour being played.
    pub fn tour(&self) -> &Tour {
        &self.tour
    }

    /// Current stop index.
    pub fn current_stop(&self) -> usize {
        self.current
    }

    /// Current state.
    pub fn state(&self) -> TourState {
        self.state
    }

    /// The rectangle currently presented: the stop's view while playing,
    /// or the free view while interrupted.
    pub fn current_rect(&self) -> Rect {
        match self.state {
            TourState::Interrupted => self.free_view.rect(),
            _ => self.tour.view_at(self.current).expect("stop in range"),
        }
    }

    /// The message attached to the current stop, if any.
    pub fn current_message(&self) -> Option<usize> {
        self.tour.stops[self.current].message
    }

    /// Advances simulated time. Returns the indices of stops *entered*
    /// during this tick (so the caller can trigger their messages). The
    /// tour finishes after the last stop's dwell elapses.
    pub fn tick(&mut self, mut dt: SimDuration) -> Vec<usize> {
        let mut entered = Vec::new();
        if self.state != TourState::Playing {
            return entered;
        }
        while dt >= self.remaining {
            dt = dt - self.remaining;
            if self.current + 1 >= self.tour.stops.len() {
                self.remaining = SimDuration::ZERO;
                self.state = TourState::Finished;
                return entered;
            }
            self.current += 1;
            self.remaining = self.tour.stops[self.current].dwell;
            entered.push(self.current);
        }
        self.remaining = self.remaining - dt;
        entered
    }

    /// Interrupts the tour; the user may then "move the window all round".
    /// The free view starts where the tour was.
    pub fn interrupt(&mut self) {
        if self.state == TourState::Playing {
            let rect = self.current_rect();
            self.free_view.jump_to(rect.center());
            self.state = TourState::Interrupted;
        }
    }

    /// Mutable access to the free-moving view (valid while interrupted).
    pub fn free_view_mut(&mut self) -> Option<&mut View> {
        (self.state == TourState::Interrupted).then_some(&mut self.free_view)
    }

    /// Resumes the automatic sequence from the current stop.
    pub fn resume(&mut self) {
        if self.state == TourState::Interrupted {
            self.state = TourState::Playing;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::MoveDirection;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn tour() -> Tour {
        let stops = vec![
            TourStop { position: Point::new(0, 0), message: Some(0), dwell: secs(2) },
            TourStop { position: Point::new(100, 50), message: None, dwell: secs(3) },
            TourStop { position: Point::new(300, 200), message: Some(1), dwell: secs(2) },
        ];
        Tour::new(Size::new(500, 400), Size::new(100, 80), stops).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Tour::new(Size::new(10, 10), Size::new(0, 5), vec![]).is_err());
        assert!(Tour::new(Size::new(10, 10), Size::new(5, 5), vec![]).is_err());
    }

    #[test]
    fn view_at_clamps_inside_image() {
        let t = tour();
        assert_eq!(t.view_at(0), Some(Rect::new(0, 0, 100, 80)));
        // Stop 2 at (300,200): right edge 400 <= 500, fits.
        assert_eq!(t.view_at(2), Some(Rect::new(300, 200, 100, 80)));
        assert_eq!(t.view_at(3), None);
        let edge = Tour::new(
            Size::new(500, 400),
            Size::new(100, 80),
            vec![TourStop { position: Point::new(480, 390), message: None, dwell: secs(1) }],
        )
        .unwrap();
        let r = edge.view_at(0).unwrap();
        assert!(Rect::new(0, 0, 500, 400).contains_rect(r));
    }

    #[test]
    fn player_advances_automatically() {
        let mut p = TourPlayer::new(tour()).unwrap();
        assert_eq!(p.current_stop(), 0);
        assert_eq!(p.current_message(), Some(0));
        let entered = p.tick(secs(2)); // exactly stop 0's dwell
        assert_eq!(entered, vec![1]);
        assert_eq!(p.current_stop(), 1);
        let entered = p.tick(secs(5)); // 3s at stop 1, then into stop 2
        assert_eq!(entered, vec![2]);
        assert_eq!(p.state(), TourState::Finished);
    }

    #[test]
    fn one_big_tick_visits_every_stop() {
        let mut p = TourPlayer::new(tour()).unwrap();
        let entered = p.tick(secs(100));
        assert_eq!(entered, vec![1, 2]);
        assert_eq!(p.state(), TourState::Finished);
        assert!(p.tick(secs(1)).is_empty());
    }

    #[test]
    fn interrupt_freezes_and_frees_the_view() {
        let mut p = TourPlayer::new(tour()).unwrap();
        p.tick(secs(2)); // at stop 1
        p.interrupt();
        assert_eq!(p.state(), TourState::Interrupted);
        assert!(p.tick(secs(100)).is_empty(), "no auto-advance while interrupted");
        assert_eq!(p.current_stop(), 1);
        // User moves the window around.
        let before = p.current_rect();
        p.free_view_mut().unwrap().step(MoveDirection::Right);
        assert_ne!(p.current_rect(), before);
        // Resume returns to the stop sequence.
        p.resume();
        assert_eq!(p.state(), TourState::Playing);
        assert_eq!(p.current_rect(), Rect::new(100, 50, 100, 80));
    }

    #[test]
    fn free_view_unavailable_while_playing() {
        let mut p = TourPlayer::new(tour()).unwrap();
        assert!(p.free_view_mut().is_none());
    }

    #[test]
    fn partial_dwell_accumulates() {
        let mut p = TourPlayer::new(tour()).unwrap();
        assert!(p.tick(secs(1)).is_empty());
        assert_eq!(p.current_stop(), 0);
        assert_eq!(p.tick(secs(1)), vec![1]);
    }
}
