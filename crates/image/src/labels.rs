//! Label-based browsing over large images.
//!
//! "Labels may be used to identify the corresponding objects in an image.
//! The user can specify a pattern and request that the objects in which
//! this pattern appears within their label are highlighted. This facility
//! is useful for browsing through large images with many objects on them,
//! such as a road map. The inverse facility is also provided: the user can
//! select an object using the mouse and the system plays or displays the
//! label associated with the object." (§2)

use crate::bitmap::Bitmap;
use crate::graphics::{GraphicsImage, LabelContent};
use crate::raster::draw_polygon_outline;
use minos_types::{Point, Rect};

/// Query interface over a graphics image's labels.
#[derive(Clone, Debug)]
pub struct LabelIndex<'a> {
    image: &'a GraphicsImage,
}

/// The result of activating (mouse-selecting) an object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LabelActivation<'a> {
    /// The object has a text label: display it.
    DisplayText(&'a str),
    /// The object has a voice label: play the named voice data.
    PlayVoice {
        /// Voice data-file tag to play.
        tag: &'a str,
    },
    /// The object has no label.
    Unlabelled,
}

impl<'a> LabelIndex<'a> {
    /// Creates the index over an image.
    pub fn new(image: &'a GraphicsImage) -> Self {
        LabelIndex { image }
    }

    /// Objects whose label contains `pattern`, with the bounding boxes to
    /// highlight.
    pub fn highlight(&self, pattern: &str) -> Vec<(usize, Rect)> {
        self.image
            .objects_with_label_pattern(pattern)
            .into_iter()
            .filter_map(|i| self.image.objects[i].shape.bounding_box().map(|b| (i, b)))
            .collect()
    }

    /// Renders highlight boxes onto a copy of `rendered` (the displayed
    /// raster): each matching object gets its bounding box outlined,
    /// expanded by two pixels so it does not sit on the object's own ink.
    pub fn render_highlights(&self, rendered: &Bitmap, pattern: &str) -> Bitmap {
        let mut out = rendered.clone();
        for (_, bbox) in self.highlight(pattern) {
            let r = Rect::new(
                bbox.left() - 2,
                bbox.top() - 2,
                bbox.size.width + 4,
                bbox.size.height + 4,
            );
            let corners = [
                Point::new(r.left(), r.top()),
                Point::new(r.right() - 1, r.top()),
                Point::new(r.right() - 1, r.bottom() - 1),
                Point::new(r.left(), r.bottom() - 1),
            ];
            draw_polygon_outline(&mut out, &corners);
        }
        out
    }

    /// The inverse facility: select with the mouse, get the label back.
    /// Returns `None` when no object is under the pointer.
    pub fn activate(&self, at: Point) -> Option<LabelActivation<'a>> {
        let idx = self.image.object_at(at)?;
        Some(match &self.image.objects[idx].label {
            Some(label) => match &label.content {
                LabelContent::Text(t) => LabelActivation::DisplayText(t),
                LabelContent::Voice { tag, .. } => LabelActivation::PlayVoice { tag },
            },
            None => LabelActivation::Unlabelled,
        })
    }

    /// All voice-label tags whose object intersects `window`, in z-order —
    /// what the view plays "as the view moves" with the voice option on
    /// (§2).
    pub fn voice_labels_in(&self, window: Rect) -> Vec<&'a str> {
        self.image
            .objects
            .iter()
            .filter_map(|o| {
                let label = o.label.as_ref()?;
                let LabelContent::Voice { tag, .. } = &label.content else { return None };
                let bbox = o.shape.bounding_box()?;
                window.intersects(bbox).then_some(tag.as_str())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphics::{GraphicsObject, Label, Shape};
    use crate::raster::render_graphics;

    fn city_map() -> GraphicsImage {
        let mut img = GraphicsImage::new(200, 200);
        img.push(
            GraphicsObject::new(Shape::Circle {
                center: Point::new(40, 40),
                radius: 8,
                filled: true,
            })
            .with_label(Label {
                content: LabelContent::Text("General Hospital".into()),
                anchor: Point::new(52, 40),
                visible: true,
            }),
        );
        img.push(
            GraphicsObject::new(Shape::Circle {
                center: Point::new(150, 150),
                radius: 8,
                filled: true,
            })
            .with_label(Label {
                content: LabelContent::Voice {
                    tag: "campus-voice".into(),
                    transcript: "university campus".into(),
                },
                anchor: Point::new(162, 150),
                visible: true,
            }),
        );
        img.push(GraphicsObject::new(Shape::Point(Point::new(100, 100))));
        img
    }

    #[test]
    fn highlight_returns_bounding_boxes() {
        let img = city_map();
        let idx = LabelIndex::new(&img);
        let hits = idx.highlight("hospital");
        assert_eq!(hits.len(), 1);
        let (i, bbox) = hits[0];
        assert_eq!(i, 0);
        assert!(bbox.contains(Point::new(40, 40)));
    }

    #[test]
    fn render_highlights_draws_boxes_outside_objects() {
        let img = city_map();
        let idx = LabelIndex::new(&img);
        let base = render_graphics(&img);
        let hl = idx.render_highlights(&base, "hospital");
        assert!(hl.count_ink() > base.count_ink());
        // Box corner: bbox is (32,32)-(48,48), expanded -> (30,30).
        assert!(hl.get(30, 30));
        // No-match pattern renders identically.
        assert_eq!(idx.render_highlights(&base, "nomatch"), base);
    }

    #[test]
    fn activate_text_voice_and_unlabelled() {
        let img = city_map();
        let idx = LabelIndex::new(&img);
        assert_eq!(
            idx.activate(Point::new(40, 40)),
            Some(LabelActivation::DisplayText("General Hospital"))
        );
        assert_eq!(
            idx.activate(Point::new(150, 150)),
            Some(LabelActivation::PlayVoice { tag: "campus-voice" })
        );
        assert_eq!(idx.activate(Point::new(100, 100)), Some(LabelActivation::Unlabelled));
        assert_eq!(idx.activate(Point::new(5, 5)), None);
    }

    #[test]
    fn voice_labels_in_window() {
        let img = city_map();
        let idx = LabelIndex::new(&img);
        assert_eq!(idx.voice_labels_in(Rect::new(100, 100, 100, 100)), vec!["campus-voice"]);
        assert!(idx.voice_labels_in(Rect::new(0, 0, 60, 60)).is_empty());
        // Window covering everything finds the one voice label.
        assert_eq!(idx.voice_labels_in(Rect::new(0, 0, 200, 200)).len(), 1);
    }
}
