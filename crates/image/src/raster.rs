//! Rasterization of graphics objects into bitmaps.
//!
//! The archival form of an image "is device and software package
//! independent" (§4): graphics objects are stored symbolically and
//! rasterized at presentation time on the workstation. Lines use Bresenham,
//! circles the midpoint algorithm, filled polygons even-odd scanline fill.

use crate::bitmap::Bitmap;
use crate::graphics::{GraphicsImage, Shape};
use minos_types::Point;

/// Draws a line segment from `a` to `b` (inclusive) — Bresenham.
pub fn draw_line(bm: &mut Bitmap, a: Point, b: Point) {
    let (mut x0, mut y0, x1, y1) = (a.x, a.y, b.x, b.y);
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        bm.set(x0, y0, true);
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

/// Draws a polyline through `points`.
pub fn draw_polyline(bm: &mut Bitmap, points: &[Point]) {
    match points {
        [] => {}
        [p] => bm.set(p.x, p.y, true),
        _ => {
            for pair in points.windows(2) {
                draw_line(bm, pair[0], pair[1]);
            }
        }
    }
}

/// Draws a polygon outline (closing the ring).
pub fn draw_polygon_outline(bm: &mut Bitmap, vertices: &[Point]) {
    if vertices.len() < 2 {
        draw_polyline(bm, vertices);
        return;
    }
    draw_polyline(bm, vertices);
    draw_line(bm, *vertices.last().unwrap(), vertices[0]);
}

/// Fills a polygon interior with even-odd scanline fill, then outlines it
/// so thin polygons stay visible.
pub fn fill_polygon(bm: &mut Bitmap, vertices: &[Point]) {
    if vertices.len() < 3 {
        draw_polygon_outline(bm, vertices);
        return;
    }
    let min_y = vertices.iter().map(|p| p.y).min().unwrap();
    let max_y = vertices.iter().map(|p| p.y).max().unwrap();
    for y in min_y..=max_y {
        // Gather x-crossings of the scanline with each edge.
        let mut xs: Vec<i32> = Vec::new();
        let n = vertices.len();
        for i in 0..n {
            let (a, b) = (vertices[i], vertices[(i + 1) % n]);
            if (a.y > y) != (b.y > y) {
                let x = a.x as i64 + (y - a.y) as i64 * (b.x - a.x) as i64 / (b.y - a.y) as i64;
                xs.push(x as i32);
            }
        }
        xs.sort_unstable();
        for pair in xs.chunks_exact(2) {
            for x in pair[0]..=pair[1] {
                bm.set(x, y, true);
            }
        }
    }
    draw_polygon_outline(bm, vertices);
}

/// Draws a circle outline — midpoint algorithm.
pub fn draw_circle(bm: &mut Bitmap, center: Point, radius: u32) {
    if radius == 0 {
        bm.set(center.x, center.y, true);
        return;
    }
    let (cx, cy) = (center.x, center.y);
    let mut x = radius as i32;
    let mut y = 0i32;
    let mut err = 1 - x;
    while x >= y {
        for (px, py) in [
            (cx + x, cy + y),
            (cx + y, cy + x),
            (cx - y, cy + x),
            (cx - x, cy + y),
            (cx - x, cy - y),
            (cx - y, cy - x),
            (cx + y, cy - x),
            (cx + x, cy - y),
        ] {
            bm.set(px, py, true);
        }
        y += 1;
        if err < 0 {
            err += 2 * y + 1;
        } else {
            x -= 1;
            err += 2 * (y - x) + 1;
        }
    }
}

/// Fills a circle (disk).
pub fn fill_circle(bm: &mut Bitmap, center: Point, radius: u32) {
    let r = radius as i64;
    for dy in -(r as i32)..=(r as i32) {
        for dx in -(r as i32)..=(r as i32) {
            if (dx as i64) * (dx as i64) + (dy as i64) * (dy as i64) <= r * r {
                bm.set(center.x + dx, center.y + dy, true);
            }
        }
    }
}

/// Renders one shape onto `bm`.
pub fn render_shape(bm: &mut Bitmap, shape: &Shape) {
    match shape {
        Shape::Point(p) => bm.set(p.x, p.y, true),
        Shape::Polyline(pts) => draw_polyline(bm, pts),
        Shape::Polygon { vertices, filled } => {
            if *filled {
                fill_polygon(bm, vertices);
            } else {
                draw_polygon_outline(bm, vertices);
            }
        }
        Shape::Circle { center, radius, filled } => {
            if *filled {
                fill_circle(bm, *center, *radius);
            } else {
                draw_circle(bm, *center, *radius);
            }
        }
    }
}

/// Renders a whole graphics image to a fresh bitmap. Visible text labels
/// are indicated with a small marker at their anchor (glyph rendering
/// belongs to the screen substrate); voice labels get a distinct hollow
/// marker — the paper's "voice label indication … displayed near a graphics
/// object" (§2).
pub fn render_graphics(image: &GraphicsImage) -> Bitmap {
    let mut bm = Bitmap::new(image.width, image.height);
    for object in &image.objects {
        render_shape(&mut bm, &object.shape);
        if let Some(label) = &object.label {
            if label.visible {
                if label.content.is_voice() {
                    draw_circle(&mut bm, label.anchor, 2);
                } else {
                    bm.set(label.anchor.x, label.anchor.y, true);
                }
            }
        }
    }
    bm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphics::{GraphicsObject, Label, LabelContent};
    use proptest::prelude::*;

    #[test]
    fn line_endpoints_and_connectivity() {
        let mut bm = Bitmap::new(20, 20);
        draw_line(&mut bm, Point::new(2, 3), Point::new(15, 11));
        assert!(bm.get(2, 3));
        assert!(bm.get(15, 11));
        // A Bresenham line of major extent dx has dx+1 pixels.
        assert_eq!(bm.count_ink(), 14);
    }

    #[test]
    fn degenerate_line_is_a_point() {
        let mut bm = Bitmap::new(5, 5);
        draw_line(&mut bm, Point::new(2, 2), Point::new(2, 2));
        assert_eq!(bm.count_ink(), 1);
    }

    #[test]
    fn vertical_and_horizontal_lines() {
        let mut bm = Bitmap::new(10, 10);
        draw_line(&mut bm, Point::new(3, 0), Point::new(3, 9));
        assert_eq!(bm.count_ink(), 10);
        let mut bm = Bitmap::new(10, 10);
        draw_line(&mut bm, Point::new(9, 4), Point::new(0, 4));
        assert_eq!(bm.count_ink(), 10);
    }

    #[test]
    fn polyline_empty_and_single() {
        let mut bm = Bitmap::new(5, 5);
        draw_polyline(&mut bm, &[]);
        assert!(bm.is_blank());
        draw_polyline(&mut bm, &[Point::new(1, 1)]);
        assert_eq!(bm.count_ink(), 1);
    }

    #[test]
    fn polygon_outline_closes_the_ring() {
        let mut bm = Bitmap::new(10, 10);
        let tri = [Point::new(1, 1), Point::new(8, 1), Point::new(1, 8)];
        draw_polygon_outline(&mut bm, &tri);
        // Closing edge pixel present.
        assert!(bm.get(1, 8));
        assert!(bm.get(4, 5) || bm.get(5, 4), "hypotenuse missing");
    }

    #[test]
    fn filled_rectangle_has_full_area() {
        let mut bm = Bitmap::new(12, 12);
        let square = [Point::new(2, 2), Point::new(9, 2), Point::new(9, 9), Point::new(2, 9)];
        fill_polygon(&mut bm, &square);
        assert_eq!(bm.count_ink(), 64);
        assert!(bm.get(5, 5));
        assert!(!bm.get(1, 1));
    }

    #[test]
    fn filled_concave_polygon_excludes_notch() {
        let mut bm = Bitmap::new(20, 20);
        // L-shape; the notch (12..18)x(2..8) stays empty.
        let l = [
            Point::new(2, 2),
            Point::new(10, 2),
            Point::new(10, 10),
            Point::new(18, 10),
            Point::new(18, 18),
            Point::new(2, 18),
        ];
        fill_polygon(&mut bm, &l);
        assert!(bm.get(5, 5));
        assert!(bm.get(15, 15));
        assert!(!bm.get(15, 5));
    }

    #[test]
    fn circle_outline_radius_symmetry() {
        let mut bm = Bitmap::new(30, 30);
        draw_circle(&mut bm, Point::new(15, 15), 8);
        for (x, y) in [(23, 15), (7, 15), (15, 23), (15, 7)] {
            assert!(bm.get(x, y), "cardinal point ({x},{y}) missing");
        }
        assert!(!bm.get(15, 15), "centre should be hollow");
    }

    #[test]
    fn zero_radius_circle_is_a_dot() {
        let mut bm = Bitmap::new(5, 5);
        draw_circle(&mut bm, Point::new(2, 2), 0);
        assert_eq!(bm.count_ink(), 1);
    }

    #[test]
    fn filled_circle_area_approximates_pi_r_squared() {
        let mut bm = Bitmap::new(50, 50);
        fill_circle(&mut bm, Point::new(25, 25), 10);
        let area = bm.count_ink() as f64;
        let expected = std::f64::consts::PI * 100.0;
        assert!((area - expected).abs() / expected < 0.1, "area {area}");
    }

    #[test]
    fn render_graphics_draws_objects_and_label_markers() {
        let mut img = GraphicsImage::new(40, 40);
        img.push(GraphicsObject::new(Shape::Circle {
            center: Point::new(20, 20),
            radius: 10,
            filled: false,
        }));
        img.push(GraphicsObject::new(Shape::Point(Point::new(5, 5))).with_label(Label {
            content: LabelContent::Voice { tag: "v".into(), transcript: "site".into() },
            anchor: Point::new(35, 5),
            visible: true,
        }));
        img.push(GraphicsObject::new(Shape::Point(Point::new(6, 6))).with_label(Label {
            content: LabelContent::Text("hidden".into()),
            anchor: Point::new(35, 35),
            visible: false,
        }));
        let bm = render_graphics(&img);
        assert!(bm.get(30, 20)); // circle
        assert!(bm.get(5, 5)); // point
        assert!(bm.get(37, 5)); // voice label indicator ring
        assert!(!bm.get(35, 35), "invisible label must not render");
    }

    #[test]
    fn rasterization_clips_safely() {
        let mut bm = Bitmap::new(10, 10);
        draw_line(&mut bm, Point::new(-5, -5), Point::new(20, 20));
        assert!(bm.get(0, 0));
        assert!(bm.get(9, 9));
        fill_circle(&mut bm, Point::new(0, 0), 100);
        assert_eq!(bm.count_ink(), 100); // fully inked, no panic
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn line_is_symmetric(ax in 0i32..24, ay in 0i32..24, bx in 0i32..24, by in 0i32..24) {
            let mut fwd = Bitmap::new(24, 24);
            draw_line(&mut fwd, Point::new(ax, ay), Point::new(bx, by));
            let mut rev = Bitmap::new(24, 24);
            draw_line(&mut rev, Point::new(bx, by), Point::new(ax, ay));
            // Endpoints identical; pixel counts equal (paths may differ by
            // rounding but Bresenham as implemented is symmetric in count).
            prop_assert!(fwd.get(ax, ay) && fwd.get(bx, by));
            prop_assert!(rev.get(ax, ay) && rev.get(bx, by));
            prop_assert_eq!(fwd.count_ink(), rev.count_ink());
        }

        #[test]
        fn filled_polygon_contains_its_fill(
            vs in proptest::collection::vec((2i32..30, 2i32..30), 3..8)
        ) {
            let vertices: Vec<Point> = vs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let mut bm = Bitmap::new(32, 32);
            fill_polygon(&mut bm, &vertices);
            // Every vertex is inked (outline pass guarantees it).
            for v in &vertices {
                prop_assert!(bm.get(v.x, v.y));
            }
        }
    }
}
