//! Transparencies and transparency sets.
//!
//! "Transparencies are visual pages which allow the user to see the
//! previous visual page displayed on the screen of the workstation. A
//! transparency set is an ordered set of consecutive transparencies. The
//! multimedia object designer may specify one of two different ways for
//! displaying the transparencies of a set. The first method is by
//! displaying every transparency on the top of one another (and on the top
//! of the last page before the transparency set). The second method is by
//! displaying every transparency of the set separately, on the top of the
//! last page before the transparency set. The user may alter the
//! presentation order … and he may choose to see certain transparencies of
//! the set only projected at the same time." (§2)

use crate::bitmap::{Bitmap, BlitMode};
use minos_types::{MinosError, Point, Result};

/// The designer-specified display method for a set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransparencyDisplay {
    /// Each transparency stacks on everything before it (method one).
    Stacked,
    /// Each transparency is shown alone over the base page (method two).
    Separate,
}

/// An ordered set of transparencies over a base page.
#[derive(Clone, PartialEq, Debug)]
pub struct TransparencySet {
    sheets: Vec<Bitmap>,
    display: TransparencyDisplay,
}

impl TransparencySet {
    /// Creates a set; all sheets must share one size.
    pub fn new(sheets: Vec<Bitmap>, display: TransparencyDisplay) -> Result<Self> {
        if let Some(first) = sheets.first() {
            let size = first.size();
            if sheets.iter().any(|s| s.size() != size) {
                return Err(MinosError::Geometry(
                    "transparencies in a set must share one size".into(),
                ));
            }
        }
        Ok(TransparencySet { sheets, display })
    }

    /// Number of transparencies.
    pub fn len(&self) -> usize {
        self.sheets.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sheets.is_empty()
    }

    /// The designer's display method.
    pub fn display(&self) -> TransparencyDisplay {
        self.display
    }

    /// The individual sheets.
    pub fn sheets(&self) -> &[Bitmap] {
        &self.sheets
    }

    /// Renders the page shown after the user has turned to transparency
    /// `index` (0-based), starting from `base` (the last page before the
    /// set). Honors the designer's display method.
    pub fn page_at(&self, base: &Bitmap, index: usize) -> Result<Bitmap> {
        if index >= self.sheets.len() {
            return Err(MinosError::Geometry(format!(
                "transparency {index} of {}",
                self.sheets.len()
            )));
        }
        match self.display {
            TransparencyDisplay::Stacked => self.superimpose(base, &upto(index)),
            TransparencyDisplay::Separate => self.superimpose(base, &[index]),
        }
    }

    /// Renders the user-selected combination: "the ones that he wants to
    /// see superimposed" (§2). Indices may come in any order; each sheet is
    /// projected at most once.
    pub fn superimpose(&self, base: &Bitmap, indices: &[usize]) -> Result<Bitmap> {
        let mut page = base.clone();
        let mut shown = vec![false; self.sheets.len()];
        for &i in indices {
            let sheet = self.sheets.get(i).ok_or_else(|| {
                MinosError::Geometry(format!("transparency {i} of {}", self.sheets.len()))
            })?;
            if !shown[i] {
                shown[i] = true;
                page.blit(sheet, Point::ORIGIN, BlitMode::Or);
            }
        }
        Ok(page)
    }
}

fn upto(index: usize) -> Vec<usize> {
    (0..=index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_types::Rect;

    fn dot(x: i32, y: i32) -> Bitmap {
        let mut bm = Bitmap::new(16, 16);
        bm.set(x, y, true);
        bm
    }

    fn base() -> Bitmap {
        let mut bm = Bitmap::new(16, 16);
        bm.fill_rect(Rect::new(0, 0, 16, 1), true); // top stripe = x-ray stand-in
        bm
    }

    fn set(display: TransparencyDisplay) -> TransparencySet {
        TransparencySet::new(vec![dot(2, 2), dot(4, 4), dot(6, 6)], display).unwrap()
    }

    #[test]
    fn stacked_accumulates() {
        let s = set(TransparencyDisplay::Stacked);
        let p0 = s.page_at(&base(), 0).unwrap();
        assert!(p0.get(2, 2) && !p0.get(4, 4));
        let p2 = s.page_at(&base(), 2).unwrap();
        assert!(p2.get(2, 2) && p2.get(4, 4) && p2.get(6, 6));
        assert!(p2.get(5, 0), "base page must show through");
    }

    #[test]
    fn separate_shows_one_sheet_at_a_time() {
        let s = set(TransparencyDisplay::Separate);
        let p1 = s.page_at(&base(), 1).unwrap();
        assert!(p1.get(4, 4));
        assert!(!p1.get(2, 2) && !p1.get(6, 6));
        assert!(p1.get(5, 0));
    }

    #[test]
    fn user_selected_superposition() {
        let s = set(TransparencyDisplay::Separate);
        let p = s.superimpose(&base(), &[0, 2]).unwrap();
        assert!(p.get(2, 2) && p.get(6, 6));
        assert!(!p.get(4, 4));
        // Duplicates are harmless; order is irrelevant for OR.
        let p2 = s.superimpose(&base(), &[2, 0, 2]).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn out_of_range_index_is_error() {
        let s = set(TransparencyDisplay::Stacked);
        assert!(s.page_at(&base(), 3).is_err());
        assert!(s.superimpose(&base(), &[5]).is_err());
    }

    #[test]
    fn mismatched_sheet_sizes_rejected() {
        let err = TransparencySet::new(
            vec![Bitmap::new(16, 16), Bitmap::new(8, 8)],
            TransparencyDisplay::Stacked,
        );
        assert!(err.is_err());
    }

    #[test]
    fn empty_set_is_valid_but_empty() {
        let s = TransparencySet::new(vec![], TransparencyDisplay::Stacked).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.page_at(&base(), 0).is_err());
        // Superimposing nothing reproduces the base.
        assert_eq!(s.superimpose(&base(), &[]).unwrap(), base());
    }

    #[test]
    fn transparency_never_erases_base_ink() {
        let s = set(TransparencyDisplay::Stacked);
        let b = base();
        let p = s.page_at(&b, 2).unwrap();
        for y in 0..16 {
            for x in 0..16 {
                if b.get(x, y) {
                    assert!(p.get(x, y), "base ink erased at ({x},{y})");
                }
            }
        }
    }
}
