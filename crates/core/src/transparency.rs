//! Transparency-set presentation.
//!
//! Drives a [`minos_object::TransparencySetSpec`] the way the user
//! experiences Figures 5–6: page turns superimpose (or exchange) the
//! designer's transparencies over the base page, and the user may override
//! the designer's order by selecting an arbitrary subset to project at the
//! same time.

use minos_image::{Bitmap, TransparencySet};
use minos_object::MultimediaObject;
use minos_types::{MinosError, Result};

/// Viewer state over one transparency set of an object.
#[derive(Clone, Debug)]
pub struct TransparencyViewer {
    base: Bitmap,
    set: TransparencySet,
    /// Pages turned into the set so far: 0 = base page only, k = k-th
    /// transparency shown.
    turned: usize,
}

impl TransparencyViewer {
    /// Opens the viewer on the object's `set_index`-th transparency set.
    pub fn new(object: &MultimediaObject, set_index: usize) -> Result<Self> {
        let spec = object
            .transparency_sets
            .get(set_index)
            .ok_or_else(|| MinosError::UnknownComponent(format!("transparency set {set_index}")))?;
        let base = object
            .images
            .get(spec.base_image)
            .ok_or_else(|| MinosError::UnknownComponent(format!("base image {}", spec.base_image)))?
            .render();
        let sheets: Result<Vec<Bitmap>> = spec
            .sheets
            .iter()
            .map(|&i| {
                object
                    .images
                    .get(i)
                    .map(|img| img.render())
                    .ok_or_else(|| MinosError::UnknownComponent(format!("sheet image {i}")))
            })
            .collect();
        let set = TransparencySet::new(sheets?, spec.display)?;
        Ok(TransparencyViewer { base, set, turned: 0 })
    }

    /// Number of transparencies in the set.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// How many transparencies have been turned (0 = base page).
    pub fn turned(&self) -> usize {
        self.turned
    }

    /// The page currently displayed.
    pub fn current(&self) -> Result<Bitmap> {
        if self.turned == 0 {
            return Ok(self.base.clone());
        }
        self.set.page_at(&self.base, self.turned - 1)
    }

    /// Turns the next transparency (clamped at the last).
    pub fn next_page(&mut self) -> Result<Bitmap> {
        if self.turned < self.set.len() {
            self.turned += 1;
        }
        self.current()
    }

    /// Turns back one transparency (down to the bare base page).
    pub fn previous_page(&mut self) -> Result<Bitmap> {
        self.turned = self.turned.saturating_sub(1);
        self.current()
    }

    /// The user's override: "he may choose to see certain transparencies
    /// of the set only projected at the same time" (§2).
    pub fn superimpose(&self, indices: &[usize]) -> Result<Bitmap> {
        self.set.superimpose(&self.base, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_corpus::medical_report;
    use minos_types::ObjectId;

    fn viewer() -> TransparencyViewer {
        let obj = medical_report(ObjectId::new(1), 42);
        TransparencyViewer::new(&obj, 0).unwrap()
    }

    #[test]
    fn starts_on_the_bare_xray() {
        let v = viewer();
        assert_eq!(v.turned(), 0);
        assert_eq!(v.len(), 2);
        let base = v.current().unwrap();
        assert!(!base.is_blank());
    }

    #[test]
    fn turning_stacks_annotations() {
        let mut v = viewer();
        let base_ink = v.current().unwrap().count_ink();
        let one = v.next_page().unwrap();
        assert_eq!(v.turned(), 1);
        assert!(one.count_ink() > base_ink, "first sheet adds the circle");
        let two = v.next_page().unwrap();
        assert!(two.count_ink() > one.count_ink(), "stacked display accumulates");
        // Clamped at the end.
        let still_two = v.next_page().unwrap();
        assert_eq!(still_two, two);
        assert_eq!(v.turned(), 2);
    }

    #[test]
    fn turning_back_removes_sheets() {
        let mut v = viewer();
        v.next_page().unwrap();
        v.next_page().unwrap();
        v.previous_page().unwrap();
        assert_eq!(v.turned(), 1);
        v.previous_page().unwrap();
        v.previous_page().unwrap(); // clamped at base
        assert_eq!(v.turned(), 0);
        assert_eq!(v.current().unwrap(), viewer().current().unwrap());
    }

    #[test]
    fn user_selected_subset() {
        let v = viewer();
        let only_second = v.superimpose(&[1]).unwrap();
        let both = v.superimpose(&[0, 1]).unwrap();
        assert!(both.count_ink() > only_second.count_ink());
        assert!(v.superimpose(&[5]).is_err());
    }

    #[test]
    fn missing_set_is_an_error() {
        let obj = medical_report(ObjectId::new(2), 1);
        assert!(TransparencyViewer::new(&obj, 3).is_err());
    }
}
