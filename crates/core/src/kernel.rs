//! The discrete-event simulation kernel: a hierarchical timer wheel, a
//! ready queue of typed wake events, and a ring-buffered trace log.
//!
//! The paper's presentation manager interleaves many concurrent text and
//! voice sessions against shared devices. Polling every session per tick
//! makes simulated wall-time grow with N even when almost all sessions
//! are idle; the kernel inverts that: consumers *arm* deadlines
//! (retransmit timers, audio buffer deadlines, prefetch windows) and the
//! simulation advances directly from one armed instant to the next, so an
//! idle session costs zero work and per-event cost is independent of N.
//!
//! The wheel is hierarchical — [`LEVELS`] levels of [`SLOTS`] slots at a
//! 1 µs tick resolution, with a per-level occupancy bitmap — so arming,
//! cancelling, and finding the next armed instant are all O(1) in the
//! number of idle timers. Deadlines beyond the wheel horizon (≈16.8
//! simulated seconds) are parked at the horizon and re-filed on each
//! cascade until their true deadline is in range.

use minos_types::{SimDuration, SimInstant};
use std::collections::{HashSet, VecDeque};
use std::fmt::Write as _;

/// Bits per wheel level: each level has `1 << SLOT_BITS` slots.
const SLOT_BITS: u32 = 6;

/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;

/// Wheel levels. Level 0 resolves single ticks (1 µs); level `L` spans
/// `64^L` ticks per slot. Four levels cover ≈16.8 s before clamping.
const LEVELS: usize = 4;

/// Handle to an armed timer, returned by [`Kernel::arm`] and accepted by
/// [`Kernel::cancel`]. Ids are never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// A typed kernel event: why a consumer is being woken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelEvent {
    /// A server response finished arriving for connection `conn`.
    ResponseLanded {
        /// The connection the response belongs to.
        conn: u64,
        /// The request the response answers.
        request_id: u64,
    },
    /// A generic consumer deadline keyed by the consumer's own `key`.
    DeadlineFired {
        /// Consumer-chosen correlation key.
        key: u64,
    },
    /// A per-request retransmit deadline expired without a response.
    RetryDue {
        /// The outstanding request whose deadline passed.
        request_id: u64,
        /// The attempt count the deadline was armed for; a fired event
        /// whose attempt no longer matches the outstanding state is stale.
        attempt: u32,
    },
    /// An audio session's next buffer deadline: the device must be fed.
    AudioDeadline {
        /// Scheduler slot index of the session.
        session: u64,
    },
    /// A prefetch anticipation window opened for a session.
    PrefetchWindowOpen {
        /// Consumer-chosen session tag.
        session: u64,
    },
    /// A fleet member has request frames due to arrive: the service pump
    /// should visit that member (and drain its wake list) at this instant.
    ServerWake {
        /// Fleet index of the member to pump.
        member: u64,
    },
    /// The health monitor's heartbeat interval elapsed for a member: a
    /// `Ping` is due (and the previous one's silence is a miss).
    HealthTick {
        /// Fleet index of the member to ping.
        member: u64,
    },
    /// A throttled repair-queue slot opened: the re-replication pump may
    /// start the next repair task.
    RepairDue {
        /// Repair-queue task tag (consumer-chosen).
        task: u64,
    },
    /// A hedge delay expired with the original request still in flight: a
    /// speculative duplicate should be fired at a sibling replica.
    HedgeFire {
        /// The outstanding request being hedged.
        request_id: u64,
    },
}

/// Kernel counters, cleared wholesale by [`Kernel::reset_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Events delivered onto the ready queue.
    pub events_fired: u64,
    /// Timers armed over the kernel's lifetime.
    pub timers_armed: u64,
    /// Wakes that found nothing to do: cancelled timers that reached
    /// their deadline, plus staleness noted by consumers via
    /// [`Kernel::note_spurious`].
    pub spurious_wakes: u64,
    /// High-water mark of the ready-queue depth.
    pub ready_high_water: u64,
}

/// One armed timer: its id, absolute deadline in ticks, and the event it
/// delivers.
struct TimerEntry {
    id: u64,
    deadline: u64,
    event: KernelEvent,
}

/// The hierarchical timer wheel. Time is measured in ticks of 1 µs —
/// [`SimInstant::as_micros`] maps 1:1 onto ticks, so deadlines fire at
/// their exact instant, never rounded early or late.
struct TimerWheel {
    /// `LEVELS * SLOTS` slot vectors, level-major.
    slots: Vec<Vec<TimerEntry>>,
    /// Per-level occupancy bitmap: bit `s` set iff slot `s` is non-empty.
    occupied: [u64; LEVELS],
    /// Current tick.
    current: u64,
    /// Entries whose deadline has been reached, in firing order.
    due: VecDeque<TimerEntry>,
}

/// Bits of `mask` strictly above bit `idx` (empty when `idx` is the top).
fn mask_above(mask: u64, idx: u32) -> u64 {
    if idx >= 63 {
        0
    } else {
        mask & (!0u64 << (idx + 1))
    }
}

impl TimerWheel {
    fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            current: 0,
            due: VecDeque::new(),
        }
    }

    /// Largest placeable delta: one full top-level rotation minus a tick.
    /// Entries further out are parked here and re-filed on cascade.
    fn horizon_bound() -> u64 {
        (1u64 << (SLOT_BITS * LEVELS as u32)) - 1
    }

    /// Files `entry` by its deadline relative to `current`: already-due
    /// entries go straight onto the due list, everything else into the
    /// shallowest level whose slot span bounds its (horizon-clamped)
    /// delta. Slot occupancy is capacity-tracked by the level bitmaps.
    fn place(&mut self, entry: TimerEntry) {
        if entry.deadline <= self.current {
            self.due.push_back(entry);
            return;
        }
        let delta = (entry.deadline - self.current).min(Self::horizon_bound());
        let effective = self.current + delta;
        let bits = 64 - u64::from(delta.leading_zeros());
        let level = ((bits - 1) / u64::from(SLOT_BITS)) as usize;
        let slot = ((effective >> (SLOT_BITS * level as u32)) & 63) as usize;
        self.occupied[level] |= 1u64 << slot;
        self.slots[level * SLOTS + slot].push(entry);
    }

    /// Earliest tick at which the wheel itself needs attention: the exact
    /// deadline for level-0 entries, the cascade (flush) tick for higher
    /// levels. A lower bound on the earliest armed deadline — always
    /// strictly greater than `current` — which [`TimerWheel::advance_to`]
    /// uses to jump over idle regions without scanning slots.
    fn next_wheel_tick(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        // Level 0: slot index == deadline tick modulo the window, so the
        // candidate is exact. Bits above the current index belong to this
        // window; bits at or below it to the next.
        let occ = self.occupied[0];
        if occ != 0 {
            let idx = (self.current & 63) as u32;
            let window = self.current & !63;
            let high = mask_above(occ, idx);
            let cand = if high != 0 {
                window + u64::from(high.trailing_zeros())
            } else {
                window + 64 + u64::from(occ.trailing_zeros())
            };
            best = Some(cand);
        }
        // Higher levels: the candidate is the slot's flush tick, where its
        // entries cascade down (or fire).
        for level in 1..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let span = 1u64 << shift;
            let window = self.current & !((span << SLOT_BITS) - 1);
            let idx = ((self.current >> shift) & 63) as u32;
            let high = mask_above(occ, idx);
            let cand = if high != 0 {
                window + u64::from(high.trailing_zeros()) * span
            } else {
                window + (span << SLOT_BITS) + u64::from(occ.trailing_zeros()) * span
            };
            best = Some(best.map_or(cand, |b| b.min(cand)));
        }
        best
    }

    /// Drains one slot and re-files (or fires) every entry it held.
    fn flush_slot(&mut self, level: usize, slot: usize) {
        if self.occupied[level] & (1u64 << slot) == 0 {
            return;
        }
        self.occupied[level] &= !(1u64 << slot);
        let drained = std::mem::take(&mut self.slots[level * SLOTS + slot]);
        for entry in drained {
            self.place(entry);
        }
    }

    /// Advances the wheel to `target` ticks, moving every entry whose
    /// deadline is reached onto the due list. The walk jumps directly
    /// from one armed tick to the next — idle spans cost one bitmap scan
    /// regardless of their length.
    fn advance_to(&mut self, target: u64) {
        while self.current < target {
            let next = match self.next_wheel_tick() {
                Some(t) if t <= target => t,
                _ => {
                    self.current = target;
                    return;
                }
            };
            self.current = next;
            // Cascade every level whose slot boundary this tick crosses,
            // deepest first so re-filed entries land in slots that are
            // themselves flushed at this same tick.
            for level in (1..LEVELS).rev() {
                let shift = SLOT_BITS * level as u32;
                if self.current & ((1u64 << shift) - 1) == 0 {
                    self.flush_slot(level, ((self.current >> shift) & 63) as usize);
                }
            }
            self.flush_slot(0, (self.current & 63) as usize);
        }
    }
}

/// One trace record: when (ticks), what happened, and to which event.
#[derive(Clone, Copy, Debug)]
struct TraceRecord {
    at: u64,
    verb: &'static str,
    event: KernelEvent,
}

/// Ring-buffered structured event trace riding on the kernel's event
/// stream; the oldest records are dropped when the ring is full, and the
/// whole ring drains as a JSON array for offline stall analysis.
struct TraceLog {
    ring: VecDeque<TraceRecord>,
    cap: usize,
    dropped: u64,
}

/// Default trace-ring capacity: enough for a stall window, small enough
/// that a 10k-session run never grows it.
const TRACE_CAP: usize = 1024;

impl TraceLog {
    fn new() -> Self {
        TraceLog { ring: VecDeque::new(), cap: TRACE_CAP, dropped: 0 }
    }

    /// Appends one record, evicting the oldest past the ring's `cap`.
    fn record(&mut self, at: u64, verb: &'static str, event: KernelEvent) {
        if self.cap == 0 {
            return;
        }
        while self.ring.len() >= self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceRecord { at, verb, event });
    }

    /// Drains the ring as one JSON array (oldest record first). The output
    /// is bounded by the ring's `cap`: at most that many records survive
    /// eviction, so one line's worth of bytes is reserved per slot.
    fn drain_json(&mut self) -> String {
        let mut out = String::with_capacity(self.cap.min(self.ring.len()) * 64 + 2);
        out.push('[');
        let mut first = true;
        while let Some(rec) = self.ring.pop_front() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{{\"at_us\":{},\"verb\":\"{}\",", rec.at, rec.verb);
            event_json(&rec.event, &mut out);
            out.push('}');
        }
        out.push(']');
        out
    }
}

/// Writes the `"event"` discriminant plus the variant's fields.
fn event_json(event: &KernelEvent, out: &mut String) {
    let _ = match event {
        KernelEvent::ResponseLanded { conn, request_id } => {
            write!(out, "\"event\":\"ResponseLanded\",\"conn\":{conn},\"request_id\":{request_id}")
        }
        KernelEvent::DeadlineFired { key } => {
            write!(out, "\"event\":\"DeadlineFired\",\"key\":{key}")
        }
        KernelEvent::RetryDue { request_id, attempt } => {
            write!(out, "\"event\":\"RetryDue\",\"request_id\":{request_id},\"attempt\":{attempt}")
        }
        KernelEvent::AudioDeadline { session } => {
            write!(out, "\"event\":\"AudioDeadline\",\"session\":{session}")
        }
        KernelEvent::PrefetchWindowOpen { session } => {
            write!(out, "\"event\":\"PrefetchWindowOpen\",\"session\":{session}")
        }
        KernelEvent::ServerWake { member } => {
            write!(out, "\"event\":\"ServerWake\",\"member\":{member}")
        }
        KernelEvent::HealthTick { member } => {
            write!(out, "\"event\":\"HealthTick\",\"member\":{member}")
        }
        KernelEvent::RepairDue { task } => {
            write!(out, "\"event\":\"RepairDue\",\"task\":{task}")
        }
        KernelEvent::HedgeFire { request_id } => {
            write!(out, "\"event\":\"HedgeFire\",\"request_id\":{request_id}")
        }
    };
}

/// The event kernel: a timer wheel, a ready queue, a trace ring, and the
/// counter block. Consumers arm deadlines, advance simulated time, and
/// drain the ready queue; nothing idle is ever visited.
pub struct Kernel {
    wheel: TimerWheel,
    /// Ids currently armed (in a slot or on the due list, not yet fired).
    armed_ids: HashSet<u64>,
    /// Armed ids whose timer was cancelled: dropped (and counted
    /// spurious) when their deadline fires.
    cancelled: HashSet<u64>,
    ready: VecDeque<KernelEvent>,
    trace: TraceLog,
    stats: KernelStats,
    next_timer: u64,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Kernel {
    /// A fresh kernel at tick 0 with nothing armed.
    pub fn new() -> Self {
        Kernel {
            wheel: TimerWheel::new(),
            armed_ids: HashSet::new(),
            cancelled: HashSet::new(),
            ready: VecDeque::new(),
            trace: TraceLog::new(),
            stats: KernelStats::default(),
            next_timer: 1,
        }
    }

    /// Current kernel time.
    pub fn now(&self) -> SimInstant {
        SimInstant::from_micros(self.wheel.current)
    }

    /// Arms a timer delivering `event` at `at` (immediately, if `at` has
    /// already passed) and returns a handle for cancellation.
    pub fn arm(&mut self, at: SimInstant, event: KernelEvent) -> TimerId {
        let id = self.next_timer;
        self.next_timer += 1;
        self.stats.timers_armed += 1;
        self.armed_ids.insert(id);
        self.trace.record(at.as_micros(), "arm", event);
        self.wheel.place(TimerEntry { id, deadline: at.as_micros(), event });
        TimerId(id)
    }

    /// [`Kernel::arm`] without keeping the cancellation handle — for
    /// events that always want delivering, like a landed response.
    pub fn post(&mut self, at: SimInstant, event: KernelEvent) {
        let _ = self.arm(at, event);
    }

    /// Cancels an armed timer. The entry stays in its slot until its
    /// deadline, where it is dropped and counted as a spurious wake.
    /// Cancelling a fired (or unknown) timer is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        if self.armed_ids.remove(&id.0) {
            self.cancelled.insert(id.0);
        }
    }

    /// The earliest instant at which anything can fire: `now` when events
    /// are already due, otherwise a lower bound on the earliest armed
    /// deadline (exact for near deadlines; for far ones it may name an
    /// intermediate cascade tick where nothing fires yet — callers loop
    /// `next_deadline`/`advance_to` and tolerate empty drains).
    pub fn next_deadline(&self) -> Option<SimInstant> {
        if !self.wheel.due.is_empty() {
            return Some(self.now());
        }
        self.wheel.next_wheel_tick().map(SimInstant::from_micros)
    }

    /// Advances kernel time to `at` (never backwards), firing every timer
    /// whose deadline is reached onto the ready queue in deadline order.
    pub fn advance_to(&mut self, at: SimInstant) {
        self.wheel.advance_to(at.as_micros());
        while let Some(entry) = self.wheel.due.pop_front() {
            if self.cancelled.remove(&entry.id) {
                self.stats.spurious_wakes += 1;
                self.trace.record(entry.deadline, "spurious", entry.event);
                continue;
            }
            self.armed_ids.remove(&entry.id);
            self.stats.events_fired += 1;
            self.trace.record(entry.deadline, "fire", entry.event);
            self.admit_ready(entry.event);
        }
    }

    /// Admits one fired event onto the ready queue. The queue is drained
    /// in lockstep by the consumer each advance; its high-water mark is
    /// the capacity signal [`KernelStats`] reports.
    fn admit_ready(&mut self, event: KernelEvent) {
        self.ready.push_back(event);
        let depth = self.ready.len() as u64;
        self.stats.ready_high_water = self.stats.ready_high_water.max(depth);
    }

    /// Pops the next ready event, oldest deadline first.
    pub fn take_ready(&mut self) -> Option<KernelEvent> {
        self.ready.pop_front()
    }

    /// Whether any timer is still armed (a cancelled-but-unfired timer
    /// does not count).
    pub fn has_armed(&self) -> bool {
        !self.armed_ids.is_empty()
    }

    /// Notes a consumer-detected spurious wake: the event fired but the
    /// state it referred to had already moved on.
    pub fn note_spurious(&mut self) {
        self.stats.spurious_wakes += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Clears the counter block wholesale.
    pub fn reset_stats(&mut self) {
        self.stats = KernelStats::default();
    }

    /// Drains the trace ring as a JSON array of `{at_us, verb, event, …}`
    /// records (oldest first; `verb` ∈ `arm`/`fire`/`spurious`).
    pub fn drain_trace_json(&mut self) -> String {
        self.trace.drain_json()
    }

    /// Trace records evicted by the ring since the last drain.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.dropped
    }

    /// Resizes the trace ring (0 disables tracing entirely).
    pub fn set_trace_capacity(&mut self, cap: usize) {
        self.trace.cap = cap;
        while self.trace.ring.len() > cap {
            self.trace.ring.pop_front();
            self.trace.dropped += 1;
        }
    }
}

/// Convenience: the instant `delay` after `at`.
pub fn after(at: SimInstant, delay: SimDuration) -> SimInstant {
    at + delay
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ev(key: u64) -> KernelEvent {
        KernelEvent::DeadlineFired { key }
    }

    /// Drives the kernel to `target`, collecting (deadline-bounded) fired
    /// events in order via the next_deadline/advance loop consumers use.
    fn run_to(kernel: &mut Kernel, target: u64) -> Vec<(u64, KernelEvent)> {
        let mut fired = Vec::new();
        let target = SimInstant::from_micros(target);
        while let Some(at) = kernel.next_deadline() {
            if at > target {
                break;
            }
            kernel.advance_to(at);
            while let Some(event) = kernel.take_ready() {
                fired.push((kernel.now().as_micros(), event));
            }
        }
        kernel.advance_to(target);
        while let Some(event) = kernel.take_ready() {
            fired.push((kernel.now().as_micros(), event));
        }
        fired
    }

    #[test]
    fn timers_fire_at_their_exact_deadline_in_order() {
        let mut k = Kernel::new();
        // One deadline per wheel level, plus a same-tick pair.
        for (at, key) in [(5u64, 0u64), (70, 1), (70, 2), (5_000, 3), (300_000, 4)] {
            k.arm(SimInstant::from_micros(at), ev(key));
        }
        let fired = run_to(&mut k, 1_000_000);
        let got: Vec<(u64, u64)> = fired
            .iter()
            .map(|(at, e)| match e {
                KernelEvent::DeadlineFired { key } => (*at, *key),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(got, vec![(5, 0), (70, 1), (70, 2), (5_000, 3), (300_000, 4)]);
        assert_eq!(k.stats().events_fired, 5);
        assert_eq!(k.stats().timers_armed, 5);
        assert_eq!(k.stats().spurious_wakes, 0);
    }

    #[test]
    fn wheel_matches_a_sorted_map_reference_under_fuzz() {
        // LCG-driven arms and advances, compared against a BTreeMap
        // reference: same fire times, same per-deadline event sets.
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut k = Kernel::new();
        let mut reference: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut now = 0u64;
        let mut next_key = 0u64;
        let mut fired: Vec<(u64, u64)> = Vec::new();
        for _ in 0..2_000 {
            if rng() % 4 != 0 {
                // Deltas spanning every level, including past-due (0) and
                // beyond-horizon arms.
                let delta = match rng() % 5 {
                    0 => rng() % 64,
                    1 => rng() % 4_096,
                    2 => rng() % 262_144,
                    3 => rng() % (1 << 25),
                    _ => 0,
                };
                let key = next_key;
                next_key += 1;
                k.arm(SimInstant::from_micros(now + delta), ev(key));
                reference.entry(now + delta).or_default().push(key);
            } else {
                now += rng() % 100_000;
                for (at, e) in run_to(&mut k, now) {
                    match e {
                        KernelEvent::DeadlineFired { key } => fired.push((at, key)),
                        other => panic!("unexpected {other:?}"),
                    }
                }
                let mut expected: Vec<(u64, u64)> = Vec::new();
                let rest = reference.split_off(&(now + 1));
                for (at, keys) in &reference {
                    for key in keys {
                        expected.push((*at, *key));
                    }
                }
                reference = rest;
                // Same deadlines in the same order; within one deadline
                // the wheel may interleave differently, so compare sets.
                let tail = fired.len() - expected.len();
                let got = &fired[tail..];
                let mut got_sorted = got.to_vec();
                got_sorted.sort_unstable();
                let mut expected_sorted = expected.clone();
                expected_sorted.sort_unstable();
                assert_eq!(got_sorted, expected_sorted, "at tick {now}");
                assert!(got.windows(2).all(|w| w[0].0 <= w[1].0), "deadline order");
            }
        }
        assert!(k.stats().events_fired > 100, "fuzz actually fired");
    }

    #[test]
    fn cancelled_timers_are_spurious_not_delivered() {
        let mut k = Kernel::new();
        let keep = k.arm(SimInstant::from_micros(100), ev(1));
        let drop_ = k.arm(SimInstant::from_micros(100), ev(2));
        k.cancel(drop_);
        let fired = run_to(&mut k, 200);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, ev(1));
        assert_eq!(k.stats().spurious_wakes, 1);
        assert_eq!(k.stats().events_fired, 1);
        // Cancelling after the fire is a no-op.
        k.cancel(keep);
        k.cancel(drop_);
        assert_eq!(k.stats().spurious_wakes, 1);
        assert!(!k.has_armed());
    }

    #[test]
    fn past_deadlines_fire_on_the_next_advance() {
        let mut k = Kernel::new();
        k.advance_to(SimInstant::from_micros(500));
        k.arm(SimInstant::from_micros(10), ev(7));
        assert_eq!(k.next_deadline(), Some(SimInstant::from_micros(500)));
        k.advance_to(SimInstant::from_micros(500));
        assert_eq!(k.take_ready(), Some(ev(7)));
    }

    #[test]
    fn beyond_horizon_deadlines_still_fire_exactly() {
        let mut k = Kernel::new();
        let far = 30_000_000u64; // 30 s, past the ~16.8 s horizon
        k.arm(SimInstant::from_micros(far), ev(9));
        assert!(run_to(&mut k, far - 1).is_empty());
        let fired = run_to(&mut k, far);
        assert_eq!(fired, vec![(far, ev(9))]);
    }

    #[test]
    fn idle_kernel_reports_no_deadline_and_jumps_free() {
        let mut k = Kernel::new();
        assert_eq!(k.next_deadline(), None);
        k.advance_to(SimInstant::from_micros(u64::MAX / 2));
        assert_eq!(k.stats().events_fired, 0);
        assert!(!k.has_armed());
    }

    #[test]
    fn ready_high_water_tracks_batched_fires_and_reset_clears_all() {
        let mut k = Kernel::new();
        for i in 0..5 {
            k.arm(SimInstant::from_micros(50), ev(i));
        }
        k.advance_to(SimInstant::from_micros(50));
        assert_eq!(k.stats().ready_high_water, 5);
        while k.take_ready().is_some() {}
        k.note_spurious();
        assert_eq!(
            k.stats(),
            KernelStats {
                events_fired: 5,
                timers_armed: 5,
                spurious_wakes: 1,
                ready_high_water: 5
            }
        );
        k.reset_stats();
        assert_eq!(k.stats(), KernelStats::default());
    }

    #[test]
    fn trace_ring_drains_as_json_and_drops_oldest() {
        let mut k = Kernel::new();
        k.set_trace_capacity(3);
        k.arm(SimInstant::from_micros(5), KernelEvent::RetryDue { request_id: 42, attempt: 1 });
        k.advance_to(SimInstant::from_micros(5));
        let json = k.drain_trace_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"verb\":\"arm\""), "{json}");
        assert!(json.contains("\"verb\":\"fire\""), "{json}");
        assert!(json.contains("\"event\":\"RetryDue\",\"request_id\":42,\"attempt\":1"), "{json}");
        assert_eq!(k.drain_trace_json(), "[]");
        // Overflow: 4 arms into a 3-slot ring drop the oldest.
        for i in 0..4 {
            k.arm(SimInstant::from_micros(100 + i), ev(i));
        }
        assert_eq!(k.trace_dropped(), 1);
        let json = k.drain_trace_json();
        assert!(!json.contains("\"key\":0"), "{json}");
        assert!(json.contains("\"key\":3"), "{json}");
    }

    #[test]
    fn every_event_variant_serialises_its_fields() {
        let mut k = Kernel::new();
        let at = SimInstant::from_micros(1);
        k.post(at, KernelEvent::ResponseLanded { conn: 3, request_id: 8 });
        k.post(at, KernelEvent::DeadlineFired { key: 11 });
        k.post(at, KernelEvent::AudioDeadline { session: 2 });
        k.post(at, KernelEvent::PrefetchWindowOpen { session: 6 });
        k.post(at, KernelEvent::ServerWake { member: 4 });
        k.post(at, KernelEvent::HealthTick { member: 1 });
        k.post(at, KernelEvent::RepairDue { task: 9 });
        k.post(at, KernelEvent::HedgeFire { request_id: 12 });
        let json = k.drain_trace_json();
        for needle in [
            "\"event\":\"ResponseLanded\",\"conn\":3,\"request_id\":8",
            "\"event\":\"DeadlineFired\",\"key\":11",
            "\"event\":\"AudioDeadline\",\"session\":2",
            "\"event\":\"PrefetchWindowOpen\",\"session\":6",
            "\"event\":\"ServerWake\",\"member\":4",
            "\"event\":\"HealthTick\",\"member\":1",
            "\"event\":\"RepairDue\",\"task\":9",
            "\"event\":\"HedgeFire\",\"request_id\":12",
        ] {
            assert!(json.contains(needle), "{json}");
        }
    }

    #[test]
    fn after_offsets_an_instant() {
        let at = SimInstant::from_micros(10);
        assert_eq!(after(at, SimDuration::from_micros(5)), SimInstant::from_micros(15));
    }
}
