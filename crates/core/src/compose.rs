//! Screen composition: one call renders a session's whole presentation.
//!
//! Reproduces the screen layout of Figures 1–6: the page (or the active
//! audio display) in the display region, a pinned visual logical message in
//! the reserved top strip, and the derived menu in the right-hand column.
//! Examples and golden tests use this instead of hand-assembling regions.

use crate::session::{BrowsingSession, ObjectStore};
use minos_image::{Bitmap, BlitMode};
use minos_object::{MessageBody, MultimediaObject, VisualMessageContent};
use minos_screen::{render_page, Screen};
use minos_text::PaginateConfig;
use minos_types::{Point, Rect, Result};

/// Resolves a document figure tag against an object's image part. The
/// convention used throughout the corpus is `imgN` → image index `N`;
/// unknown tags resolve to `None` (the renderer draws a crossed frame).
pub fn resolve_figure(object: &MultimediaObject, tag: &str) -> Option<Bitmap> {
    let index: usize = tag.strip_prefix("img")?.parse().ok()?;
    object.images.get(index).map(|i| i.render())
}

/// Renders a visual logical message's content into a strip of the given
/// size: the image (if any) at the left, a caption bar for the text.
fn render_message_strip(
    object: &MultimediaObject,
    content: &VisualMessageContent,
    size: minos_types::Size,
) -> Bitmap {
    let mut strip = Bitmap::new(size.width, size.height);
    let mut x = 8;
    if let Some(image_index) = content.image {
        if let Some(image) = object.images.get(image_index) {
            let raster = image.render();
            let fit = Rect::new(
                0,
                0,
                raster.width().min(size.width.saturating_sub(16)),
                raster.height().min(size.height.saturating_sub(8)),
            );
            if !fit.is_empty() {
                let part = raster.extract(fit).expect("fit within raster");
                strip.blit(&part, Point::new(x, 4), BlitMode::Replace);
                x += fit.size.width as i32 + 8;
            }
        }
    }
    if let Some(text) = &content.text {
        // Greeked caption bar proportional to the text length.
        let y = (size.height / 2) as i32;
        let w = (text.chars().count() as i32 * 5).min(size.width as i32 - x - 8);
        for dx in 0..w.max(0) {
            strip.set(x + dx, y, true);
            strip.set(x + dx, y + 1, true);
        }
    }
    strip
}

/// Composes the session's current presentation onto `screen`. Returns the
/// pagination config used for the page area (callers re-rendering single
/// pages need it).
pub fn compose_screen<S: ObjectStore>(
    session: &BrowsingSession<S>,
    screen: &mut Screen,
    config: PaginateConfig,
) -> Result<PaginateConfig> {
    screen.clear();
    let object = session.object();

    if let Some(view) = session.visual_view() {
        screen.reserve_top(view.reserved_top);
        // Pinned visual message at the top.
        if let Some(message_index) = view.pinned_message {
            if let MessageBody::Visual { content, .. } = &object.messages[message_index].body {
                let region = screen.message_region();
                let strip = render_message_strip(object, content, region.size);
                screen.show(&strip, region);
            }
        }
        // The page below.
        let page = render_page(&view.page, config, |figure_index| {
            let doc = object.text_segments.first()?;
            let figure = doc.figures().get(figure_index)?;
            resolve_figure(object, &figure.tag)
        });
        let display = screen.display_region();
        screen.show(&page, display);
    } else if let Some(audio) = session.audio() {
        screen.reserve_top(0);
        // Audio objects display the active visual message, if any, plus an
        // audio-page progress strip at the bottom.
        if let Some(message_index) = audio.active_visual_message() {
            if let MessageBody::Visual { content, .. } = &object.messages[message_index].body {
                let display = screen.display_region();
                let strip = render_message_strip(object, content, display.size);
                screen.show(&strip, display);
            }
        }
        let display = screen.display_region();
        let pages = audio.page_count().max(1);
        let current = audio.current_page().unwrap_or(0);
        let slot_w = (display.size.width / pages as u32).max(1);
        let y = display.bottom() - 12;
        for p in 0..pages {
            let x0 = display.left() + (p as u32 * slot_w) as i32;
            let filled = p <= current;
            for dx in 2..slot_w.saturating_sub(2) as i32 {
                screen.overlay(
                    &{
                        let mut dot = Bitmap::new(1, if filled { 6 } else { 2 });
                        dot.fill_rect(dot.bounds(), true);
                        dot
                    },
                    Point::new(x0 + dx, y),
                );
            }
        }
    }

    // The menu column is always present.
    let menu = session.menu();
    let menu_region = screen.menu_region();
    let menu_bitmap = menu.render(menu_region);
    screen.show(&menu_bitmap, menu_region);
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::BrowseCommand;
    use minos_corpus::{audio_xray_report, medical_report};
    use minos_text::LogicalLevel;
    use minos_types::{ObjectId, SimDuration};
    use std::collections::HashMap;

    type Store = HashMap<ObjectId, MultimediaObject>;

    fn open(object: MultimediaObject) -> BrowsingSession<Store> {
        let id = object.id;
        let mut store = Store::new();
        store.insert(id, object);
        BrowsingSession::open(store, id, PaginateConfig::default(), SimDuration::from_secs(5))
            .unwrap()
            .0
    }

    #[test]
    fn visual_composition_fills_page_and_menu() {
        let session = open(medical_report(ObjectId::new(1), 42));
        let mut screen = Screen::new();
        compose_screen(&session, &mut screen, PaginateConfig::default()).unwrap();
        let fb = screen.framebuffer();
        assert!(fb.extract(screen.display_region()).unwrap().count_ink() > 500);
        assert!(fb.extract(screen.menu_region()).unwrap().count_ink() > 100);
        assert!(screen.message_region().is_empty(), "nothing pinned yet");
    }

    #[test]
    fn pinned_message_occupies_the_top_strip() {
        let mut session = open(medical_report(ObjectId::new(1), 42));
        session.apply(BrowseCommand::NextUnit(LogicalLevel::Chapter)).unwrap();
        assert!(session.visual_view().unwrap().pinned_message.is_some());
        let mut screen = Screen::new();
        compose_screen(&session, &mut screen, PaginateConfig::default()).unwrap();
        let strip = screen.message_region();
        assert!(!strip.is_empty());
        let ink = screen.framebuffer().extract(strip).unwrap().count_ink();
        assert!(ink > 200, "pinned x-ray missing from the strip: {ink}");
    }

    #[test]
    fn audio_composition_shows_message_during_finding() {
        let object = audio_xray_report(ObjectId::new(2), 7);
        let finding = object.voice_segments[0].transcript.paragraph_starts[1];
        let mut session = open(object);
        // Before the finding: no message, just the progress strip + menu.
        let mut screen = Screen::new();
        compose_screen(&session, &mut screen, PaginateConfig::default()).unwrap();
        let quiet_ink = screen.framebuffer().extract(screen.display_region()).unwrap().count_ink();
        // Seek into the finding paragraph: the x-ray strip appears.
        let dt = finding.since(minos_types::SimInstant::EPOCH) + SimDuration::from_millis(50);
        session.tick(dt);
        assert!(session.audio().unwrap().active_visual_message().is_some());
        compose_screen(&session, &mut screen, PaginateConfig::default()).unwrap();
        let loud_ink = screen.framebuffer().extract(screen.display_region()).unwrap().count_ink();
        assert!(loud_ink > quiet_ink * 2, "{quiet_ink} -> {loud_ink}");
    }

    #[test]
    fn resolve_figure_convention() {
        let object = medical_report(ObjectId::new(1), 1);
        assert!(resolve_figure(&object, "img0").is_some());
        assert!(resolve_figure(&object, "img99").is_none());
        assert!(resolve_figure(&object, "xray").is_none());
    }
}
