//! The chaos-schedule orchestrator — E17.
//!
//! A [`ChaosSchedule`] is a seeded, declarative list of failures —
//! crashes, restarts, gray slowdowns, partitions, latent bit rot — that
//! replays identically across the bench harness and the tests. The
//! orchestrator ([`simulate_chaos_workload`]) drives the self-healing
//! fleet through the schedule:
//!
//! * kernel-timer heartbeats feed the [`HealthMonitor`]; a member that
//!   stops echoing walks `Up → Suspect → Down`, its in-flight pages are
//!   re-aimed at live siblings, and every replica it held is owed to the
//!   [`RepairQueue`];
//! * the repair queue drains one task per [`KernelEvent::RepairDue`]
//!   timer — the serial spacing is the throttle that keeps rebuild
//!   traffic (charged to the real device and link timelines) from
//!   starving foreground audio;
//! * a low-rate scrub pass walks one member per [`KernelEvent::DeadlineFired`]
//!   tick; any page failing its publish-time CRC — found by the scrub or
//!   by an ordinary read — is healed from a verified sibling before the
//!   page is re-served (read-repair);
//! * an audio-class page submitted to a member the detector has marked
//!   [`MemberHealth::Slow`] arms a [`KernelEvent::HedgeFire`] timer: if
//!   the original answer has not landed when the hedge delay expires, a
//!   speculative duplicate goes to a sibling and the first valid answer
//!   wins, the loser suppressed.
//!
//! The run ends only after every page delivered byte-identical, the
//! repair queue drained, and a final frozen-media sweep healed every
//! remaining rotten page — the [`ChaosReport`] pins all of it.

use crate::fleet::{Fleet, HealthMonitor, MemberHealth, RepairQueue, RepairTask, Replica};
use crate::kernel::{Kernel, KernelEvent};
use minos_net::{
    crc32, BufferPool, Frame, FramePayload, Link, Priority, ServerRequest, ServerResponse,
};
use minos_server::ServiceConfig;
use minos_types::{ByteSpan, MinosError, ObjectId, Result, SimDuration, SimInstant};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// One declared failure in a [`ChaosSchedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// The member crashes at `at`: it stops answering anything (its
    /// volatile queues are stranded; its media survives) until a
    /// matching [`ChaosEvent::RestartAt`].
    CrashAt {
        /// Fleet index of the crashing member.
        member: usize,
        /// Crash instant.
        at: SimInstant,
    },
    /// The member restarts at `at`: its epoch bumps, its volatile queues
    /// clear, and it answers again.
    RestartAt {
        /// Fleet index of the restarting member.
        member: usize,
        /// Restart instant.
        at: SimInstant,
    },
    /// Gray failure: between `from` and `to` the member still answers,
    /// but every service and heartbeat charge is multiplied by `factor`.
    SlowBetween {
        /// Fleet index of the slow member.
        member: usize,
        /// Window start (inclusive).
        from: SimInstant,
        /// Window end (exclusive).
        to: SimInstant,
        /// Latency multiplier (≥ 1).
        factor: u64,
    },
    /// Between `from` and `to` the member is unreachable from the
    /// workstation side: requests queue but neither they nor responses
    /// cross until the partition heals.
    PartitionBetween {
        /// Fleet index of the partitioned member.
        member: usize,
        /// Window start (inclusive).
        from: SimInstant,
        /// Window end (exclusive).
        to: SimInstant,
    },
    /// Latent media decay on the member's optical disk, applied at run
    /// start: each read flips a bit within the read span with
    /// probability `rate_ppm` per million.
    BitRot {
        /// Fleet index of the decaying member.
        member: usize,
        /// Per-read flip probability in parts per million.
        rate_ppm: u32,
    },
}

impl ChaosEvent {
    /// The fleet member the event targets.
    pub fn member(&self) -> usize {
        match *self {
            ChaosEvent::CrashAt { member, .. }
            | ChaosEvent::RestartAt { member, .. }
            | ChaosEvent::SlowBetween { member, .. }
            | ChaosEvent::PartitionBetween { member, .. }
            | ChaosEvent::BitRot { member, .. } => member,
        }
    }
}

/// Injection accounting of one schedule, cleared wholesale by
/// [`ChaosSchedule::reset_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Crash events admitted.
    pub crashes: u64,
    /// Restart events admitted.
    pub restarts: u64,
    /// Gray-slowdown windows admitted.
    pub slow_windows: u64,
    /// Partition windows admitted.
    pub partitions: u64,
    /// Members given a latent bit-rot rate.
    pub rot_members: u64,
}

/// A seeded, declarative failure schedule.
///
/// Events are declared in chronological order per member (queries fold
/// the list in declaration order) and replay identically for equal
/// seeds — the same schedule drives the E17 bench rows and the
/// integration tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosSchedule {
    seed: u64,
    events: Vec<ChaosEvent>,
    stats: ChaosStats,
}

impl ChaosSchedule {
    /// An empty schedule deriving all randomness (bit-rot draws) from
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosSchedule { seed, events: Vec::new(), stats: ChaosStats::default() }
    }

    /// The schedule's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The declared events, in declaration order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Admits one event; the schedule is bounded by its declaration —
    /// events only enter through the typed builders below.
    fn admit_event(&mut self, event: ChaosEvent) {
        match event {
            ChaosEvent::CrashAt { .. } => self.stats.crashes += 1,
            ChaosEvent::RestartAt { .. } => self.stats.restarts += 1,
            ChaosEvent::SlowBetween { .. } => self.stats.slow_windows += 1,
            ChaosEvent::PartitionBetween { .. } => self.stats.partitions += 1,
            ChaosEvent::BitRot { .. } => self.stats.rot_members += 1,
        }
        self.events.push(event);
    }

    /// Declares a crash of `member` at `at`.
    pub fn crash_at(mut self, member: usize, at: SimInstant) -> Self {
        self.admit_event(ChaosEvent::CrashAt { member, at });
        self
    }

    /// Declares a restart of `member` at `at`.
    pub fn restart_at(mut self, member: usize, at: SimInstant) -> Self {
        self.admit_event(ChaosEvent::RestartAt { member, at });
        self
    }

    /// Declares a gray slowdown of `member` by `factor` between `from`
    /// and `to`.
    pub fn slow_between(
        mut self,
        member: usize,
        from: SimInstant,
        to: SimInstant,
        factor: u64,
    ) -> Self {
        self.admit_event(ChaosEvent::SlowBetween { member, from, to, factor: factor.max(1) });
        self
    }

    /// Declares a partition of `member` between `from` and `to`.
    pub fn partition_between(mut self, member: usize, from: SimInstant, to: SimInstant) -> Self {
        self.admit_event(ChaosEvent::PartitionBetween { member, from, to });
        self
    }

    /// Declares latent bit rot on `member`'s media at `rate_ppm` flips
    /// per million reads.
    pub fn bit_rot(mut self, member: usize, rate_ppm: u32) -> Self {
        self.admit_event(ChaosEvent::BitRot { member, rate_ppm });
        self
    }

    /// Whether `member` is crashed (and not yet restarted) at `now`.
    pub fn is_down(&self, member: usize, now: SimInstant) -> bool {
        let mut down = false;
        for event in &self.events {
            match *event {
                ChaosEvent::CrashAt { member: m, at } if m == member && at <= now => down = true,
                ChaosEvent::RestartAt { member: m, at } if m == member && at <= now => {
                    down = false;
                }
                _ => {}
            }
        }
        down
    }

    /// Whether `member` is partitioned from the workstation at `now`.
    pub fn is_partitioned(&self, member: usize, now: SimInstant) -> bool {
        self.events.iter().any(|event| {
            matches!(*event, ChaosEvent::PartitionBetween { member: m, from, to }
                if m == member && from <= now && now < to)
        })
    }

    /// The latency multiplier in force on `member` at `now` (1 outside
    /// every declared window; the largest covering window wins).
    pub fn slow_factor(&self, member: usize, now: SimInstant) -> u64 {
        self.events
            .iter()
            .filter_map(|event| match *event {
                ChaosEvent::SlowBetween { member: m, from, to, factor }
                    if m == member && from <= now && now < to =>
                {
                    Some(factor)
                }
                _ => None,
            })
            .max()
            .unwrap_or(1)
    }

    /// The latent bit-rot rate declared for `member`, in flips per
    /// million reads (0 when the media is clean).
    pub fn rot_rate_ppm(&self, member: usize) -> u32 {
        self.events
            .iter()
            .filter_map(|event| match *event {
                ChaosEvent::BitRot { member: m, rate_ppm } if m == member => Some(rate_ppm),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Injection accounting.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Clears the injection accounting (the declared events survive).
    pub fn reset_stats(&mut self) {
        self.stats = ChaosStats::default();
    }
}

/// Configuration of one [`simulate_chaos_workload`] run.
#[derive(Clone, Debug)]
pub struct ChaosWorkloadConfig {
    /// Fleet size.
    pub members: usize,
    /// Copies stored per object.
    pub replication: usize,
    /// Concurrent page-reader sessions.
    pub sessions: usize,
    /// Leading sessions that read at audio priority, are latency-tracked,
    /// and are eligible for hedged reads.
    pub audio_sessions: usize,
    /// Demand pages each session reads.
    pub pages_per_session: usize,
    /// Bytes per page (also the publish-time checksum granularity).
    pub page_len: u64,
    /// The failure schedule to replay.
    pub schedule: ChaosSchedule,
    /// Hedge delay for audio pages aimed at a `Slow` member; `None`
    /// disables hedging.
    pub hedge_delay: Option<SimDuration>,
    /// Heartbeat interval of the health monitor.
    pub heartbeat: SimDuration,
    /// Scrub cadence (one member per tick, round-robin); `None` disables
    /// the background scrub (read-repair still heals what reads surface).
    pub scrub_interval: Option<SimDuration>,
    /// Spacing between repair tasks — the re-replication throttle.
    pub repair_spacing: SimDuration,
    /// Admission-control policy applied to every member.
    pub service: ServiceConfig,
}

/// What one [`simulate_chaos_workload`] run measured — the E17 report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosReport {
    /// Wall-clock time until the last demand page was delivered.
    pub elapsed: SimDuration,
    /// Demand pages delivered byte-identical.
    pub pages: u64,
    /// Pages the run failed to deliver — pinned zero.
    pub lost_pages: u64,
    /// Bytes moved over the shared link (pages, heartbeats, repairs).
    pub bytes: u64,
    /// 99th-percentile submit-to-delivery latency of the audio pages.
    pub audio_p99: SimDuration,
    /// Speculative duplicates fired at siblings of `Slow` members.
    pub hedges_fired: u64,
    /// Hedges whose duplicate beat the original answer.
    pub hedge_wins: u64,
    /// Late answers discarded because the page was already delivered
    /// (hedge losers and post-partition stragglers).
    pub duplicates_suppressed: u64,
    /// Members the detector declared down.
    pub down_transitions: u64,
    /// Gray-failure (`Slow`) declarations the detector made.
    pub slow_transitions: u64,
    /// Restart epochs the heartbeats noticed and resynced.
    pub epoch_resyncs: u64,
    /// Pages re-aimed at a sibling after a down declaration or resync.
    pub replays: u64,
    /// Re-replication tasks completed.
    pub repairs_completed: u64,
    /// Bytes rebuilt by re-replication.
    pub repair_bytes: u64,
    /// Pages checksum-verified by scrub passes (in-run and final sweep).
    pub scrub_pages: u64,
    /// Corrupt pages scrub passes detected.
    pub scrub_detected: u64,
    /// Copies healed from a sibling (scrub heals and final sweep).
    pub scrub_heals: u64,
    /// Served pages whose CRC failed and were healed then re-served.
    pub read_repairs: u64,
    /// Bits the decaying media actually flipped.
    pub bit_rot_flips: u64,
    /// Corrupt pages remaining after the final heal sweep — pinned zero.
    pub final_corrupt_pages: u64,
    /// Deferred Busy resubmissions that left early — pinned zero.
    pub premature_busy_retries: u64,
    /// Whether every object ended the run with its full replication
    /// factor on distinct, live members.
    pub replication_ok: bool,
}

/// Demand-page window each session keeps in flight.
const SESSION_WINDOW: usize = 2;
/// The scrub timer's `DeadlineFired` correlation key (schedule events use
/// their index, far below this).
const SCRUB_KEY: u64 = u64::MAX;
/// Round budget before the run is declared wedged.
const MAX_ROUNDS: u32 = 500_000;

/// The per-session byte pattern — session-distinct so a page served from
/// the wrong object or offset can never verify.
fn chaos_pattern(session: usize, offset: u64) -> u8 {
    ((offset + session as u64 * 17) % 241) as u8
}

/// Whether the workstation can currently exchange frames with `member`.
fn reachable(schedule: &ChaosSchedule, member: usize, now: SimInstant) -> bool {
    !schedule.is_down(member, now) && !schedule.is_partitioned(member, now)
}

/// Runs the E17 chaos workload: the E16 fleet demand-page loop with the
/// schedule's failures injected and the self-healing machinery — health
/// heartbeats, proactive re-replication, scrub with read-repair, hedged
/// audio reads — switched on. See the module docs for the moving parts;
/// see [`ChaosReport`] for what is pinned.
pub fn simulate_chaos_workload(config: ChaosWorkloadConfig) -> Result<ChaosReport> {
    let ChaosWorkloadConfig {
        members,
        replication,
        sessions,
        audio_sessions,
        pages_per_session,
        page_len,
        schedule,
        hedge_delay,
        heartbeat,
        scrub_interval,
        repair_spacing,
        service,
    } = config;
    if sessions == 0 || pages_per_session == 0 || page_len == 0 {
        return Err(MinosError::Internal("workload needs sessions, pages, and bytes".into()));
    }
    if heartbeat == SimDuration::ZERO {
        return Err(MinosError::Internal("the chaos harness requires a heartbeat".into()));
    }
    if let Some(bad) = schedule.events().iter().find(|e| e.member() >= members) {
        return Err(MinosError::Internal(format!(
            "schedule event {bad:?} targets a member outside the fleet of {members}"
        )));
    }
    let audio_sessions = audio_sessions.min(sessions);
    let object_of = |s: usize| ObjectId::new(s as u64 + 1);

    let mut fleet = Fleet::new(members, replication)?;
    fleet.set_service_config(service);
    fleet.prewarm_payloads(BufferPool::DEFAULT_RETAIN_CAP, page_len as usize);
    for s in 0..sessions {
        let data: Vec<u8> =
            (0..pages_per_session as u64 * page_len).map(|i| chaos_pattern(s, i)).collect();
        fleet.publish_paged(object_of(s), &data, page_len)?;
    }
    // Latent decay starts with the run, seeded per member off the
    // schedule seed.
    for m in 0..members {
        let ppm = schedule.rot_rate_ppm(m);
        if ppm > 0 {
            let seed = schedule.seed() ^ (m as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            fleet
                .member_mut(m)
                .expect("rot members validated above")
                .archiver_mut()
                .device_mut()
                .set_bit_rot(seed, ppm as f64 / 1_000_000.0);
        }
    }

    let mut link = Link::ethernet();
    // Heartbeat round trip on an idle wire — the baseline a gray member's
    // multiplied echo is compared against.
    let base_rtt_us = {
        let ping = Frame::request(0, 0, ServerRequest::Ping { nonce: 0 });
        let pong = Frame::response(0, 0, ServerResponse::Pong { nonce: 0, epoch: 0 });
        (link.transfer_cost(ping.wire_size()) + link.transfer_cost(pong.wire_size())).as_micros()
    };

    /// One submitted demand page: who asked, which page, which member
    /// currently owes the answer, and the original submit instant (kept
    /// across replays, deferrals, and hedges — the p99 measures what the
    /// listener felt).
    struct InFlightPage {
        session: usize,
        page: usize,
        member: usize,
        issued: SimInstant,
    }

    let mut up_free = SimInstant::EPOCH;
    let mut down_free = SimInstant::EPOCH;
    let mut dev_free = vec![SimInstant::EPOCH; members];
    let mut kernel = Kernel::new();
    let mut health = HealthMonitor::new(members);
    let mut repairs = RepairQueue::new();
    let mut repair_idle = true;
    let mut arrivals: HashMap<u64, SimInstant> = HashMap::new();
    let mut inflight: HashMap<u64, InFlightPage> = HashMap::new();
    let mut deferred: HashMap<u64, SimInstant> = HashMap::new();
    // Hedge pairing: original ↔ speculative duplicate, both ways.
    let mut hedge_partner: HashMap<u64, u64> = HashMap::new();
    let mut hedge_of: HashMap<u64, u64> = HashMap::new();
    // Responses in flight down the wire: polling a member reserves the
    // timelines and parks the response here; it is consumed by a
    // `ResponseLanded` timer at its own delivery timestamp.
    let mut landing: HashMap<u64, (Frame, SimInstant)> = HashMap::new();
    let mut next_landing = 0u64;
    let mut dirty: Vec<BTreeSet<u64>> = (0..members).map(|_| BTreeSet::new()).collect();
    let mut epochs: Vec<u64> = (0..members).map(|m| fleet.epoch(m)).collect();
    let mut todo: Vec<VecDeque<usize>> =
        (0..sessions).map(|_| (0..pages_per_session).collect()).collect();
    let mut outstanding = vec![0usize; sessions];
    let mut session_free = vec![SimInstant::EPOCH; sessions];
    let mut next_rid = 1u64;
    let mut last_delivered = SimInstant::EPOCH;
    let mut delivered = 0u64;
    let mut replays = 0u64;
    let mut epoch_resyncs = 0u64;
    let mut hedges_fired = 0u64;
    let mut hedge_wins = 0u64;
    let mut duplicates_suppressed = 0u64;
    let mut scrub_pages = 0u64;
    let mut scrub_detected = 0u64;
    let mut scrub_heals = 0u64;
    let mut read_repairs = 0u64;
    let mut premature_busy_retries = 0u64;
    let mut scrub_cursor = 0usize;
    let mut audio_lat: Vec<SimDuration> = Vec::with_capacity(audio_sessions * pages_per_session);

    // Timers: heartbeats per member, the scrub cadence, restart events
    // (crashes and slowdowns are pure time queries), and a wake at every
    // partition heal so stranded frames drain.
    for m in 0..members {
        kernel.arm(SimInstant::EPOCH + heartbeat, KernelEvent::HealthTick { member: m as u64 });
    }
    if let Some(interval) = scrub_interval {
        kernel.arm(SimInstant::EPOCH + interval, KernelEvent::DeadlineFired { key: SCRUB_KEY });
    }
    for (idx, event) in schedule.events().iter().enumerate() {
        match *event {
            ChaosEvent::RestartAt { at, .. } => {
                kernel.arm(at, KernelEvent::DeadlineFired { key: idx as u64 });
            }
            ChaosEvent::PartitionBetween { member, to, .. } => {
                kernel.arm(to, KernelEvent::ServerWake { member: member as u64 });
            }
            _ => {}
        }
    }

    // Picks the live replica that should serve `page` of `s`'s object:
    // the block-spread holder when it is healthy, else the first live
    // holder after it on the ring.
    let pick_target = |fleet: &Fleet,
                       health: &HealthMonitor,
                       s: usize,
                       page: usize,
                       now: SimInstant|
     -> Option<Replica> {
        let placement = fleet.placement(object_of(s))?;
        let replicas = placement.replicas();
        let preferred = replicas[page * replicas.len() / pages_per_session];
        let mut candidate = preferred;
        for _ in 0..replicas.len() {
            if reachable(&schedule, candidate.member, now) && !health.is_down(candidate.member) {
                return Some(candidate);
            }
            candidate = placement.next_after(candidate.member);
        }
        Some(preferred)
    };

    let mut rounds = 0u32;
    while todo.iter().any(|q| !q.is_empty())
        || outstanding.iter().any(|&o| o > 0)
        || !repairs.is_empty()
        || !repair_idle
    {
        rounds += 1;
        if rounds > MAX_ROUNDS {
            return Err(MinosError::Internal("chaos workload failed to converge".into()));
        }
        // Submissions: each session tops its window back up; the window
        // is the admission bound (at most SESSION_WINDOW logical pages
        // per session in flight; hedges ride on their original's slot).
        let mut submitted = false;
        for s in 0..sessions {
            while outstanding[s] < SESSION_WINDOW {
                let Some(page) = todo[s].pop_front() else {
                    break;
                };
                outstanding[s] += 1;
                submitted = true;
                let rid = next_rid;
                next_rid += 1;
                let now = up_free.max(down_free);
                let target = pick_target(&fleet, &health, s, page, now)
                    .expect("published objects have placements");
                let span = ByteSpan::at(target.span.start + page as u64 * page_len, page_len);
                let priority = if s < audio_sessions { Priority::Audio } else { Priority::Demand };
                let frame = Frame::request_with_priority(
                    s as u64 + 1,
                    rid,
                    priority,
                    ServerRequest::FetchSpan { span },
                );
                // The page is asked for the instant its window slot freed
                // (the previous delivery), not at the idle uplink
                // frontier — the latency clock starts when the listener
                // started waiting.
                let issued = session_free[s];
                let arrival = up_free.max(issued) + link.transfer(frame.wire_size());
                up_free = arrival;
                arrivals.insert(rid, arrival);
                inflight
                    .insert(rid, InFlightPage { session: s, page, member: target.member, issued });
                fleet
                    .member_mut(target.member)
                    .expect("replica indices are in range")
                    .enqueue(frame)?;
                dirty[target.member].insert(s as u64 + 1);
                kernel.arm(arrival, KernelEvent::ServerWake { member: target.member as u64 });
                // An audio page aimed at a gray member gets a hedge timer:
                // if the answer has not landed by then, a duplicate goes
                // to a sibling.
                if let Some(delay) = hedge_delay {
                    if s < audio_sessions && health.state(target.member) == MemberHealth::Slow {
                        kernel.arm(issued + delay, KernelEvent::HedgeFire { request_id: rid });
                    }
                }
            }
        }

        let mut progressed = false;
        loop {
            // Release timers in deadline order: each handler must see a
            // clock near its own deadline, not the far edge of the last
            // bulk transfer — a heartbeat judged at a leaped-ahead clock
            // would warm its latency baseline inside a slow window and
            // never detect the gray member.
            let event = match kernel.take_ready() {
                Some(event) => event,
                None => {
                    let target = up_free.max(down_free);
                    match kernel.next_deadline() {
                        Some(deadline) if deadline <= target => {
                            kernel.advance_to(deadline);
                            continue;
                        }
                        _ => break,
                    }
                }
            };
            match event {
                KernelEvent::ServerWake { member } => {
                    let m = member as usize;
                    if m >= members || !reachable(&schedule, m, kernel.now()) {
                        kernel.note_spurious();
                        continue;
                    }
                    let mut conns: Vec<u64> = dirty[m].iter().copied().collect();
                    dirty[m].clear();
                    loop {
                        for conn in conns.drain(..) {
                            while let Some((frame, charge)) = fleet
                                .member_mut(m)
                                .expect("wake events name fleet members")
                                .poll_conn(conn)
                            {
                                progressed = true;
                                let rid = frame.request_id;
                                let arrival = arrivals.remove(&rid).unwrap_or(up_free);
                                // A gray member is slow at everything: its
                                // device charge scales with the window in
                                // force at service time.
                                let factor = schedule.slow_factor(m, arrival);
                                let charge = SimDuration::from_micros(
                                    charge.as_micros().saturating_mul(factor),
                                );
                                let done = arrival.max(dev_free[m]) + charge;
                                dev_free[m] = done;
                                // The wire charge rides on the device
                                // completion rather than a strict frontier:
                                // responses are reserved in poll order, and
                                // a frontier would force every later poll —
                                // including a hedge racing a slow member —
                                // to land after every earlier one. The
                                // devices are the bottleneck by an order of
                                // magnitude, so overlapping transfers cost
                                // nothing observable.
                                let at = done + link.transfer(frame.wire_size());
                                down_free = down_free.max(at);
                                // Deliver at the response's own timestamp,
                                // not at this wake: a hedge timer falling
                                // between the two must still see the page
                                // in flight, or a hedge could never race
                                // the member it hedges against.
                                let seq = next_landing;
                                next_landing += 1;
                                landing.insert(seq, (frame, at));
                                kernel.arm(
                                    at,
                                    KernelEvent::ResponseLanded { conn: m as u64, request_id: seq },
                                );
                            }
                        }
                        conns = fleet
                            .member_mut(m)
                            .expect("wake events name fleet members")
                            .take_woken();
                        if conns.is_empty() {
                            break;
                        }
                    }
                }
                KernelEvent::ResponseLanded { conn, request_id } => {
                    let m = conn as usize;
                    let Some((frame, at)) = landing.remove(&request_id) else {
                        kernel.note_spurious();
                        continue;
                    };
                    progressed = true;
                    let rid = frame.request_id;
                    last_delivered = last_delivered.max(at);
                    if !inflight.contains_key(&rid) {
                        // A hedge loser or a post-partition
                        // straggler: the page already landed
                        // through another path.
                        duplicates_suppressed += 1;
                        if let FramePayload::Response(ServerResponse::Span(bytes)) = frame.payload {
                            fleet
                                .member_mut(m)
                                .expect("wake events name fleet members")
                                .recycle_payload(bytes);
                        }
                        continue;
                    }
                    let meta = inflight.get(&rid).expect("checked above");
                    let (s, page, issued) = (meta.session, meta.page, meta.issued);
                    let FramePayload::Response(response) = frame.payload else {
                        continue;
                    };
                    match response {
                        ServerResponse::Span(bytes) => {
                            let want = fleet
                                .checksums(object_of(s))
                                .and_then(|c| c.crcs.get(page))
                                .copied();
                            let clean =
                                bytes.len() as u64 == page_len && want == Some(crc32(&bytes));
                            if clean {
                                let from = page as u64 * page_len;
                                if !bytes
                                    .iter()
                                    .enumerate()
                                    .all(|(i, &b)| b == chaos_pattern(s, from + i as u64))
                                {
                                    return Err(MinosError::Internal(format!(
                                        "session {s} page {page} passed its CRC \
                                                     with foreign bytes"
                                    )));
                                }
                                let was_hedge = hedge_of.contains_key(&rid);
                                let partner =
                                    hedge_partner.remove(&rid).or_else(|| hedge_of.remove(&rid));
                                if let Some(other) = partner {
                                    inflight.remove(&other);
                                    hedge_partner.remove(&other);
                                    hedge_of.remove(&other);
                                    if was_hedge {
                                        hedge_wins += 1;
                                    }
                                }
                                inflight.remove(&rid);
                                outstanding[s] -= 1;
                                session_free[s] = session_free[s].max(at);
                                delivered += 1;
                                if s < audio_sessions {
                                    audio_lat.push(at.saturating_since(issued));
                                }
                            } else {
                                // Read-repair: the stored copy
                                // rotted. Heal it from a
                                // verified sibling, then
                                // re-serve from the fresh span.
                                read_repairs += 1;
                                let object = object_of(s);
                                let receipt = fleet.heal_copy(object, m)?;
                                let start = at.max(dev_free[receipt.source]);
                                dev_free[receipt.source] = start + receipt.read_time;
                                let moved = dev_free[receipt.source] + link.transfer(receipt.bytes);
                                down_free = down_free.max(moved);
                                dev_free[m] = moved.max(dev_free[m]) + receipt.write_time;
                                let partner =
                                    hedge_partner.remove(&rid).or_else(|| hedge_of.remove(&rid));
                                inflight.remove(&rid);
                                if let Some(other) = partner {
                                    // The partner still owes the
                                    // page; let it race alone.
                                    hedge_partner.remove(&other);
                                    hedge_of.remove(&other);
                                } else {
                                    // Re-serve from the healed
                                    // copy under a fresh id.
                                    let retry = next_rid;
                                    next_rid += 1;
                                    let placement = fleet
                                        .placement(object)
                                        .expect("healed objects stay placed");
                                    let replica = placement
                                        .replicas()
                                        .iter()
                                        .find(|r| r.member == m)
                                        .copied()
                                        .expect("heal keeps the member");
                                    let span = ByteSpan::at(
                                        replica.span.start + page as u64 * page_len,
                                        page_len,
                                    );
                                    let frame = Frame::request_with_priority(
                                        s as u64 + 1,
                                        retry,
                                        if s < audio_sessions {
                                            Priority::Audio
                                        } else {
                                            Priority::Demand
                                        },
                                        ServerRequest::FetchSpan { span },
                                    );
                                    let arrival = up_free + link.transfer(frame.wire_size());
                                    up_free = arrival;
                                    arrivals.insert(retry, arrival);
                                    inflight.insert(
                                        retry,
                                        InFlightPage { session: s, page, member: m, issued },
                                    );
                                    fleet
                                        .member_mut(m)
                                        .expect("wake events name fleet members")
                                        .enqueue(frame)?;
                                    dirty[m].insert(s as u64 + 1);
                                    kernel
                                        .arm(arrival, KernelEvent::ServerWake { member: m as u64 });
                                }
                            }
                            fleet
                                .member_mut(m)
                                .expect("wake events name fleet members")
                                .recycle_payload(bytes);
                        }
                        ServerResponse::Busy { retry_after } => {
                            if hedge_of.contains_key(&rid) {
                                // A turned-away hedge just
                                // dies; the original still
                                // owes the page.
                                let original = hedge_of.remove(&rid);
                                if let Some(orig) = original {
                                    hedge_partner.remove(&orig);
                                }
                                inflight.remove(&rid);
                                continue;
                            }
                            let due = at + retry_after;
                            deferred.insert(rid, due);
                            kernel.arm(due, KernelEvent::RetryDue { request_id: rid, attempt: 0 });
                            // Rotate to a live sibling for the
                            // resubmit.
                            let now = kernel.now();
                            if let Some(next) = pick_target(&fleet, &health, s, page, now) {
                                let p = inflight
                                    .get_mut(&rid)
                                    .expect("meta was just read from inflight");
                                if next.member != p.member {
                                    p.member = next.member;
                                } else {
                                    let placement = fleet
                                        .placement(object_of(s))
                                        .expect("published objects have placements");
                                    p.member = placement.next_after(p.member).member;
                                }
                            }
                        }
                        other => {
                            return Err(MinosError::Internal(format!(
                                "unexpected response {other:?}"
                            )));
                        }
                    }
                }
                KernelEvent::RetryDue { request_id, .. } => {
                    let Some(due) = deferred.remove(&request_id) else {
                        kernel.note_spurious();
                        continue;
                    };
                    if !inflight.contains_key(&request_id) {
                        kernel.note_spurious();
                        continue;
                    }
                    progressed = true;
                    let p = inflight.get(&request_id).expect("checked above");
                    let (s, page, m) = (p.session, p.page, p.member);
                    let placement =
                        fleet.placement(object_of(s)).expect("published objects have placements");
                    let replica = placement
                        .replicas()
                        .iter()
                        .find(|r| r.member == m)
                        .copied()
                        .unwrap_or(placement.next_after(m));
                    let span = ByteSpan::at(replica.span.start + page as u64 * page_len, page_len);
                    let frame = Frame::request_with_priority(
                        s as u64 + 1,
                        request_id,
                        if s < audio_sessions { Priority::Audio } else { Priority::Demand },
                        ServerRequest::FetchSpan { span },
                    );
                    // The resubmission may not leave before the hint
                    // elapses.
                    let leave = up_free.max(due);
                    if leave < due {
                        premature_busy_retries += 1;
                    }
                    let arrival = leave + link.transfer(frame.wire_size());
                    up_free = arrival;
                    arrivals.insert(request_id, arrival);
                    if let Some(meta) = inflight.get_mut(&request_id) {
                        meta.member = replica.member;
                    }
                    fleet
                        .member_mut(replica.member)
                        .expect("replica indices are in range")
                        .enqueue(frame)?;
                    dirty[replica.member].insert(s as u64 + 1);
                    kernel.arm(arrival, KernelEvent::ServerWake { member: replica.member as u64 });
                }
                KernelEvent::HealthTick { member } => {
                    let m = member as usize;
                    if m >= members {
                        kernel.note_spurious();
                        continue;
                    }
                    let now = kernel.now();
                    health.note_ping(m);
                    let mut replay = false;
                    if reachable(&schedule, m, now) {
                        let factor = schedule.slow_factor(m, now);
                        let rtt =
                            SimDuration::from_micros(base_rtt_us.saturating_mul(factor).max(1));
                        health.note_pong(m, rtt);
                        if fleet.epoch(m) != epochs[m] {
                            // The heartbeat noticed a restart: adopt the
                            // new epoch and replay what died with the old
                            // incarnation.
                            epochs[m] = fleet.epoch(m);
                            epoch_resyncs += 1;
                            replay = true;
                        }
                    } else if health.note_miss(m) == MemberHealth::Down {
                        replay = true;
                        // Proactive re-replication: every copy the dead
                        // member held is owed a rebuild. Admission dedups,
                        // so re-declaring the same death is free.
                        for object in fleet.objects_on(m) {
                            if repairs.admit(RepairTask { object, lost: m }) && repair_idle {
                                repair_idle = false;
                                kernel
                                    .arm(now + repair_spacing, KernelEvent::RepairDue { task: 0 });
                            }
                        }
                    }
                    if replay {
                        progressed = true;
                        // Sorted so the replay order never depends on hash
                        // iteration — equal seeds must replay identically.
                        let mut lost: Vec<u64> = inflight
                            .iter()
                            .filter(|(rid, p)| p.member == m && !deferred.contains_key(rid))
                            .map(|(&rid, _)| rid)
                            .collect();
                        lost.sort_unstable();
                        for rid in lost {
                            let p = inflight.get(&rid).expect("rid collected from inflight");
                            let (s, page) = (p.session, p.page);
                            let Some(target) = pick_target(&fleet, &health, s, page, now) else {
                                continue;
                            };
                            if target.member == m {
                                // No live sibling: the page stays owed to
                                // this member until it heals.
                                continue;
                            }
                            replays += 1;
                            let span =
                                ByteSpan::at(target.span.start + page as u64 * page_len, page_len);
                            let frame = Frame::request_with_priority(
                                s as u64 + 1,
                                rid,
                                if s < audio_sessions { Priority::Audio } else { Priority::Demand },
                                ServerRequest::FetchSpan { span },
                            );
                            let arrival = up_free + link.transfer(frame.wire_size());
                            up_free = arrival;
                            arrivals.insert(rid, arrival);
                            if let Some(meta) = inflight.get_mut(&rid) {
                                meta.member = target.member;
                            }
                            fleet
                                .member_mut(target.member)
                                .expect("replica indices are in range")
                                .enqueue(frame)?;
                            dirty[target.member].insert(s as u64 + 1);
                            kernel.arm(
                                arrival,
                                KernelEvent::ServerWake { member: target.member as u64 },
                            );
                        }
                    }
                    kernel.arm(now + heartbeat, KernelEvent::HealthTick { member });
                }
                KernelEvent::HedgeFire { request_id } => {
                    let Some(p) = inflight.get(&request_id) else {
                        kernel.note_spurious();
                        continue;
                    };
                    if hedge_partner.contains_key(&request_id) || deferred.contains_key(&request_id)
                    {
                        kernel.note_spurious();
                        continue;
                    }
                    let (s, page, cur, issued) = (p.session, p.page, p.member, p.issued);
                    let now = kernel.now();
                    let Some(placement) = fleet.placement(object_of(s)).cloned() else {
                        kernel.note_spurious();
                        continue;
                    };
                    // Prefer a live sibling the detector does not consider
                    // gray; settle for any live sibling.
                    let mut pick: Option<Replica> = None;
                    let mut candidate = placement.next_after(cur);
                    for _ in 0..placement.replicas().len() {
                        if candidate.member != cur
                            && reachable(&schedule, candidate.member, now)
                            && !health.is_down(candidate.member)
                        {
                            if health.state(candidate.member) != MemberHealth::Slow {
                                pick = Some(candidate);
                                break;
                            }
                            pick.get_or_insert(candidate);
                        }
                        candidate = placement.next_after(candidate.member);
                    }
                    let Some(sibling) = pick else {
                        kernel.note_spurious();
                        continue;
                    };
                    progressed = true;
                    hedges_fired += 1;
                    let hedge_rid = next_rid;
                    next_rid += 1;
                    hedge_partner.insert(request_id, hedge_rid);
                    hedge_of.insert(hedge_rid, request_id);
                    let span = ByteSpan::at(sibling.span.start + page as u64 * page_len, page_len);
                    let frame = Frame::request_with_priority(
                        s as u64 + 1,
                        hedge_rid,
                        Priority::Audio,
                        ServerRequest::FetchSpan { span },
                    );
                    let arrival = up_free + link.transfer(frame.wire_size());
                    up_free = arrival;
                    arrivals.insert(hedge_rid, arrival);
                    inflight.insert(
                        hedge_rid,
                        InFlightPage { session: s, page, member: sibling.member, issued },
                    );
                    fleet
                        .member_mut(sibling.member)
                        .expect("replica indices are in range")
                        .enqueue(frame)?;
                    dirty[sibling.member].insert(s as u64 + 1);
                    kernel.arm(arrival, KernelEvent::ServerWake { member: sibling.member as u64 });
                }
                KernelEvent::RepairDue { .. } => {
                    let now = kernel.now();
                    let Some(task) = repairs.pop() else {
                        repair_idle = true;
                        kernel.note_spurious();
                        continue;
                    };
                    progressed = true;
                    let holders: Vec<usize> = fleet
                        .placement(task.object)
                        .map(|p| p.replicas().iter().map(|r| r.member).collect())
                        .unwrap_or_default();
                    let mut next_at = now;
                    if holders.contains(&task.lost) {
                        let exclude: Vec<usize> = (0..members)
                            .filter(|&x| schedule.is_down(x, now) || health.is_down(x))
                            .collect();
                        let sources: Vec<usize> = holders
                            .iter()
                            .copied()
                            .filter(|&h| h != task.lost && !exclude.contains(&h))
                            .collect();
                        let target = fleet.ring_successor(task.object, &exclude);
                        let mut done = false;
                        if let Some(target) = target {
                            for source in sources {
                                match fleet.repair_replica(task.object, task.lost, source, target) {
                                    Ok(receipt) => {
                                        // Charge the rebuild where it ran:
                                        // source read, shared wire, target
                                        // append.
                                        let start = now.max(dev_free[source]);
                                        dev_free[source] = start + receipt.read_time;
                                        let moved = dev_free[source] + link.transfer(receipt.bytes);
                                        down_free = down_free.max(moved);
                                        let finished =
                                            moved.max(dev_free[target]) + receipt.write_time;
                                        dev_free[target] = finished;
                                        next_at = finished;
                                        repairs.note_completed(receipt.bytes);
                                        done = true;
                                        break;
                                    }
                                    Err(MinosError::Corrupt(_)) => continue,
                                    Err(_) => break,
                                }
                            }
                        }
                        if !done {
                            repairs.note_failed();
                        }
                    }
                    if repairs.is_empty() {
                        repair_idle = true;
                    } else {
                        // The throttle: one task per spacing, measured
                        // from the previous task's completion.
                        kernel.arm(next_at + repair_spacing, KernelEvent::RepairDue { task: 0 });
                    }
                }
                KernelEvent::DeadlineFired { key } if key == SCRUB_KEY => {
                    let now = kernel.now();
                    let m = scrub_cursor % members;
                    scrub_cursor += 1;
                    let mut finished = now;
                    if reachable(&schedule, m, now) {
                        progressed = true;
                        let report = fleet.scrub_member(m)?;
                        scrub_pages += report.pages;
                        scrub_detected += report.corrupt.len() as u64;
                        dev_free[m] = now.max(dev_free[m]) + report.device_time;
                        let mut objects: Vec<ObjectId> =
                            report.corrupt.iter().map(|c| c.0).collect();
                        objects.dedup();
                        for object in objects {
                            let receipt = fleet.heal_copy(object, m)?;
                            scrub_heals += 1;
                            let start = dev_free[m].max(dev_free[receipt.source]);
                            dev_free[receipt.source] = start + receipt.read_time;
                            let moved = dev_free[receipt.source] + link.transfer(receipt.bytes);
                            down_free = down_free.max(moved);
                            dev_free[m] = moved.max(dev_free[m]) + receipt.write_time;
                        }
                        finished = dev_free[m];
                    }
                    if let Some(interval) = scrub_interval {
                        // Paced off completion, not a wall cadence: a pass
                        // costs real device time, and arming off `now`
                        // would let passes pile onto a device faster than
                        // it can serve them — the interval is the idle gap
                        // between passes.
                        kernel.arm(
                            finished.max(now) + interval,
                            KernelEvent::DeadlineFired { key: SCRUB_KEY },
                        );
                    }
                }
                KernelEvent::DeadlineFired { key } => {
                    match schedule.events().get(key as usize).copied() {
                        Some(ChaosEvent::RestartAt { member, .. }) => {
                            progressed = true;
                            fleet.restart_member(member)?;
                            // The epoch resync (and the replay of what the
                            // old incarnation stranded) happens at the next
                            // heartbeat echo.
                        }
                        _ => kernel.note_spurious(),
                    }
                }
                _ => kernel.note_spurious(),
            }
        }
        if !progressed && !submitted {
            // Nothing moved and nothing new went out: jump simulated time
            // to the next armed deadline (a heartbeat at the latest).
            let Some(deadline) = kernel.next_deadline() else {
                return Err(MinosError::Internal("chaos workload wedged with no timer".into()));
            };
            kernel.advance_to(deadline);
            up_free = up_free.max(kernel.now());
        }
    }

    // Final sweep: freeze the decay, scrub every member's media (a crash
    // loses volatile queues, never media), heal what is found, and prove
    // the archives clean end to end.
    let mut bit_rot_flips = 0u64;
    for m in 0..members {
        let device =
            fleet.member_mut(m).expect("sweep indices are in range").archiver_mut().device_mut();
        device.set_bit_rot(0, 0.0);
        bit_rot_flips += device.bit_rot_flips();
    }
    let mut final_corrupt_pages = 0u64;
    for m in 0..members {
        let sweep = fleet.scrub_member(m)?;
        scrub_pages += sweep.pages;
        scrub_detected += sweep.corrupt.len() as u64;
        let mut objects: Vec<ObjectId> = sweep.corrupt.iter().map(|c| c.0).collect();
        objects.dedup();
        for object in objects {
            fleet.heal_copy(object, m)?;
            scrub_heals += 1;
        }
        let recheck = fleet.scrub_member(m)?;
        final_corrupt_pages += recheck.corrupt.len() as u64;
    }
    let end = kernel.now();
    let want_copies = replication.min(members);
    let mut replication_ok = true;
    for s in 0..sessions {
        let Some(placement) = fleet.placement(object_of(s)) else {
            replication_ok = false;
            continue;
        };
        let holders: BTreeSet<usize> = placement.replicas().iter().map(|r| r.member).collect();
        if holders.len() < want_copies || holders.iter().any(|&h| schedule.is_down(h, end)) {
            replication_ok = false;
        }
    }
    audio_lat.sort_unstable();
    let p99_rank = (audio_lat.len() * 99).div_ceil(100).saturating_sub(1);
    let audio_p99 = audio_lat.get(p99_rank).copied().unwrap_or(SimDuration::ZERO);
    let total_pages = sessions as u64 * pages_per_session as u64;
    let repair_stats = repairs.stats();
    let health_stats = health.stats();
    Ok(ChaosReport {
        elapsed: last_delivered.since(SimInstant::EPOCH),
        pages: delivered,
        lost_pages: total_pages.saturating_sub(delivered),
        bytes: link.stats().bytes,
        audio_p99,
        hedges_fired,
        hedge_wins,
        duplicates_suppressed,
        down_transitions: health_stats.down_transitions,
        slow_transitions: health_stats.slow_transitions,
        epoch_resyncs,
        replays,
        repairs_completed: repair_stats.completed,
        repair_bytes: repair_stats.bytes_rebuilt,
        scrub_pages,
        scrub_detected,
        scrub_heals,
        read_repairs,
        bit_rot_flips,
        final_corrupt_pages,
        premature_busy_retries,
        replication_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_config(seed: u64) -> ChaosWorkloadConfig {
        ChaosWorkloadConfig {
            members: 3,
            replication: 2,
            sessions: 4,
            audio_sessions: 2,
            pages_per_session: 6,
            page_len: 2048,
            schedule: ChaosSchedule::new(seed),
            hedge_delay: Some(SimDuration::from_millis(5)),
            heartbeat: SimDuration::from_millis(2),
            scrub_interval: Some(SimDuration::from_millis(50)),
            repair_spacing: SimDuration::from_millis(2),
            service: ServiceConfig::default(),
        }
    }

    #[test]
    fn schedule_queries_fold_declared_windows() {
        let ms = SimDuration::from_millis;
        let at = |t: u64| SimInstant::EPOCH + ms(t);
        let schedule = ChaosSchedule::new(7)
            .crash_at(0, at(10))
            .restart_at(0, at(20))
            .slow_between(1, at(5), at(15), 8)
            .partition_between(2, at(1), at(3))
            .bit_rot(1, 1000);
        assert!(!schedule.is_down(0, at(9)));
        assert!(schedule.is_down(0, at(10)));
        assert!(schedule.is_down(0, at(19)));
        assert!(!schedule.is_down(0, at(20)));
        assert_eq!(schedule.slow_factor(1, at(4)), 1);
        assert_eq!(schedule.slow_factor(1, at(5)), 8);
        assert_eq!(schedule.slow_factor(1, at(15)), 1);
        assert!(schedule.is_partitioned(2, at(2)));
        assert!(!schedule.is_partitioned(2, at(3)));
        assert_eq!(schedule.rot_rate_ppm(1), 1000);
        assert_eq!(schedule.rot_rate_ppm(0), 0);
        let stats = schedule.stats();
        assert_eq!(
            (
                stats.crashes,
                stats.restarts,
                stats.slow_windows,
                stats.partitions,
                stats.rot_members
            ),
            (1, 1, 1, 1, 1)
        );
        let mut schedule = schedule;
        schedule.reset_stats();
        assert_eq!(schedule.stats(), ChaosStats::default());
        assert_eq!(schedule.events().len(), 5, "reset clears accounting, not events");
    }

    #[test]
    fn clean_schedule_delivers_everything_without_healing() {
        let report = simulate_chaos_workload(clean_config(1)).expect("clean run");
        assert_eq!(report.pages, 24);
        assert_eq!(report.lost_pages, 0);
        assert_eq!(report.read_repairs, 0);
        assert_eq!(report.bit_rot_flips, 0);
        assert_eq!(report.final_corrupt_pages, 0);
        assert_eq!(report.down_transitions, 0);
        assert_eq!(report.premature_busy_retries, 0);
        assert!(report.replication_ok, "{report:?}");
        assert!(report.audio_p99 > SimDuration::ZERO);
        // The scrub walked media even though nothing was wrong.
        assert!(report.scrub_pages > 0);
        assert_eq!(report.scrub_detected, 0);
    }

    #[test]
    fn chaos_runs_are_deterministic_for_equal_seeds() {
        let ms = SimDuration::from_millis;
        let schedule = |seed| {
            ChaosSchedule::new(seed)
                .bit_rot(0, 200_000)
                .crash_at(1, SimInstant::EPOCH + ms(30))
                .restart_at(1, SimInstant::EPOCH + ms(80))
        };
        let config = |seed| ChaosWorkloadConfig { schedule: schedule(seed), ..clean_config(seed) };
        let a = simulate_chaos_workload(config(5)).expect("run a");
        let b = simulate_chaos_workload(config(5)).expect("run b");
        assert_eq!(a, b, "equal seeds must replay identically");
        let c = simulate_chaos_workload(config(6)).expect("run c");
        assert_eq!(c.lost_pages, 0, "a different seed still loses nothing");
    }

    #[test]
    fn crash_without_restart_re_replicates_every_lost_copy() {
        let config = ChaosWorkloadConfig {
            members: 4,
            schedule: ChaosSchedule::new(3)
                .crash_at(1, SimInstant::EPOCH + SimDuration::from_millis(10)),
            ..clean_config(3)
        };
        let report = simulate_chaos_workload(config).expect("crash run");
        assert_eq!(report.lost_pages, 0, "{report:?}");
        assert!(report.down_transitions >= 1, "{report:?}");
        assert!(report.repairs_completed >= 1, "the dead member's copies move: {report:?}");
        assert!(report.replication_ok, "replication restored to k: {report:?}");
        assert_eq!(report.final_corrupt_pages, 0);
        assert_eq!(report.premature_busy_retries, 0);
    }

    #[test]
    fn schedule_validation_rejects_out_of_range_members() {
        let config = ChaosWorkloadConfig {
            schedule: ChaosSchedule::new(1).crash_at(9, SimInstant::EPOCH),
            ..clean_config(1)
        };
        assert!(simulate_chaos_workload(config).is_err());
        let config = ChaosWorkloadConfig { heartbeat: SimDuration::ZERO, ..clean_config(1) };
        assert!(simulate_chaos_workload(config).is_err());
    }
}
