//! The audio-mode browsing engine.
//!
//! The symmetric counterpart of [`crate::visual`]: canonical state is a
//! time position in the object's voice segment, driven by the simulated
//! clock. Page commands act on audio pages; logical commands on the manual
//! voice marks; pattern commands on the recognized utterances ("the same
//! access methods as in text", §2); and the voice-specific commands —
//! interrupt, resume, resume-from-page-start, pause rewind — realize the
//! browsing-near-the-context the paper designs for unedited dictation.
//!
//! Visual logical messages anchored to voice spans are *active* while the
//! position is inside the span ("the visual logical message will stay on
//! display for the duration of the play of each voice segment to which it
//! is attached", §2); voice messages anchored to voice positions fire on
//! entry.

use crate::command::BrowseEvent;
use minos_object::{Anchor, MessageBody, MultimediaObject};
use minos_text::LogicalLevel;
use minos_types::{MinosError, PageNumber, Result, SimDuration, SimInstant, TimeSpan};
use minos_voice::recognize::UtteranceIndex;
use minos_voice::{AudioPages, PauseKind, PlaybackEngine, PlaybackState, VoiceMarks};
use std::collections::HashSet;

/// The audio-mode engine for one voice segment of an object.
#[derive(Clone, Debug)]
pub struct AudioEngine {
    playback: PlaybackEngine,
    marks: VoiceMarks,
    utterances: UtteranceIndex,
    /// (message index, anchor span) of visual messages on this segment.
    visual_anchors: Vec<(usize, TimeSpan)>,
    /// (message index, anchor span/point) of voice messages.
    voice_anchors: Vec<(usize, TimeSpan)>,
    inside_voice: HashSet<usize>,
    active_visual: Option<usize>,
}

impl AudioEngine {
    /// Builds the engine for `object`'s voice segment `segment`, with
    /// audio pages of `page_len`.
    pub fn new(object: &MultimediaObject, segment: usize, page_len: SimDuration) -> Result<Self> {
        let vs = object
            .voice_segments
            .get(segment)
            .ok_or_else(|| MinosError::UnknownComponent(format!("voice segment {segment}")))?;
        let pages = AudioPages::new(vs.duration(), page_len);
        let playback = PlaybackEngine::new(pages, vs.pauses.clone());

        let mut visual_anchors = Vec::new();
        let mut voice_anchors = Vec::new();
        for (i, message) in object.messages.iter().enumerate() {
            let span = match message.anchor {
                Anchor::VoiceSegment { segment: s, span } if s == segment => span,
                Anchor::VoicePoint { segment: s, at } if s == segment => {
                    // A point anchors the short stretch after it.
                    TimeSpan::starting_at(at, SimDuration::from_millis(1))
                }
                _ => continue,
            };
            match &message.body {
                MessageBody::Visual { .. } => visual_anchors.push((i, span)),
                MessageBody::Voice { .. } => voice_anchors.push((i, span)),
            }
        }
        Ok(AudioEngine {
            playback,
            marks: vs.marks.clone(),
            utterances: UtteranceIndex::new(vs.utterances.clone()),
            visual_anchors,
            voice_anchors,
            inside_voice: HashSet::new(),
            active_visual: None,
        })
    }

    /// Current position within the voice part.
    pub fn position(&self) -> SimInstant {
        self.playback.position()
    }

    /// Current playback state.
    pub fn state(&self) -> PlaybackState {
        self.playback.state()
    }

    /// Current audio page (0-based).
    pub fn current_page(&self) -> Option<usize> {
        self.playback.current_page()
    }

    /// Number of audio pages.
    pub fn page_count(&self) -> usize {
        self.playback.pages().page_count()
    }

    /// The transfer plan for continuous playback from the current position:
    /// one archiver span per remaining audio page, dividing `record` (the
    /// object's archived region) evenly across the pages. This is the §5
    /// anticipation input — feed it to a
    /// [`PrefetchBuffer`](crate::prefetch::PrefetchBuffer) so upcoming
    /// pages transfer while the current one plays and playback never
    /// pauses for the network. Empty once playback has finished.
    pub fn transfer_plan(&self, record: minos_types::ByteSpan) -> Vec<minos_types::ByteSpan> {
        let pages = self.page_count();
        if pages == 0 || self.state() == PlaybackState::Finished {
            return Vec::new();
        }
        let current = match self.current_page() {
            Some(p) => p,
            None => return Vec::new(),
        };
        crate::prefetch::page_spans(record, pages).split_off(current)
    }

    /// The visual message currently on display, if any.
    pub fn active_visual_message(&self) -> Option<usize> {
        self.active_visual
    }

    /// Logical levels available (identified marks only).
    pub fn available_levels(&self) -> Vec<LogicalLevel> {
        self.marks.available_levels()
    }

    /// Recomputes message activations after a position change, emitting
    /// transition events.
    fn refresh_messages(&mut self, events: &mut Vec<BrowseEvent>) {
        let t = self.playback.position();
        // Voice messages fire when playback first enters their anchor
        // (point anchors: at or after the point, before re-arming on exit).
        for &(message, span) in &self.voice_anchors {
            let inside = span.contains(t)
                || (span.duration() <= SimDuration::from_millis(1) && t >= span.start);
            if inside && self.inside_voice.insert(message) {
                events.push(BrowseEvent::VoiceMessagePlayed(message));
            } else if !inside && span.duration() > SimDuration::from_millis(1) {
                self.inside_voice.remove(&message);
            }
        }
        // Visual messages stay on display while inside their span.
        let now = self.visual_anchors.iter().find(|(_, span)| span.contains(t)).map(|&(m, _)| m);
        if now != self.active_visual {
            if now.is_none() {
                events.push(BrowseEvent::VisualMessageUnpinned);
            }
            if let Some(m) = now {
                events.push(BrowseEvent::VisualMessagePinned(m));
            }
            self.active_visual = now;
        }
    }

    fn report_position(&mut self) -> Vec<BrowseEvent> {
        let mut events = Vec::new();
        self.refresh_messages(&mut events);
        events.push(BrowseEvent::VoicePosition(self.playback.position()));
        if let Some(p) = self.current_page() {
            events.push(BrowseEvent::PageShown(p));
        }
        events
    }

    /// Starts playback from the beginning.
    pub fn open(&mut self) -> Vec<BrowseEvent> {
        self.playback.play();
        self.report_position()
    }

    /// Advances playback by `dt` of simulated time; reports page crossings
    /// (speech is not interrupted at page ends), message transitions, and
    /// the end of the part.
    pub fn tick(&mut self, dt: SimDuration) -> Vec<BrowseEvent> {
        let crossings = self.playback.tick(dt);
        let mut events: Vec<BrowseEvent> =
            crossings.iter().map(|c| BrowseEvent::CrossedIntoPage(c.to)).collect();
        self.refresh_messages(&mut events);
        if self.playback.state() == PlaybackState::Finished {
            events.push(BrowseEvent::PlaybackFinished);
        }
        events
    }

    /// Interrupts the voice output.
    pub fn interrupt(&mut self) -> Vec<BrowseEvent> {
        self.playback.interrupt();
        vec![BrowseEvent::VoicePosition(self.playback.position())]
    }

    /// Resumes from the current position.
    pub fn resume(&mut self) -> Vec<BrowseEvent> {
        self.playback.play();
        self.report_position()
    }

    /// Resumes from the beginning of the current voice page.
    pub fn resume_page_start(&mut self) -> Vec<BrowseEvent> {
        self.playback.resume_page_start();
        self.report_position()
    }

    /// Replays from `n` `kind` pauses back.
    pub fn rewind_pauses(&mut self, kind: PauseKind, n: usize) -> Vec<BrowseEvent> {
        self.playback.rewind_pauses(kind, n);
        self.report_position()
    }

    /// Next audio page.
    pub fn next_page(&mut self) -> Vec<BrowseEvent> {
        self.playback.next_page();
        self.report_position()
    }

    /// Previous audio page.
    pub fn previous_page(&mut self) -> Vec<BrowseEvent> {
        self.playback.previous_page();
        self.report_position()
    }

    /// Advance several audio pages forth or back.
    pub fn advance_pages(&mut self, delta: i64) -> Vec<BrowseEvent> {
        self.playback.advance_pages(delta);
        self.report_position()
    }

    /// Jump to an audio page by number.
    pub fn goto_page(&mut self, page: PageNumber) -> Vec<BrowseEvent> {
        self.playback.goto_page_number(page);
        self.report_position()
    }

    /// Hear the page with the next start of a logical unit.
    pub fn next_unit(&mut self, level: LogicalLevel) -> Vec<BrowseEvent> {
        match self.marks.next_start_after(level, self.playback.position()) {
            Some(start) => {
                self.playback.seek(start);
                self.playback.play();
                self.report_position()
            }
            None => vec![BrowseEvent::VoicePosition(self.playback.position())],
        }
    }

    /// Hear the page with the previous start of a logical unit.
    pub fn previous_unit(&mut self, level: LogicalLevel) -> Vec<BrowseEvent> {
        match self.marks.prev_start_before(level, self.playback.position()) {
            Some(start) => {
                self.playback.seek(start);
                self.playback.play();
                self.report_position()
            }
            None => vec![BrowseEvent::VoicePosition(self.playback.position())],
        }
    }

    /// Pattern-match browsing over recognized utterances: seeks to the
    /// next occurrence of the (spoken or typed) pattern word.
    pub fn find_pattern(&mut self, pattern: &str) -> Vec<BrowseEvent> {
        match self.utterances.next_occurrence(pattern, self.playback.position()) {
            Some(at) => {
                self.playback.seek(at);
                self.playback.play();
                let mut events = self.report_position();
                let page = self.current_page().unwrap_or(0);
                events.push(BrowseEvent::PatternFound { page });
                events
            }
            None => vec![BrowseEvent::PatternNotFound],
        }
    }

    /// Seeks to an absolute position (relevance targets).
    pub fn seek(&mut self, to: SimInstant) -> Vec<BrowseEvent> {
        self.playback.seek(to);
        self.report_position()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_corpus::audio_xray_report;
    use minos_types::ObjectId;

    fn engine() -> (minos_object::MultimediaObject, AudioEngine) {
        let obj = audio_xray_report(ObjectId::new(1), 7);
        let engine = AudioEngine::new(&obj, 0, SimDuration::from_secs(5)).unwrap();
        (obj, engine)
    }

    #[test]
    fn open_starts_playing_at_zero() {
        let (_, mut e) = engine();
        let events = e.open();
        assert_eq!(e.state(), PlaybackState::Playing);
        assert!(events.contains(&BrowseEvent::VoicePosition(SimInstant::EPOCH)));
        assert!(e.page_count() >= 2, "dictation should span several audio pages");
    }

    #[test]
    fn ticking_crosses_pages_and_finishes() {
        let (_, mut e) = engine();
        e.open();
        let events = e.tick(SimDuration::from_secs(6));
        assert!(events.iter().any(|ev| matches!(ev, BrowseEvent::CrossedIntoPage(1))));
        let events = e.tick(SimDuration::from_secs(500));
        assert!(events.contains(&BrowseEvent::PlaybackFinished));
    }

    #[test]
    fn transfer_plan_covers_remaining_pages() {
        let (_, mut e) = engine();
        e.open();
        let record = minos_types::ByteSpan::at(5_000, 100_000);
        let plan = e.transfer_plan(record);
        assert_eq!(plan.len(), e.page_count());
        assert_eq!(plan[0].start, record.start);
        assert_eq!(plan.last().unwrap().end, record.end);
        // Mid-playback the plan shrinks to the pages still ahead.
        e.tick(SimDuration::from_secs(6));
        let plan = e.transfer_plan(record);
        assert_eq!(plan.len(), e.page_count() - e.current_page().unwrap());
        assert_eq!(plan.last().unwrap().end, record.end);
        // Finished playback needs nothing more.
        e.tick(SimDuration::from_secs(500));
        assert!(e.transfer_plan(record).is_empty());
    }

    #[test]
    fn xray_appears_during_finding_paragraph_only() {
        let (obj, mut e) = engine();
        e.open();
        let finding_start = obj.voice_segments[0].transcript.paragraph_starts[1];
        // Before the finding: no visual message.
        assert_eq!(e.active_visual_message(), None);
        let events = e.seek(finding_start + SimDuration::from_millis(10));
        assert!(
            events.contains(&BrowseEvent::VisualMessagePinned(0)),
            "x-ray not shown: {events:?}"
        );
        assert_eq!(e.active_visual_message(), Some(0));
        // After the finding paragraph: removed.
        let para3 = obj.voice_segments[0].transcript.paragraph_starts[2];
        let events = e.seek(para3 + SimDuration::from_millis(10));
        assert!(events.contains(&BrowseEvent::VisualMessageUnpinned));
        assert_eq!(e.active_visual_message(), None);
    }

    #[test]
    fn branching_into_the_finding_also_shows_it() {
        // "if the user during his browsing branches at some section of the
        // speech which relates to the x-ray, the x-ray will automatically
        // be displayed" (§3).
        let (obj, mut e) = engine();
        e.open();
        let finding = obj.voice_segments[0].transcript.paragraph_starts[1];
        e.goto_page(PageNumber::FIRST);
        let events = e.seek(finding + SimDuration::from_millis(5));
        assert!(events.contains(&BrowseEvent::VisualMessagePinned(0)));
    }

    #[test]
    fn interrupt_resume_and_page_restart() {
        let (_, mut e) = engine();
        e.open();
        e.tick(SimDuration::from_secs(7));
        e.interrupt();
        assert_eq!(e.state(), PlaybackState::Interrupted);
        let pos = e.position();
        e.resume();
        assert_eq!(e.state(), PlaybackState::Playing);
        assert_eq!(e.position(), pos);
        e.resume_page_start();
        assert_eq!(e.position(), SimInstant::EPOCH + SimDuration::from_secs(5));
    }

    #[test]
    fn pause_rewind_moves_backwards() {
        let (_, mut e) = engine();
        e.open();
        e.tick(SimDuration::from_secs(8));
        let before = e.position();
        e.rewind_pauses(PauseKind::Short, 2);
        assert!(e.position() < before);
    }

    #[test]
    fn logical_browsing_uses_marks() {
        let (obj, mut e) = engine();
        e.open();
        let events = e.next_unit(LogicalLevel::Paragraph);
        let para2 = obj.voice_segments[0].transcript.paragraph_starts[1];
        assert_eq!(e.position(), para2);
        assert!(events.iter().any(|ev| matches!(ev, BrowseEvent::VoicePosition(_))));
        e.previous_unit(LogicalLevel::Paragraph);
        assert_eq!(e.position(), obj.voice_segments[0].transcript.paragraph_starts[0]);
        assert!(e.available_levels().contains(&LogicalLevel::Sentence));
    }

    #[test]
    fn pattern_browsing_seeks_recognized_utterances() {
        let (obj, mut e) = engine();
        e.open();
        let events = e.find_pattern("shadow");
        match events.iter().find(|ev| matches!(ev, BrowseEvent::PatternFound { .. })) {
            Some(_) => {
                // Landed on a recognized "shadow" utterance.
                let seg = &obj.voice_segments[0];
                assert!(seg.utterances.iter().any(|u| u.at == e.position()));
            }
            None => panic!("pattern not found: {events:?}"),
        }
        // Unknown pattern.
        assert_eq!(e.find_pattern("zebra"), vec![BrowseEvent::PatternNotFound]);
    }

    #[test]
    fn page_navigation_is_symmetric_with_text() {
        let (_, mut e) = engine();
        e.open();
        e.next_page();
        assert_eq!(e.current_page(), Some(1));
        e.advance_pages(2);
        assert_eq!(e.current_page(), Some(3));
        e.previous_page();
        assert_eq!(e.current_page(), Some(2));
        e.goto_page(PageNumber::FIRST);
        assert_eq!(e.current_page(), Some(0));
    }

    #[test]
    fn missing_segment_is_an_error() {
        let obj = audio_xray_report(ObjectId::new(2), 1);
        assert!(AudioEngine::new(&obj, 3, SimDuration::from_secs(5)).is_err());
    }
}
