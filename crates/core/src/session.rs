//! The browsing session: driving-mode dispatch, menus, and relevant-object
//! navigation.
//!
//! One session browses one object at a time, but keeps a stack: selecting a
//! relevant object indicator pushes the target object ("The user can browse
//! through the information of the relevant object by using the driving mode
//! of the relevant object"), and returning pops it, re-establishing the
//! parent's browsing state exactly where it was — "At this point the mode
//! of browsing of the parent object is reestablished." (§2)

use crate::audio::AudioEngine;
use crate::command::{BrowseCommand, BrowseEvent};
use crate::visual::{VisualEngine, VisualView};
use minos_object::{relevant, DrivingMode, MultimediaObject, RelevantLink};
use minos_screen::{Menu, MenuItem};
use minos_text::PaginateConfig;
use minos_types::{Decoder, Encoder, MinosError, ObjectId, Result, SimDuration, SimInstant};
use minos_voice::PlaybackState;
use std::collections::HashMap;

/// Source of multimedia objects for relevant-object navigation.
pub trait ObjectStore {
    /// Fetches an archived object by id.
    fn fetch(&mut self, id: ObjectId) -> Result<MultimediaObject>;

    /// Observes the objects the user is likely to request next — the
    /// targets of the relevant-object indicators currently on screen.
    /// Remote stores prefetch them (§5 anticipation); the default ignores
    /// the hint, and a wrong hint can only ever waste transfer, never
    /// change what `fetch` returns.
    fn note_upcoming(&mut self, _targets: &[ObjectId]) {}
}

impl ObjectStore for HashMap<ObjectId, MultimediaObject> {
    fn fetch(&mut self, id: ObjectId) -> Result<MultimediaObject> {
        self.get(&id).cloned().ok_or_else(|| MinosError::UnknownObject(id.to_string()))
    }
}

/// The per-object engine, chosen by the object's driving mode.
#[derive(Clone, Debug)]
enum ModeEngine {
    Visual(Box<VisualEngine>),
    Audio(Box<AudioEngine>),
}

/// Checkpoint of one stack frame: the object, where browsing stood in
/// it, and the presentation state a rebuilt engine cannot rederive.
#[derive(Clone, Debug, PartialEq, Eq)]
struct FrameCheckpoint {
    /// The browsed object (the driving mode — and hence the meaning of
    /// `position` — is rederived from the refetched object).
    object: ObjectId,
    /// Visual: character offset. Audio: playback position in µs.
    position: u64,
    /// Audio only: whether playback was running (a checkpoint taken
    /// mid-interrupt must resume interrupted).
    playing: bool,
    /// Visual only: show-once messages already displayed.
    shown_once: Vec<usize>,
}

/// Wire flag: the frame's audio playback was running at checkpoint time.
const CHECKPOINT_PLAYING: u8 = 1;

/// A compact, codec'd snapshot of a [`BrowsingSession`]'s browsing state:
/// the relevant-object stack bottom-up, each frame's position, and the
/// presentation state a rebuilt engine cannot rederive. Everything else —
/// pagination, menus, message anchors — is a pure function of the objects
/// and is rebuilt on [`BrowsingSession::resume`], so the record stays a
/// few dozen bytes no matter how large the browsed documents are.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionCheckpoint {
    frames: Vec<FrameCheckpoint>,
}

/// Version byte leading every encoded checkpoint record.
const CHECKPOINT_VERSION: u8 = 1;

impl SessionCheckpoint {
    /// Nesting depth recorded in the snapshot.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The object ids on the recorded stack, bottom-up.
    pub fn objects(&self) -> Vec<ObjectId> {
        self.frames.iter().map(|f| f.object).collect()
    }

    /// Encodes the snapshot to its wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(CHECKPOINT_VERSION);
        e.put_varint(self.frames.len() as u64);
        for frame in &self.frames {
            e.put_varint(frame.object.raw());
            e.put_varint(frame.position);
            e.put_u8(if frame.playing { CHECKPOINT_PLAYING } else { 0 });
            e.put_varint(frame.shown_once.len() as u64);
            for &m in &frame.shown_once {
                e.put_varint(m as u64);
            }
        }
        e.finish()
    }

    /// Decodes a snapshot, rejecting unknown versions, unknown flag bits,
    /// and trailing bytes with typed errors.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(bytes);
        let version = d.get_u8()?;
        if version != CHECKPOINT_VERSION {
            return Err(MinosError::Codec(format!("unknown checkpoint version {version}")));
        }
        let count = d.get_len()?;
        if count == 0 {
            return Err(MinosError::Codec("checkpoint records an empty stack".into()));
        }
        let mut frames = Vec::new();
        for _ in 0..count {
            let object = ObjectId::new(d.get_varint()?);
            let position = d.get_varint()?;
            let flags = d.get_u8()?;
            if flags & !CHECKPOINT_PLAYING != 0 {
                return Err(MinosError::Codec(format!("unknown checkpoint flags {flags:#x}")));
            }
            let shown = d.get_len()?;
            let mut shown_once = Vec::with_capacity(shown);
            for _ in 0..shown {
                let index = usize::try_from(d.get_varint()?).map_err(|_| {
                    MinosError::Codec("checkpoint message index overflows usize".into())
                })?;
                shown_once.push(index);
            }
            frames.push(FrameCheckpoint {
                object,
                position,
                playing: flags & CHECKPOINT_PLAYING != 0,
                shown_once,
            });
        }
        d.expect_end()?;
        Ok(SessionCheckpoint { frames })
    }
}

#[derive(Clone, Debug)]
struct Frame {
    object: MultimediaObject,
    engine: ModeEngine,
}

/// A browsing session over an object store.
pub struct BrowsingSession<S: ObjectStore> {
    store: S,
    stack: Vec<Frame>,
    config: PaginateConfig,
    audio_page_len: SimDuration,
}

impl<S: ObjectStore> BrowsingSession<S> {
    /// Opens a session on `id`, returning the session and the initial
    /// presentation events.
    pub fn open(
        mut store: S,
        id: ObjectId,
        config: PaginateConfig,
        audio_page_len: SimDuration,
    ) -> Result<(Self, Vec<BrowseEvent>)> {
        let object = store.fetch(id)?;
        let mut session = BrowsingSession { store, stack: Vec::new(), config, audio_page_len };
        let events = session.push_object(object)?;
        session.announce_upcoming();
        Ok((session, events))
    }

    /// Snapshots the browsing state: the relevant-object stack bottom-up
    /// with each frame's position and presentation state. The snapshot
    /// holds ids, not objects — [`BrowsingSession::resume`] refetches them,
    /// so a record survives a server restart as long as the archive does.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        let frames = self
            .stack
            .iter()
            .map(|frame| match &frame.engine {
                ModeEngine::Visual(e) => FrameCheckpoint {
                    object: frame.object.id,
                    position: u64::from(e.position()),
                    playing: false,
                    shown_once: e.shown_once(),
                },
                ModeEngine::Audio(e) => FrameCheckpoint {
                    object: frame.object.id,
                    position: e.position().since(SimInstant::EPOCH).as_micros(),
                    playing: e.state() == PlaybackState::Playing,
                    shown_once: Vec::new(),
                },
            })
            .collect();
        SessionCheckpoint { frames }
    }

    /// Resumes a session from `checkpoint`: refetches every stacked object
    /// bottom-up, rebuilds its engine, and seeks it back to the recorded
    /// position — restoring show-once suppression and playback state, so
    /// the resumed session presents byte-identically to the one that was
    /// checkpointed. Entry/seek events are swallowed: nothing "happened"
    /// from the user's point of view, the session simply continues.
    pub fn resume(
        store: S,
        checkpoint: &SessionCheckpoint,
        config: PaginateConfig,
        audio_page_len: SimDuration,
    ) -> Result<Self> {
        if checkpoint.frames.is_empty() {
            return Err(MinosError::WrongState("checkpoint records an empty stack".into()));
        }
        let mut session = BrowsingSession { store, stack: Vec::new(), config, audio_page_len };
        for frame in &checkpoint.frames {
            let object = session.store.fetch(frame.object)?;
            if !object.is_archived() {
                return Err(MinosError::WrongState(format!(
                    "{} is not archived; browsing applies to archived objects",
                    object.id
                )));
            }
            let mut engine = session.build_engine(&object)?;
            match &mut engine {
                ModeEngine::Visual(e) => {
                    let position = u32::try_from(frame.position).map_err(|_| {
                        MinosError::Codec(format!(
                            "visual position {} exceeds the document range",
                            frame.position
                        ))
                    })?;
                    e.restore_shown_once(&frame.shown_once);
                    let _ = e.seek(position);
                }
                ModeEngine::Audio(e) => {
                    let _ = e.seek(SimInstant::EPOCH + SimDuration::from_micros(frame.position));
                    if frame.playing {
                        let _ = e.resume();
                    }
                }
            }
            session.stack.push(Frame { object, engine });
        }
        session.announce_upcoming();
        Ok(session)
    }

    /// Reports the visible relevant-object targets to the store so it can
    /// anticipate the user's next selection.
    fn announce_upcoming(&mut self) {
        let targets: Vec<ObjectId> =
            self.visible_relevant().iter().map(|(_, link)| link.target).collect();
        self.store.note_upcoming(&targets);
    }

    fn build_engine(&self, object: &MultimediaObject) -> Result<ModeEngine> {
        Ok(match object.driving_mode {
            DrivingMode::Visual => {
                ModeEngine::Visual(Box::new(VisualEngine::new(object, 0, self.config)?))
            }
            DrivingMode::Audio => {
                ModeEngine::Audio(Box::new(AudioEngine::new(object, 0, self.audio_page_len)?))
            }
        })
    }

    fn push_object(&mut self, object: MultimediaObject) -> Result<Vec<BrowseEvent>> {
        if !object.is_archived() {
            return Err(MinosError::WrongState(format!(
                "{} is not archived; browsing applies to archived objects",
                object.id
            )));
        }
        let mut engine = self.build_engine(&object)?;
        let events = match &mut engine {
            ModeEngine::Visual(e) => e.open(),
            ModeEngine::Audio(e) => e.open(),
        };
        self.stack.push(Frame { object, engine });
        Ok(events)
    }

    fn top(&self) -> &Frame {
        self.stack.last().expect("session always has an open object")
    }

    fn top_mut(&mut self) -> &mut Frame {
        self.stack.last_mut().expect("session always has an open object")
    }

    /// The object currently browsed.
    pub fn object(&self) -> &MultimediaObject {
        &self.top().object
    }

    /// The underlying object store (accounting, prefetch state).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable store access (schedulers drain landed transfers here).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Nesting depth (1 = the originally opened object).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The current visual view (visual-mode objects only).
    pub fn visual_view(&self) -> Option<VisualView> {
        match &self.top().engine {
            ModeEngine::Visual(e) => Some(e.view()),
            ModeEngine::Audio(_) => None,
        }
    }

    /// The exact character position of the visual engine (visual-mode
    /// objects only).
    pub fn visual_position(&self) -> Option<u32> {
        match &self.top().engine {
            ModeEngine::Visual(e) => Some(e.position()),
            ModeEngine::Audio(_) => None,
        }
    }

    /// The audio engine (audio-mode objects only).
    pub fn audio(&self) -> Option<&AudioEngine> {
        match &self.top().engine {
            ModeEngine::Audio(e) => Some(e),
            ModeEngine::Visual(_) => None,
        }
    }

    /// The relevant links whose indicator is visible at the current
    /// browsing position. Links anchored to images are visible whenever the
    /// object displays images (the map case of Figures 7–8).
    pub fn visible_relevant(&self) -> Vec<(usize, &RelevantLink)> {
        let frame = self.top();
        let links = &frame.object.relevant;
        let mut indices: Vec<usize> = match &frame.engine {
            ModeEngine::Visual(e) => relevant::links_at_text(links, 0, e.position()),
            ModeEngine::Audio(e) => relevant::links_at_voice(links, 0, e.position()),
        };
        for image in 0..frame.object.images.len() {
            for i in relevant::links_at_image(links, image) {
                if !indices.contains(&i) {
                    indices.push(i);
                }
            }
        }
        indices.sort_unstable();
        indices.into_iter().map(|i| (i, &links[i])).collect()
    }

    /// Derives the menu for the current object and position: "The menu
    /// options which are displayed define the set of available
    /// operations." (§2)
    pub fn menu(&self) -> Menu {
        let frame = self.top();
        let mut items = vec![
            MenuItem::new("next page"),
            MenuItem::new("previous page"),
            MenuItem::new("advance pages"),
            MenuItem::new("goto page"),
            MenuItem::new("find pattern"),
        ];
        let levels = match &frame.engine {
            ModeEngine::Visual(_) => frame.object.available_logical_levels(),
            ModeEngine::Audio(e) => e.available_levels(),
        };
        for level in levels {
            items.push(MenuItem::new(format!("next {level}")));
            items.push(MenuItem::new(format!("previous {level}")));
        }
        if matches!(frame.engine, ModeEngine::Audio(_)) {
            items.push(MenuItem::new("interrupt"));
            items.push(MenuItem::new("resume"));
            items.push(MenuItem::new("resume page start"));
            items.push(MenuItem::new("rewind short pauses"));
            items.push(MenuItem::new("rewind long pauses"));
        }
        for (_, link) in self.visible_relevant() {
            items.push(MenuItem::new(format!("relevant: {}", link.label)));
        }
        if self.depth() > 1 {
            items.push(MenuItem::new("return from relevant object"));
        }
        Menu::new(items)
    }

    /// Applies a browsing command.
    pub fn apply(&mut self, command: BrowseCommand) -> Result<Vec<BrowseEvent>> {
        let events = self.dispatch(command)?;
        // Whatever the command changed (page, object, mode), the now-
        // visible indicators are the store's prefetch hint.
        self.announce_upcoming();
        Ok(events)
    }

    fn dispatch(&mut self, command: BrowseCommand) -> Result<Vec<BrowseEvent>> {
        match command {
            BrowseCommand::SelectRelevant(n) => return self.select_relevant(n),
            BrowseCommand::ReturnFromRelevant => return self.return_from_relevant(),
            _ => {}
        }
        let frame = self.top_mut();
        let events = match (&mut frame.engine, command) {
            (ModeEngine::Visual(e), BrowseCommand::NextPage) => e.next_page(),
            (ModeEngine::Visual(e), BrowseCommand::PreviousPage) => e.previous_page(),
            (ModeEngine::Visual(e), BrowseCommand::AdvancePages(d)) => e.advance_pages(d),
            (ModeEngine::Visual(e), BrowseCommand::GotoPage(p)) => e.goto_page(p),
            (ModeEngine::Visual(e), BrowseCommand::NextUnit(l)) => e.next_unit(l),
            (ModeEngine::Visual(e), BrowseCommand::PreviousUnit(l)) => e.previous_unit(l),
            (ModeEngine::Visual(e), BrowseCommand::FindPattern(p)) => e.find_pattern(&p),
            (ModeEngine::Visual(_), cmd) => {
                return Err(MinosError::OperationUnavailable(format!(
                    "{cmd:?} is a voice operation; this object drives visually"
                )))
            }
            (ModeEngine::Audio(e), BrowseCommand::NextPage) => e.next_page(),
            (ModeEngine::Audio(e), BrowseCommand::PreviousPage) => e.previous_page(),
            (ModeEngine::Audio(e), BrowseCommand::AdvancePages(d)) => e.advance_pages(d),
            (ModeEngine::Audio(e), BrowseCommand::GotoPage(p)) => e.goto_page(p),
            (ModeEngine::Audio(e), BrowseCommand::NextUnit(l)) => e.next_unit(l),
            (ModeEngine::Audio(e), BrowseCommand::PreviousUnit(l)) => e.previous_unit(l),
            (ModeEngine::Audio(e), BrowseCommand::FindPattern(p)) => e.find_pattern(&p),
            (ModeEngine::Audio(e), BrowseCommand::Interrupt) => e.interrupt(),
            (ModeEngine::Audio(e), BrowseCommand::Resume) => e.resume(),
            (ModeEngine::Audio(e), BrowseCommand::ResumePageStart) => e.resume_page_start(),
            (ModeEngine::Audio(e), BrowseCommand::RewindPauses(kind, n)) => {
                e.rewind_pauses(kind, n)
            }
            // Relevant navigation was dispatched above.
            (_, BrowseCommand::SelectRelevant(_)) | (_, BrowseCommand::ReturnFromRelevant) => {
                unreachable!("handled before engine dispatch")
            }
        };
        Ok(events)
    }

    /// Advances simulated time (audio playback, message durations).
    pub fn tick(&mut self, dt: SimDuration) -> Vec<BrowseEvent> {
        match &mut self.top_mut().engine {
            ModeEngine::Audio(e) => e.tick(dt),
            ModeEngine::Visual(_) => Vec::new(),
        }
    }

    /// Explicitly selects the `n`-th visible relevant object indicator.
    fn select_relevant(&mut self, n: usize) -> Result<Vec<BrowseEvent>> {
        let target = {
            let visible = self.visible_relevant();
            let (_, link) = visible.get(n).ok_or_else(|| {
                MinosError::OperationUnavailable(format!("no relevant object indicator {n} here"))
            })?;
            link.target
        };
        let object = self.store.fetch(target)?;
        let mut events = vec![BrowseEvent::EnteredRelevant(target)];
        events.extend(self.push_object(object)?);
        Ok(events)
    }

    /// Explicitly returns from the current relevant object.
    fn return_from_relevant(&mut self) -> Result<Vec<BrowseEvent>> {
        if self.stack.len() <= 1 {
            return Err(MinosError::OperationUnavailable("not inside a relevant object".into()));
        }
        self.stack.pop();
        let parent = self.top().object.id;
        let mut events = vec![BrowseEvent::ReturnedToParent(parent)];
        // Re-announce the restored page so UIs repaint.
        match &self.top().engine {
            ModeEngine::Visual(e) => events.push(BrowseEvent::PageShown(e.view().page_index)),
            ModeEngine::Audio(e) => {
                events.push(BrowseEvent::PageShown(e.current_page().unwrap_or(0)))
            }
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_corpus::{audio_xray_report, medical_report, subway_map_object};

    use minos_voice::PauseKind;

    fn store() -> HashMap<ObjectId, MultimediaObject> {
        let mut map = HashMap::new();
        let report = medical_report(ObjectId::new(1), 42);
        map.insert(report.id, report);
        let dictation = audio_xray_report(ObjectId::new(2), 7);
        map.insert(dictation.id, dictation);
        let (parent, overlays) =
            subway_map_object(ObjectId::new(3), ObjectId::new(4), ObjectId::new(5), 11);
        map.insert(parent.id, parent);
        for o in overlays {
            map.insert(o.id, o);
        }
        map
    }

    fn open(id: u64) -> (BrowsingSession<HashMap<ObjectId, MultimediaObject>>, Vec<BrowseEvent>) {
        BrowsingSession::open(
            store(),
            ObjectId::new(id),
            PaginateConfig::default(),
            SimDuration::from_secs(5),
        )
        .unwrap()
    }

    #[test]
    fn open_visual_object_shows_page_zero() {
        let (session, events) = open(1);
        assert!(events.contains(&BrowseEvent::PageShown(0)));
        assert!(session.visual_view().is_some());
        assert!(session.audio().is_none());
        assert_eq!(session.depth(), 1);
    }

    #[test]
    fn open_audio_object_starts_playback() {
        let (session, _) = open(2);
        assert!(session.audio().is_some());
        assert!(session.visual_view().is_none());
        assert_eq!(session.audio().unwrap().state(), minos_voice::PlaybackState::Playing);
    }

    #[test]
    fn same_commands_drive_both_modes() {
        for id in [1u64, 2] {
            let (mut session, _) = open(id);
            for cmd in [
                BrowseCommand::NextPage,
                BrowseCommand::PreviousPage,
                BrowseCommand::AdvancePages(2),
                BrowseCommand::FindPattern("shadow".into()),
            ] {
                session
                    .apply(cmd.clone())
                    .unwrap_or_else(|e| panic!("command {cmd:?} failed on object {id}: {e}"));
            }
        }
    }

    #[test]
    fn voice_commands_rejected_on_visual_objects() {
        let (mut session, _) = open(1);
        for cmd in [
            BrowseCommand::Interrupt,
            BrowseCommand::Resume,
            BrowseCommand::ResumePageStart,
            BrowseCommand::RewindPauses(PauseKind::Short, 1),
        ] {
            assert!(
                matches!(session.apply(cmd.clone()), Err(MinosError::OperationUnavailable(_))),
                "{cmd:?} should be unavailable"
            );
        }
    }

    #[test]
    fn voice_commands_work_on_audio_objects() {
        let (mut session, _) = open(2);
        session.tick(SimDuration::from_secs(8));
        session.apply(BrowseCommand::Interrupt).unwrap();
        session.apply(BrowseCommand::RewindPauses(PauseKind::Short, 2)).unwrap();
        session.apply(BrowseCommand::Resume).unwrap();
    }

    #[test]
    fn menu_reflects_driving_mode_and_structure() {
        let (visual, _) = open(1);
        let labels: Vec<String> = visual.menu().items().iter().map(|i| i.label.clone()).collect();
        assert!(labels.contains(&"next page".to_string()));
        assert!(labels.contains(&"next chapter".to_string()));
        assert!(!labels.contains(&"interrupt".to_string()));

        let (audio, _) = open(2);
        let labels: Vec<String> = audio.menu().items().iter().map(|i| i.label.clone()).collect();
        assert!(labels.contains(&"interrupt".to_string()));
        assert!(labels.contains(&"rewind short pauses".to_string()));
        assert!(labels.contains(&"next paragraph".to_string()));
        assert!(!labels.contains(&"next chapter".to_string())); // only paragraph/sentence marked
    }

    #[test]
    fn relevant_indicators_appear_on_the_map() {
        let (session, _) = open(3);
        let visible = session.visible_relevant();
        assert_eq!(visible.len(), 2);
        assert_eq!(visible[0].1.label, "hospitals");
        let labels: Vec<String> = session.menu().items().iter().map(|i| i.label.clone()).collect();
        assert!(labels.contains(&"relevant: hospitals".to_string()));
    }

    #[test]
    fn select_and_return_from_relevant_object() {
        let (mut session, _) = open(3);
        let events = session.apply(BrowseCommand::SelectRelevant(0)).unwrap();
        assert!(events.contains(&BrowseEvent::EnteredRelevant(ObjectId::new(4))));
        assert_eq!(session.depth(), 2);
        assert_eq!(session.object().id, ObjectId::new(4));
        // The menu now offers the return option.
        let labels: Vec<String> = session.menu().items().iter().map(|i| i.label.clone()).collect();
        assert!(labels.contains(&"return from relevant object".to_string()));

        let events = session.apply(BrowseCommand::ReturnFromRelevant).unwrap();
        assert!(events.contains(&BrowseEvent::ReturnedToParent(ObjectId::new(3))));
        assert_eq!(session.depth(), 1);
        assert_eq!(session.object().id, ObjectId::new(3));
    }

    #[test]
    fn parent_browsing_state_is_reestablished() {
        let (mut session, _) = open(1);
        session.apply(BrowseCommand::NextPage).unwrap();
        session.apply(BrowseCommand::NextPage).unwrap();
        let page_before = session.visual_view().unwrap().page_index;
        // The report has no relevant links, so fake a round trip through
        // the map: open it as a second session instead.
        // (State restoration proper is covered via the subway object.)
        let (mut map_session, _) = open(3);
        map_session.apply(BrowseCommand::SelectRelevant(1)).unwrap();
        map_session.apply(BrowseCommand::NextPage).unwrap();
        map_session.apply(BrowseCommand::ReturnFromRelevant).unwrap();
        assert_eq!(map_session.object().id, ObjectId::new(3));
        let _ = page_before;
    }

    #[test]
    fn return_at_top_level_is_unavailable() {
        let (mut session, _) = open(1);
        assert!(matches!(
            session.apply(BrowseCommand::ReturnFromRelevant),
            Err(MinosError::OperationUnavailable(_))
        ));
    }

    #[test]
    fn selecting_missing_indicator_fails() {
        let (mut session, _) = open(1);
        assert!(session.apply(BrowseCommand::SelectRelevant(0)).is_err());
    }

    #[test]
    fn unknown_object_fails_to_open() {
        let result = BrowsingSession::open(
            store(),
            ObjectId::new(404),
            PaginateConfig::default(),
            SimDuration::from_secs(5),
        );
        assert!(result.is_err());
    }

    #[test]
    fn checkpoint_round_trips_through_the_codec() {
        let (mut session, _) = open(3);
        session.apply(BrowseCommand::SelectRelevant(1)).unwrap();
        session.apply(BrowseCommand::NextPage).unwrap();
        let checkpoint = session.checkpoint();
        assert_eq!(checkpoint.depth(), 2);
        assert_eq!(checkpoint.objects(), vec![ObjectId::new(3), ObjectId::new(5)]);
        let decoded = SessionCheckpoint::decode(&checkpoint.encode()).unwrap();
        assert_eq!(decoded, checkpoint);
    }

    #[test]
    fn mutated_checkpoints_fail_typed() {
        let (session, _) = open(1);
        let bytes = session.checkpoint().encode();
        // Truncation, a bumped version byte, unknown flag bits, and
        // trailing garbage all fail typed — never a panic, never a
        // silently different session.
        for cut in 0..bytes.len() {
            assert!(SessionCheckpoint::decode(&bytes[..cut]).is_err(), "truncated at {cut}");
        }
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 9;
        assert!(matches!(SessionCheckpoint::decode(&wrong_version), Err(MinosError::Codec(_))));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(SessionCheckpoint::decode(&trailing).is_err());
    }

    #[test]
    fn resumed_visual_session_presents_byte_identically() {
        let (mut session, _) = open(1);
        session.apply(BrowseCommand::NextPage).unwrap();
        session.apply(BrowseCommand::NextPage).unwrap();
        let checkpoint = session.checkpoint();
        let resumed = BrowsingSession::resume(
            store(),
            &SessionCheckpoint::decode(&checkpoint.encode()).unwrap(),
            PaginateConfig::default(),
            SimDuration::from_secs(5),
        )
        .unwrap();
        assert_eq!(resumed.depth(), session.depth());
        assert_eq!(resumed.object().id, session.object().id);
        assert_eq!(resumed.visual_position(), session.visual_position());
        assert_eq!(resumed.visual_view().unwrap().page, session.visual_view().unwrap().page);
        assert_eq!(resumed.menu(), session.menu());
    }

    #[test]
    fn resume_restores_the_relevant_object_stack() {
        let (mut session, _) = open(3);
        session.apply(BrowseCommand::SelectRelevant(0)).unwrap();
        let checkpoint = session.checkpoint();
        let mut resumed = BrowsingSession::resume(
            store(),
            &checkpoint,
            PaginateConfig::default(),
            SimDuration::from_secs(5),
        )
        .unwrap();
        assert_eq!(resumed.depth(), 2);
        assert_eq!(resumed.object().id, ObjectId::new(4));
        // The parent's browsing state was reestablished too: returning
        // lands on the map exactly as the original session would.
        let expect = session.apply(BrowseCommand::ReturnFromRelevant).unwrap();
        let got = resumed.apply(BrowseCommand::ReturnFromRelevant).unwrap();
        assert_eq!(got, expect);
        assert_eq!(resumed.object().id, ObjectId::new(3));
    }

    #[test]
    fn resume_restores_audio_position_and_interrupt_state() {
        let (mut session, _) = open(2);
        session.tick(SimDuration::from_secs(8));
        session.apply(BrowseCommand::Interrupt).unwrap();
        let interrupted = session.checkpoint();
        let resumed = BrowsingSession::resume(
            store(),
            &interrupted,
            PaginateConfig::default(),
            SimDuration::from_secs(5),
        )
        .unwrap();
        let original = session.audio().unwrap();
        let restored = resumed.audio().unwrap();
        assert_eq!(restored.position(), original.position());
        assert_eq!(restored.state(), minos_voice::PlaybackState::Interrupted);

        // And a checkpoint taken while playing resumes playing: the next
        // tick advances both sessions identically.
        session.apply(BrowseCommand::Resume).unwrap();
        let playing = session.checkpoint();
        let mut resumed = BrowsingSession::resume(
            store(),
            &playing,
            PaginateConfig::default(),
            SimDuration::from_secs(5),
        )
        .unwrap();
        assert_eq!(resumed.audio().unwrap().state(), minos_voice::PlaybackState::Playing);
        let expect = session.tick(SimDuration::from_secs(3));
        let got = resumed.tick(SimDuration::from_secs(3));
        assert_eq!(got, expect);
        assert_eq!(resumed.audio().unwrap().position(), session.audio().unwrap().position());
    }

    #[test]
    fn resume_preserves_show_once_suppression() {
        // Browsing into the x-ray pins it once; paging away and back must
        // not re-pin it — and neither may a resume that crosses the same
        // position.
        let (mut session, _) = open(1);
        let mut pinned_pages = 0;
        for _ in 0..6 {
            let events = session.apply(BrowseCommand::NextPage).unwrap();
            if events.iter().any(|e| matches!(e, BrowseEvent::VisualMessagePinned(_))) {
                pinned_pages += 1;
            }
        }
        let checkpoint = session.checkpoint();
        let mut resumed = BrowsingSession::resume(
            store(),
            &checkpoint,
            PaginateConfig::default(),
            SimDuration::from_secs(5),
        )
        .unwrap();
        // Walk both sessions back to the front and forward again: the
        // suppression state must agree at every step.
        for _ in 0..6 {
            let expect = session.apply(BrowseCommand::PreviousPage).unwrap();
            let got = resumed.apply(BrowseCommand::PreviousPage).unwrap();
            assert_eq!(got, expect);
        }
        for _ in 0..6 {
            let expect = session.apply(BrowseCommand::NextPage).unwrap();
            let got = resumed.apply(BrowseCommand::NextPage).unwrap();
            assert_eq!(got, expect);
        }
        let _ = pinned_pages;
    }

    #[test]
    fn resume_with_missing_object_fails_typed() {
        let (session, _) = open(1);
        let checkpoint = session.checkpoint();
        let empty: HashMap<ObjectId, MultimediaObject> = HashMap::new();
        assert!(matches!(
            BrowsingSession::resume(
                empty,
                &checkpoint,
                PaginateConfig::default(),
                SimDuration::from_secs(5),
            ),
            Err(MinosError::UnknownObject(_))
        ));
    }

    #[test]
    fn relevant_object_uses_its_own_driving_mode() {
        // Push an audio relevant object under a visual parent.
        let mut map = store();
        let mut parent = medical_report(ObjectId::new(10), 1);
        // Rebuild as editing to add a link (generator archives).
        let mut fresh = MultimediaObject::new(ObjectId::new(10), "parent", DrivingMode::Visual);
        fresh.text_segments = parent.text_segments.clone();
        fresh.relevant.push(minos_object::RelevantLink {
            label: "dictation".into(),
            target: ObjectId::new(2),
            anchor: minos_object::Anchor::TextSegment {
                segment: 0,
                span: minos_types::CharSpan::new(0, fresh.text_segments[0].len()),
            },
            relevances: vec![],
        });
        fresh.archive().unwrap();
        parent = fresh;
        map.insert(parent.id, parent);

        let (mut session, _) = BrowsingSession::open(
            map,
            ObjectId::new(10),
            PaginateConfig::default(),
            SimDuration::from_secs(5),
        )
        .unwrap();
        assert!(session.visual_view().is_some());
        session.apply(BrowseCommand::SelectRelevant(0)).unwrap();
        // Now browsing the audio dictation with audio semantics.
        assert!(session.audio().is_some());
        session.apply(BrowseCommand::Interrupt).unwrap();
        session.apply(BrowseCommand::ReturnFromRelevant).unwrap();
        assert!(session.visual_view().is_some());
    }
}
