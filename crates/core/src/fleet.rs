//! A sharded fleet of object servers with replica failover.
//!
//! The paper's architecture puts "the multimedia object server subsystems"
//! — plural — behind the presentation manager: a workstation talks to
//! *several* dedicated servers over the shared broadcast link (§2, §5).
//! This module grows the single [`ObjectServer`] of the earlier
//! experiments into that fleet:
//!
//! * **Placement** is deterministic rendezvous (highest-random-weight)
//!   hashing: every member scores each object id, and the object's replica
//!   set is the top `k` scorers. No directory, no rebalancing chatter —
//!   any client derives the same placement from the id alone.
//! * **Replication** stores each object on `k` members; a request picks a
//!   replica by request id, spreading one object's pages across its
//!   replica set.
//! * **Failover** rides the epoch handshake from the restart protocol: a
//!   member restart bumps its epoch, the fleet transport re-handshakes
//!   `Hello`/`Welcome`, and every in-flight request aimed at the dead
//!   incarnation is replayed — verbatim, from the pooled bytes encoded at
//!   submit time — onto the *next* replica in the object's rendezvous
//!   ring instead of back onto the member that just lost it.
//!
//! [`FleetConnection`] is the client: one shared uplink/downlink (the
//! paper's broadcast bus), one device timeline per member, and the same
//! window/deadline/retry discipline as the single-endpoint
//! [`Connection`](crate::remote). A server that answers
//! [`ServerResponse::Busy`] gets honored, not hammered: the turned-away
//! request parks on a kernel timer until the server's own `retry_after`
//! hint elapses, then resubmits — to a sibling replica when one exists.
//!
//! [`simulate_fleet_workload`] is the E16 harness: M sessions demand-page
//! against N members through the shared link, wake-list-driven via
//! [`KernelEvent::ServerWake`], with an optional mid-run member restart to
//! pin that replicated pages survive a crash byte-identical.
//!
//! On top of the reactive failover sits the self-healing layer:
//!
//! * **Health monitoring** — [`HealthMonitor`] runs kernel-timer-driven
//!   `Ping`/`Pong` heartbeats with a per-member `Up → Suspect → Down`
//!   state machine, plus a `Slow` gray-failure state derived from each
//!   member's own rolling latency baseline. The `Pong { epoch }` echo
//!   also closes the idle-connection gap: a restart is noticed at the
//!   next heartbeat, not at the next submit.
//! * **Proactive re-replication** — a member declared `Down` feeds the
//!   [`RepairQueue`]; each lost replica is rebuilt from a surviving,
//!   checksum-verified copy onto its ring successor
//!   ([`Fleet::repair_replica`]), restoring the replication factor
//!   *before* a second fault can lose pages.
//! * **Scrub and read-repair** — every publish stores per-page CRCs
//!   ([`PageChecksums`]); [`Fleet::scrub_member`] walks a member's
//!   archive verifying them, and [`Fleet::heal_copy`] re-homes a corrupt
//!   copy from a verified sibling (a fresh WORM append — optical media
//!   cannot be patched in place).

use crate::kernel::{Kernel, KernelEvent, TimerId};
use crate::prefetch::page_spans;
use crate::remote::{Landed, PendingFrame, TransportStats};
use minos_net::{
    crc32, BufferPool, FaultPlan, FaultyLink, Frame, FramePayload, InflightWindow, Link, Priority,
    ServerRequest, ServerResponse,
};
use minos_server::{ObjectServer, ServiceConfig, ServiceStats};
use minos_types::{ByteSpan, MinosError, ObjectId, Result, SimClock, SimDuration, SimInstant};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// The fleet transport multiplexes every request over one logical
/// connection id — members tell requests apart by request id, which the
/// transport keeps globally unique.
const FLEET_CONN: u64 = 1;

/// Default in-flight window of a [`FleetConnection`].
const DEFAULT_WINDOW: usize = 32;

/// Default per-request deadline (see [`Connection`](crate::remote): the
/// sim serves every surviving frame by the time a caller waits on it, so
/// the deadline only fires on genuine loss).
const DEFAULT_TIMEOUT: SimDuration = SimDuration::from_millis(500);

/// Default retransmission budget before a request expires inline.
const DEFAULT_MAX_RETRIES: u32 = 4;

/// Ceiling on the exponential backoff between retransmits.
const BACKOFF_CAP: SimDuration = SimDuration::from_secs(4);

/// `splitmix64` finalizer: the standard 64-bit avalanche mix. Rendezvous
/// hashing only needs that distinct `(object, member)` pairs score
/// independently, which this provides without any table state.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The rendezvous score of `member` for `object`: a deterministic,
/// uniformly-mixed weight. Highest weight wins the primary slot.
fn rendezvous_weight(object: ObjectId, member: usize) -> u64 {
    mix64(object.raw() ^ mix64(member as u64 + 1))
}

/// Ranks all `members` for `object` by descending rendezvous weight.
/// Every client computes the identical ranking from the id alone; the
/// first `k` entries are the object's replica set, and failover walks the
/// ring in this order.
pub fn rendezvous_order(object: ObjectId, members: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..members).collect();
    order.sort_by_key(|&m| std::cmp::Reverse((rendezvous_weight(object, m), m)));
    order
}

/// One stored copy of an object: which member holds it and where on that
/// member's device its bytes landed (each member's archiver lays objects
/// out independently, so the span differs per replica).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Replica {
    /// Fleet index of the member holding the copy.
    pub member: usize,
    /// Absolute byte span of the copy on that member's device.
    pub span: ByteSpan,
}

/// Where an object lives: its replica set in rendezvous order (primary
/// first). Derived at publish time; the repair path replaces a lost or
/// corrupt entry in place when it rebuilds a copy elsewhere.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    replicas: Vec<Replica>,
}

impl Placement {
    /// The replica set in rendezvous order, primary first.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// The rendezvous winner — the member a non-spreading client would
    /// always ask.
    pub fn primary(&self) -> Replica {
        self.replicas[0]
    }

    /// The replica a given request uses: requests rotate through the
    /// replica set by id, spreading one object's pages across its copies.
    pub fn replica_for(&self, request_id: u64) -> Replica {
        self.replicas[(request_id % self.replicas.len() as u64) as usize]
    }

    /// The next replica on the ring after `member` — the failover target
    /// when `member` restarts or times out. With a single replica this is
    /// the same member: there is nowhere else to go, so the request is
    /// replayed in place.
    pub fn next_after(&self, member: usize) -> Replica {
        let at = self.replicas.iter().position(|r| r.member == member).unwrap_or(0);
        self.replicas[(at + 1) % self.replicas.len()]
    }

    /// Replaces the replica held by `member` with `with` — the repair
    /// path's placement update after re-replication (the copy moved to a
    /// ring successor) or a WORM heal (the copy stayed home but its span
    /// moved to the fresh append).
    fn replace_replica(&mut self, member: usize, with: Replica) {
        if let Some(slot) = self.replicas.iter_mut().find(|r| r.member == member) {
            *slot = with;
        }
    }
}

/// Per-page CRC32 checksums of an object, computed at publish time — the
/// ground truth scrub and read-repair verify stored copies against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageChecksums {
    /// Page granularity the object was published at.
    pub page_len: u64,
    /// CRC32 of each page in order (the final page may be short).
    pub crcs: Vec<u32>,
}

/// What one replica repair moved: where the clean bytes came from, where
/// the rebuilt copy landed, and what the devices charged — the caller
/// merges these into its own device timelines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairReceipt {
    /// The object whose copy was rebuilt.
    pub object: ObjectId,
    /// Member the verified source bytes were read from.
    pub source: usize,
    /// Member the rebuilt copy was appended onto.
    pub target: usize,
    /// Bytes rebuilt.
    pub bytes: u64,
    /// Device time the source read cost.
    pub read_time: SimDuration,
    /// Device time the target append cost.
    pub write_time: SimDuration,
}

/// What one scrub pass over a member's archive found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Objects whose copy on the member was walked.
    pub objects: u64,
    /// Pages checksum-verified.
    pub pages: u64,
    /// `(object, page)` pairs whose stored bytes failed their checksum.
    pub corrupt: Vec<(ObjectId, usize)>,
    /// Device time the verification reads cost.
    pub device_time: SimDuration,
}

/// A fleet of [`ObjectServer`] members with rendezvous placement and
/// `k`-way replication.
pub struct Fleet {
    members: Vec<ObjectServer>,
    replication: usize,
    placements: HashMap<ObjectId, Placement>,
    /// Publish-time page checksums, keyed by object — what scrub and
    /// read-repair verify stored copies against.
    checksums: HashMap<ObjectId, PageChecksums>,
}

impl Fleet {
    /// Builds a fleet of `members` fresh servers replicating each object
    /// onto `replication` of them. Fails typed when the shape is
    /// impossible (zero members, or more replicas than members).
    pub fn new(members: usize, replication: usize) -> Result<Self> {
        if members == 0 {
            return Err(MinosError::Internal("a fleet needs at least one member".into()));
        }
        if replication == 0 || replication > members {
            return Err(MinosError::Internal(format!(
                "replication {replication} impossible with {members} members"
            )));
        }
        Ok(Fleet {
            members: (0..members).map(|_| ObjectServer::new()).collect(),
            replication,
            placements: HashMap::new(),
            checksums: HashMap::new(),
        })
    }

    /// Member count.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Copies stored per object.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Stores `bytes` as `object` on its `k` rendezvous members and
    /// records the placement. Publishing the same id again overwrites the
    /// placement (each member's archiver appends a fresh record). The
    /// checksum granularity is the whole object; page-granular workloads
    /// publish through [`Fleet::publish_paged`] instead.
    pub fn publish_bytes(&mut self, object: ObjectId, bytes: &[u8]) -> Result<Placement> {
        self.publish_paged(object, bytes, (bytes.len() as u64).max(1))
    }

    /// Stores `bytes` as `object` on its `k` rendezvous members, records
    /// the placement, and remembers a CRC32 per `page_len`-sized page —
    /// the ground truth the scrub and read-repair paths verify against.
    pub fn publish_paged(
        &mut self,
        object: ObjectId,
        bytes: &[u8],
        page_len: u64,
    ) -> Result<Placement> {
        if page_len == 0 {
            return Err(MinosError::Internal("publish page length must be positive".into()));
        }
        // The replica list is sized exactly at the replication factor.
        let mut replicas = Vec::with_capacity(self.replication);
        for member in
            rendezvous_order(object, self.members.len()).into_iter().take(self.replication)
        {
            let (record, _) = self.members[member].archiver_mut().store(object, bytes)?;
            replicas.push(Replica { member, span: record.span });
        }
        let crcs = bytes.chunks(page_len as usize).map(crc32).collect();
        self.checksums.insert(object, PageChecksums { page_len, crcs });
        let placement = Placement { replicas };
        self.placements.insert(object, placement.clone());
        Ok(placement)
    }

    /// The publish-time page checksums of `object`, if it has been
    /// published.
    pub fn checksums(&self, object: ObjectId) -> Option<&PageChecksums> {
        self.checksums.get(&object)
    }

    /// Verifies `member`'s stored copy of `object` page by page against
    /// the publish-time checksums. Returns the indices of corrupt pages
    /// (empty when the copy is clean) and the device time the
    /// verification reads cost.
    pub fn verify_copy(
        &mut self,
        object: ObjectId,
        member: usize,
    ) -> Result<(Vec<usize>, SimDuration)> {
        let Some(replica) = self
            .placements
            .get(&object)
            .and_then(|p| p.replicas.iter().find(|r| r.member == member))
            .copied()
        else {
            return Err(MinosError::UnknownObject(format!("{object} on member {member}")));
        };
        let Some((page_len, pages)) =
            self.checksums.get(&object).map(|s| (s.page_len, s.crcs.len()))
        else {
            return Err(MinosError::UnknownObject(format!("{object} has no checksums")));
        };
        // Worst case every page is corrupt: the list's capacity is the
        // page count, never more.
        let mut corrupt = Vec::with_capacity(pages);
        let mut device_time = SimDuration::ZERO;
        for page in 0..pages {
            let start = replica.span.start + page as u64 * page_len;
            let len = replica.span.end.saturating_sub(start).min(page_len);
            let (bytes, took) =
                self.members[member].archiver_mut().read_at(ByteSpan::at(start, len))?;
            device_time += took;
            let want = self.checksums.get(&object).and_then(|s| s.crcs.get(page)).copied();
            if want != Some(crc32(&bytes)) {
                corrupt.push(page);
            }
        }
        Ok((corrupt, device_time))
    }

    /// Every object with a replica on `member`, in id order — what a
    /// failure detector owes the repair queue when that member dies.
    pub fn objects_on(&self, member: usize) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self
            .placements
            .iter()
            .filter(|(_, p)| p.replicas.iter().any(|r| r.member == member))
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The first member on `object`'s rendezvous ring that holds no
    /// replica and is not in `exclude` — where proactive re-replication
    /// puts a rebuilt copy after its holder dies. `None` when every
    /// member already holds a copy or is excluded.
    pub fn ring_successor(&self, object: ObjectId, exclude: &[usize]) -> Option<usize> {
        let placement = self.placements.get(&object)?;
        rendezvous_order(object, self.members.len())
            .into_iter()
            .find(|m| !exclude.contains(m) && !placement.replicas.iter().any(|r| r.member == *m))
    }

    /// Rebuilds `object`'s replica lost with member `lost` from the copy
    /// on `source`, appending it onto `target`'s archive (a fresh WORM
    /// version) and swapping the placement entry. `lost == target`
    /// re-homes a corrupt copy on its own member — the read-repair heal.
    /// The source bytes are checksum-verified first: repairing from a
    /// rotten sibling would multiply the corruption, so that fails typed
    /// and the caller tries the next sibling.
    pub fn repair_replica(
        &mut self,
        object: ObjectId,
        lost: usize,
        source: usize,
        target: usize,
    ) -> Result<RepairReceipt> {
        let Some(placement) = self.placements.get(&object) else {
            return Err(MinosError::UnknownObject(object.to_string()));
        };
        let Some(src) = placement.replicas.iter().find(|r| r.member == source).copied() else {
            return Err(MinosError::Internal(format!(
                "{object} has no source replica on member {source}"
            )));
        };
        if target != lost && placement.replicas.iter().any(|r| r.member == target) {
            return Err(MinosError::Internal(format!(
                "{object} already has a replica on member {target}"
            )));
        }
        if target >= self.members.len() {
            return Err(MinosError::Internal(format!(
                "repair target {target} outside fleet of {}",
                self.members.len()
            )));
        }
        let (bytes, read_time) = self.members[source].archiver_mut().read_at(src.span)?;
        if let Some(sums) = self.checksums.get(&object) {
            for (page, chunk) in bytes.chunks(sums.page_len as usize).enumerate() {
                if sums.crcs.get(page).copied() != Some(crc32(chunk)) {
                    return Err(MinosError::Corrupt(format!(
                        "{object} source copy on member {source} fails checksum at page {page}"
                    )));
                }
            }
        }
        let (record, write_time) = self.members[target].archiver_mut().store(object, &bytes)?;
        if let Some(placement) = self.placements.get_mut(&object) {
            placement.replace_replica(lost, Replica { member: target, span: record.span });
        }
        Ok(RepairReceipt {
            object,
            source,
            target,
            bytes: bytes.len() as u64,
            read_time,
            write_time,
        })
    }

    /// Walks every object with a replica on `member`, verifying each page
    /// against its publish-time checksum — the background scrub pass.
    /// Objects are visited in id order so equal-seeded runs scrub equal
    /// sequences. Healing what it finds is the caller's move
    /// ([`Fleet::heal_copy`]).
    pub fn scrub_member(&mut self, member: usize) -> Result<ScrubReport> {
        let ids = self.objects_on(member);
        let mut report = ScrubReport::default();
        for id in ids {
            let (corrupt, took) = self.verify_copy(id, member)?;
            report.objects += 1;
            report.pages += self.checksums.get(&id).map_or(0, |s| s.crcs.len() as u64);
            report.device_time += took;
            report.corrupt.extend(corrupt.into_iter().map(|page| (id, page)));
        }
        Ok(report)
    }

    /// Heals `member`'s corrupt copy of `object` from the first sibling
    /// whose own copy verifies: the clean bytes are re-appended on
    /// `member` (WORM media cannot be patched in place) and the placement
    /// follows the fresh span.
    pub fn heal_copy(&mut self, object: ObjectId, member: usize) -> Result<RepairReceipt> {
        let Some(placement) = self.placements.get(&object) else {
            return Err(MinosError::UnknownObject(object.to_string()));
        };
        let siblings: Vec<usize> =
            placement.replicas.iter().map(|r| r.member).filter(|&m| m != member).collect();
        for source in siblings {
            match self.repair_replica(object, member, source, member) {
                Ok(receipt) => return Ok(receipt),
                Err(MinosError::Corrupt(_)) => continue,
                Err(other) => return Err(other),
            }
        }
        Err(MinosError::Corrupt(format!(
            "{object} has no verifiable sibling to heal member {member} from"
        )))
    }

    /// Where `object` lives, if it has been published.
    pub fn placement(&self, object: ObjectId) -> Option<&Placement> {
        self.placements.get(&object)
    }

    /// Shared access to one member.
    pub fn member(&self, index: usize) -> Option<&ObjectServer> {
        self.members.get(index)
    }

    /// Mutable access to one member.
    pub fn member_mut(&mut self, index: usize) -> Option<&mut ObjectServer> {
        self.members.get_mut(index)
    }

    /// The restart epoch of one member (0 for an out-of-range index).
    pub fn epoch(&self, index: usize) -> u64 {
        self.members.get(index).map_or(0, |m| m.epoch())
    }

    /// Restarts one member: its epoch bumps, its volatile service queues
    /// are cleared, and the connections that lost frames are woken (the
    /// archived bytes on its device survive). Fails typed on an
    /// out-of-range index.
    pub fn restart_member(&mut self, index: usize) -> Result<()> {
        match self.members.get_mut(index) {
            Some(member) => {
                member.restart();
                Ok(())
            }
            None => Err(MinosError::Internal(format!(
                "restart of member {index} outside fleet of {}",
                self.members.len()
            ))),
        }
    }

    /// Applies one admission-control policy across every member.
    pub fn set_service_config(&mut self, config: ServiceConfig) {
        for member in &mut self.members {
            member.set_service_config(config);
        }
    }

    /// Prewarms every member's payload pool (see
    /// [`ObjectServer::prewarm_payloads`]).
    pub fn prewarm_payloads(&mut self, buffers: usize, capacity: usize) {
        for member in &mut self.members {
            member.prewarm_payloads(buffers, capacity);
        }
    }

    /// Fleet-wide service accounting: every member's counters merged into
    /// one [`ServiceStats`] (sums for the monotone counters, maxima for
    /// the high-water marks).
    pub fn service_stats(&self) -> ServiceStats {
        let mut merged = ServiceStats::default();
        for member in &self.members {
            merged.merge(member.service_stats());
        }
        merged
    }

    /// Clears every member's service accounting.
    pub fn reset_stats(&mut self) {
        for member in &mut self.members {
            member.reset_service_stats();
        }
    }
}

/// Consecutive heartbeat misses before a member is suspected.
const SUSPECT_AFTER: u32 = 1;
/// Consecutive heartbeat misses before a member is declared down.
const DOWN_AFTER: u32 = 2;
/// A heartbeat this many times the member's own rolling baseline marks
/// gray failure ([`MemberHealth::Slow`]).
const SLOW_MULT: u64 = 4;
/// Heartbeat samples before the latency baseline is trusted for `Slow`
/// detection — early samples seed the EWMA instead.
const BASELINE_WARMUP: u32 = 3;
/// Consecutive healthy heartbeats before a `Slow` member recovers to
/// `Up` (a `Suspect`/`Down` member recovers on the first pong: the echo
/// is positive proof of life).
const RECOVER_AFTER: u32 = 2;

/// Health of one fleet member as the failure detector sees it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MemberHealth {
    /// Answering heartbeats at its usual latency.
    #[default]
    Up,
    /// Missed one heartbeat: possibly a dropped frame, possibly worse.
    Suspect,
    /// Missed enough consecutive heartbeats to be declared dead — traffic
    /// reroutes and proactive re-replication starts.
    Down,
    /// Still answering, but far above its own latency baseline: the gray
    /// failure that audio-class hedged reads route around.
    Slow,
}

/// Heartbeat accounting, cleared wholesale by
/// [`HealthMonitor::reset_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// Heartbeat pings sent.
    pub pings: u64,
    /// Pong echoes received.
    pub pongs: u64,
    /// Heartbeats that went unanswered.
    pub misses: u64,
    /// Transitions into [`MemberHealth::Down`].
    pub down_transitions: u64,
    /// Transitions into [`MemberHealth::Slow`].
    pub slow_transitions: u64,
    /// Recoveries back to [`MemberHealth::Up`].
    pub recoveries: u64,
    /// Pong echoes whose restart epoch disagreed with the connection's
    /// view — each one triggers an immediate resync.
    pub epoch_mismatches: u64,
}

/// The per-member failure detector fed by `Ping`/`Pong` heartbeats.
///
/// Misses walk a member `Up → Suspect → Down`; a pong is positive proof
/// of life and recovers it immediately. Each member also carries a
/// rolling latency baseline (EWMA of its own healthy echoes): an echo
/// [`SLOW_MULT`]× above a warmed baseline marks the member
/// [`MemberHealth::Slow`] without poisoning the baseline, and
/// [`RECOVER_AFTER`] consecutive healthy echoes clear it.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    state: Vec<MemberHealth>,
    misses: Vec<u32>,
    healthy: Vec<u32>,
    baseline_us: Vec<u64>,
    samples: Vec<u32>,
    stats: HealthStats,
}

impl HealthMonitor {
    /// A monitor over `members` members, all initially `Up`.
    pub fn new(members: usize) -> Self {
        HealthMonitor {
            state: vec![MemberHealth::Up; members],
            misses: vec![0; members],
            healthy: vec![0; members],
            baseline_us: vec![0; members],
            samples: vec![0; members],
            stats: HealthStats::default(),
        }
    }

    /// The detector's current view of `member` (`Up` out of range).
    pub fn state(&self, member: usize) -> MemberHealth {
        self.state.get(member).copied().unwrap_or_default()
    }

    /// Whether the detector has declared `member` dead.
    pub fn is_down(&self, member: usize) -> bool {
        self.state(member) == MemberHealth::Down
    }

    /// The member's rolling latency baseline (zero until warmed).
    pub fn baseline(&self, member: usize) -> SimDuration {
        let us = self.baseline_us.get(member).copied().unwrap_or(0);
        if self.samples.get(member).copied().unwrap_or(0) < BASELINE_WARMUP {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros(us)
    }

    /// Records one ping sent to `member`.
    pub fn note_ping(&mut self, member: usize) {
        if member < self.state.len() {
            self.stats.pings += 1;
        }
    }

    /// A pong arrived `latency` after its ping: clears the miss streak,
    /// recovers a suspected/down member, and classifies gray failure
    /// against the member's own baseline. Returns the state after the
    /// sample.
    pub fn note_pong(&mut self, member: usize, latency: SimDuration) -> MemberHealth {
        if member >= self.state.len() {
            return MemberHealth::Up;
        }
        self.stats.pongs += 1;
        self.misses[member] = 0;
        let us = latency.as_micros().max(1);
        let warmed = self.samples[member] >= BASELINE_WARMUP;
        if warmed && us > self.baseline_us[member].saturating_mul(SLOW_MULT) {
            // A gray sample does not poison the baseline: the detector
            // keeps comparing against the member's healthy self.
            if self.state[member] != MemberHealth::Slow {
                self.stats.slow_transitions += 1;
            }
            self.state[member] = MemberHealth::Slow;
            self.healthy[member] = 0;
            return MemberHealth::Slow;
        }
        self.samples[member] += 1;
        self.baseline_us[member] = if self.baseline_us[member] == 0 {
            us
        } else {
            (self.baseline_us[member] * 7 + us) / 8
        };
        match self.state[member] {
            MemberHealth::Up => {}
            MemberHealth::Suspect | MemberHealth::Down => {
                self.state[member] = MemberHealth::Up;
                self.healthy[member] = 0;
                self.stats.recoveries += 1;
            }
            MemberHealth::Slow => {
                self.healthy[member] += 1;
                if self.healthy[member] >= RECOVER_AFTER {
                    self.state[member] = MemberHealth::Up;
                    self.healthy[member] = 0;
                    self.stats.recoveries += 1;
                }
            }
        }
        self.state[member]
    }

    /// A heartbeat went unanswered: one miss suspects the member, enough
    /// consecutive misses declare it down. Returns the state after the
    /// miss.
    pub fn note_miss(&mut self, member: usize) -> MemberHealth {
        if member >= self.state.len() {
            return MemberHealth::Up;
        }
        self.stats.misses += 1;
        self.misses[member] += 1;
        self.healthy[member] = 0;
        if self.misses[member] >= DOWN_AFTER {
            if self.state[member] != MemberHealth::Down {
                self.stats.down_transitions += 1;
            }
            self.state[member] = MemberHealth::Down;
        } else if self.misses[member] >= SUSPECT_AFTER && self.state[member] != MemberHealth::Down {
            self.state[member] = MemberHealth::Suspect;
        }
        self.state[member]
    }

    /// Records a pong whose restart epoch disagreed with the sender's
    /// view.
    pub fn note_epoch_mismatch(&mut self) {
        self.stats.epoch_mismatches += 1;
    }

    /// Heartbeat accounting so far.
    pub fn stats(&self) -> HealthStats {
        self.stats
    }

    /// Clears the accounting (detector state survives — a reset must not
    /// forget who is down).
    pub fn reset_stats(&mut self) {
        self.stats = HealthStats::default();
    }
}

/// One queued re-replication task: rebuild `object`'s copy that was lost
/// with member `lost`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairTask {
    /// The object owed a copy.
    pub object: ObjectId,
    /// The member whose copy was lost.
    pub lost: usize,
}

/// Re-replication accounting, cleared wholesale by
/// [`RepairQueue::reset_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Tasks admitted into the queue.
    pub admitted: u64,
    /// Tasks rejected as duplicates of an already-admitted loss.
    pub deduped: u64,
    /// Repairs that completed and restored a copy.
    pub completed: u64,
    /// Repairs that failed (no verifiable source or no free target).
    pub failed: u64,
    /// Bytes rebuilt by completed repairs.
    pub bytes_rebuilt: u64,
}

/// The background repair queue the failure detector feeds.
///
/// The queue is bounded by dedup admission: each `(object, member)` loss
/// is admitted at most once, so however often the detector re-reports a
/// down member the queue can never outgrow the placement table. Draining
/// it is the orchestrator's job, one task per `RepairDue` kernel timer —
/// that serial spacing is the throttle that keeps repair traffic from
/// starving foreground audio.
#[derive(Debug, Default)]
pub struct RepairQueue {
    queue: VecDeque<RepairTask>,
    admitted: HashSet<(ObjectId, usize)>,
    stats: RepairStats,
}

impl RepairQueue {
    /// An empty queue.
    pub fn new() -> Self {
        RepairQueue::default()
    }

    /// Admits one repair task unless the same loss was already admitted —
    /// the dedup set is the queue's capacity bound.
    pub fn admit(&mut self, task: RepairTask) -> bool {
        if !self.admitted.insert((task.object, task.lost)) {
            self.stats.deduped += 1;
            return false;
        }
        self.stats.admitted += 1;
        self.queue.push_back(task);
        true
    }

    /// Takes the oldest pending task.
    pub fn pop(&mut self) -> Option<RepairTask> {
        self.queue.pop_front()
    }

    /// Pending (admitted, not yet popped) tasks.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no tasks are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Records one finished repair and the bytes it rebuilt.
    pub fn note_completed(&mut self, bytes: u64) {
        self.stats.completed += 1;
        self.stats.bytes_rebuilt += bytes;
    }

    /// Records one repair that could not be completed.
    pub fn note_failed(&mut self) {
        self.stats.failed += 1;
    }

    /// Repair accounting so far.
    pub fn stats(&self) -> RepairStats {
        self.stats
    }

    /// Clears the accounting (the dedup set survives: a loss already
    /// repaired or in flight must not be re-admitted by a stats reset).
    pub fn reset_stats(&mut self) {
        self.stats = RepairStats::default();
    }
}

/// A handle to a submitted, not-yet-collected request on a
/// [`FleetConnection`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FleetTicket(u64);

/// Retransmission and failover state for one in-flight request. Unlike
/// the single-endpoint connection, the fleet transport keeps this even on
/// a clean link: failover needs the object identity and the encoded
/// bytes to re-aim a request at a sibling replica.
struct FleetOutstanding {
    /// The object the request reads from — the key back into the
    /// placement table when the target must change.
    object: ObjectId,
    /// The requested span relative to the object's first byte; the
    /// absolute device span is recomputed per replica.
    rel: ByteSpan,
    /// Fleet index of the member currently targeted.
    target: usize,
    /// The frame encoded once at submit into a pooled buffer; every
    /// retransmit resends it verbatim, and a failover re-encodes into the
    /// same buffer (the replica's device span differs).
    frame_bytes: Vec<u8>,
    deadline: SimInstant,
    attempt: u32,
    timer: TimerId,
    /// Whether the request is parked on a `Busy { retry_after }` hint:
    /// `deadline` is then the earliest instant it may go back on the
    /// wire, and reaching it costs neither a timeout nor a retry.
    deferred: bool,
}

/// Busy-honoring accounting of a [`FleetConnection`], cleared wholesale
/// by [`FleetConnection::reset_accounting`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Requests turned away with [`ServerResponse::Busy`] and parked on a
    /// kernel timer until the server's `retry_after` hint elapsed.
    pub busy_deferred: u64,
    /// Deferred resubmissions that left before their hint elapsed.
    /// Always zero — the retry timer gates the uplink — and pinned so.
    pub premature_busy_retries: u64,
}

/// A pipelined client of a [`Fleet`]: one shared uplink and downlink (the
/// paper's broadcast bus), one device timeline per member, and per-request
/// deadline/retry/failover state.
///
/// The request path mirrors the single-endpoint
/// [`Connection`](crate::remote::Connection) — admit into the in-flight
/// window, encode once into a pooled buffer, transmit, dispatch, land —
/// with two fleet-specific moves layered on:
///
/// * a member restart (epoch bump) replays that member's in-flight
///   requests onto the next replica in each object's rendezvous ring;
/// * a [`ServerResponse::Busy`] reply parks the request on a kernel timer
///   for the server's own `retry_after` hint and rotates it to a sibling,
///   instead of re-offering load to the gate that just shed it.
pub struct FleetConnection {
    fleet: Fleet,
    /// Per-member epoch last handshaken; a mismatch triggers resync.
    member_epochs: Vec<u64>,
    link: FaultyLink,
    clock: SimClock,
    next_request_id: u64,
    window: InflightWindow,
    /// Per-member queues of request frames in transit to that member.
    pending: Vec<VecDeque<PendingFrame>>,
    /// Arrival instant of each frame handed to a member's service queue.
    arrival_at: HashMap<u64, SimInstant>,
    landed: HashMap<u64, Landed>,
    outstanding: HashMap<u64, FleetOutstanding>,
    collected: HashSet<u64>,
    pool: BufferPool,
    kernel: Kernel,
    transport: TransportStats,
    stats: FleetStats,
    timeout: SimDuration,
    max_retries: u32,
    up_free: SimInstant,
    /// One device timeline per member: the shared wire feeds N devices.
    dev_free: Vec<SimInstant>,
    down_free: SimInstant,
    /// Heartbeat interval once [`FleetConnection::enable_heartbeat`] has
    /// armed the health monitor; `None` keeps heartbeats off.
    heartbeat: Option<SimDuration>,
    /// Per-member failure detector fed by the heartbeats.
    health: HealthMonitor,
    /// Nonce of the next heartbeat ping.
    next_nonce: u64,
}

impl FleetConnection {
    /// Opens a connection to `fleet` over `link` with the default
    /// in-flight window and a clean fault plan.
    pub fn new(fleet: Fleet, link: Link) -> Self {
        FleetConnection::with_faults(fleet, link, DEFAULT_WINDOW, FaultPlan::none())
    }

    /// Opens a connection with an explicit in-flight window capacity.
    pub fn with_window(fleet: Fleet, link: Link, window: usize) -> Self {
        FleetConnection::with_faults(fleet, link, window, FaultPlan::none())
    }

    /// Opens a connection whose shared link misbehaves according to
    /// `plan`: every frame crosses the fault layer and the recovery
    /// machinery (deadlines, retransmission, duplicate suppression,
    /// failover) engages.
    pub fn with_faults(fleet: Fleet, link: Link, window: usize, plan: FaultPlan) -> Self {
        let member_epochs: Vec<u64> = fleet.members.iter().map(|m| m.epoch()).collect();
        let members = fleet.members.len();
        FleetConnection {
            fleet,
            member_epochs,
            link: FaultyLink::new(link, plan),
            clock: SimClock::new(),
            next_request_id: 1,
            window: InflightWindow::new(window),
            pending: (0..members).map(|_| VecDeque::new()).collect(),
            arrival_at: HashMap::new(),
            landed: HashMap::new(),
            outstanding: HashMap::new(),
            collected: HashSet::new(),
            pool: BufferPool::new(),
            kernel: Kernel::new(),
            transport: TransportStats::default(),
            stats: FleetStats::default(),
            timeout: DEFAULT_TIMEOUT,
            max_retries: DEFAULT_MAX_RETRIES,
            up_free: SimInstant::EPOCH,
            dev_free: vec![SimInstant::EPOCH; members],
            down_free: SimInstant::EPOCH,
            heartbeat: None,
            health: HealthMonitor::new(members),
            next_nonce: 1,
        }
    }

    /// Overrides the recovery policy: per-request deadline and retransmit
    /// budget before a request expires with an inline error.
    pub fn with_recovery(mut self, timeout: SimDuration, max_retries: u32) -> Self {
        self.timeout = timeout.max(SimDuration::from_micros(1));
        self.max_retries = max_retries;
        self
    }

    /// Total simulated time spent so far.
    pub fn elapsed(&self) -> SimDuration {
        self.clock.now().since(SimInstant::EPOCH)
    }

    /// Payload bytes moved over the shared link so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.link.stats().bytes
    }

    /// Shared-link transfer statistics.
    pub fn link_stats(&self) -> minos_net::LinkStats {
        self.link.stats()
    }

    /// What the fault layer did to the fleet's frames.
    pub fn fault_stats(&self) -> minos_net::FaultStats {
        self.link.fault_stats()
    }

    /// Recovery accounting — timeouts, retries, replays, epoch resyncs,
    /// failovers — plus the transmit-pool counters.
    pub fn transport_stats(&self) -> TransportStats {
        let pool = self.pool.stats();
        TransportStats {
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            payload_allocs: self.transport.payload_allocs + pool.misses,
            ..self.transport
        }
    }

    /// Busy-honoring accounting (deferred resubmissions and the
    /// always-zero premature count).
    pub fn fleet_stats(&self) -> FleetStats {
        self.stats
    }

    /// The timer-wheel counters of the recovery machinery.
    pub fn kernel_stats(&self) -> crate::kernel::KernelStats {
        self.kernel.stats()
    }

    /// Requests submitted and not yet collected.
    pub fn in_flight(&self) -> usize {
        self.window.len()
    }

    /// The in-flight window capacity.
    pub fn window_capacity(&self) -> usize {
        self.window.capacity()
    }

    /// The fleet behind the connection.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Mutable access to the fleet (restarts, config changes).
    pub fn fleet_mut(&mut self) -> &mut Fleet {
        &mut self.fleet
    }

    /// Hands a consumed payload buffer back to the transmit pool.
    pub fn recycle_payload(&mut self, buf: Vec<u8>) {
        self.pool.recycle(buf);
    }

    /// Starts the deterministic health monitor: every `interval`, each
    /// member is pinged on a kernel timer and the `Pong { epoch }` echo
    /// feeds the per-member latency baseline. The echo also closes the
    /// idle-connection gap: a mismatched restart epoch triggers the
    /// resync (handshake + replay) at the heartbeat, so an idle
    /// connection notices a member restart without waiting for its next
    /// submit.
    pub fn enable_heartbeat(&mut self, interval: SimDuration) {
        let interval = interval.max(SimDuration::from_micros(1));
        self.heartbeat = Some(interval);
        for m in 0..self.fleet.members.len() {
            self.kernel
                .arm(self.clock.now() + interval, KernelEvent::HealthTick { member: m as u64 });
        }
    }

    /// The failure detector fed by the heartbeats.
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Sends one heartbeat to member `m` at the current instant. The ping
    /// and its echo are charged on the shared wire (the server answers
    /// `Ping` from memory, no device time); the echo's round trip feeds
    /// the member's baseline, and a stale epoch in the echo triggers the
    /// resync machinery immediately. Re-arms the member's next tick.
    fn heartbeat_member(&mut self, m: usize) {
        if m >= self.fleet.members.len() {
            self.kernel.note_spurious();
            return;
        }
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.health.note_ping(m);
        let ping = ServerRequest::Ping { nonce };
        let sent = self.clock.now();
        let up = self.link.charge(Frame::request(FLEET_CONN, 0, ping).wire_size());
        let arrival = sent.max(self.up_free) + up;
        self.up_free = arrival;
        let (answer, _) = self.fleet.members[m].handle(&ServerRequest::Ping { nonce });
        let echo_epoch = match &answer {
            ServerResponse::Pong { epoch, .. } => Some(*epoch),
            _ => None,
        };
        let down = self.link.charge(Frame::response(FLEET_CONN, 0, answer).wire_size());
        let delivered = arrival.max(self.down_free) + down;
        self.down_free = delivered;
        self.health.note_pong(m, delivered.saturating_since(sent));
        if let Some(epoch) = echo_epoch {
            if epoch != self.member_epochs[m] {
                // The restart is noticed by the heartbeat, not by the
                // next submit: resync (handshake + replay) right here.
                self.health.note_epoch_mismatch();
                self.resync_epochs();
            }
        }
        if let Some(interval) = self.heartbeat {
            self.kernel.arm(
                self.clock.now().max(delivered) + interval,
                KernelEvent::HealthTick { member: m as u64 },
            );
        }
    }

    /// Resets the accounting *and* the pipeline state (between experiment
    /// configurations). A ticket from before the reset is gone — waiting
    /// on it is a protocol error.
    pub fn reset_accounting(&mut self) {
        self.link.reset();
        self.clock = SimClock::new();
        self.up_free = SimInstant::EPOCH;
        self.down_free = SimInstant::EPOCH;
        for free in &mut self.dev_free {
            *free = SimInstant::EPOCH;
        }
        for queue in &mut self.pending {
            queue.clear();
        }
        self.arrival_at.clear();
        self.landed.clear();
        self.outstanding.clear();
        self.collected.clear();
        self.pool.reset_stats();
        // The clock restarts at the epoch, so every armed deadline is
        // stale: replace the kernel wholesale, counters included.
        self.kernel = Kernel::new();
        self.transport = TransportStats::default();
        self.stats = FleetStats::default();
        self.window = InflightWindow::new(self.window.capacity());
        self.fleet.reset_stats();
        // A reset adopts each member's current epoch: there is no window
        // left to re-aim, so a restart before the reset costs nothing
        // after it.
        for (m, last) in self.member_epochs.iter_mut().enumerate() {
            *last = self.fleet.members[m].epoch();
        }
        // The detector restarts clean, and — since the wholesale kernel
        // swap dropped the armed ticks — an enabled heartbeat re-arms
        // from the fresh epoch.
        self.health = HealthMonitor::new(self.fleet.members.len());
        self.next_nonce = 1;
        if let Some(interval) = self.heartbeat {
            for m in 0..self.fleet.members.len() {
                self.kernel
                    .arm(self.clock.now() + interval, KernelEvent::HealthTick { member: m as u64 });
            }
        }
    }

    /// Submits a demand fetch of `rel` — a span relative to `object`'s
    /// first byte — and returns a ticket for collecting the page later.
    /// The replica is chosen by request id, spreading an object's pages
    /// across its copies; the frame is encoded once into a pooled buffer
    /// so retransmits and failovers resend without re-encoding from a
    /// typed request.
    pub fn fetch_page(&mut self, object: ObjectId, rel: ByteSpan) -> Result<FleetTicket> {
        let Some(placement) = self.fleet.placements.get(&object) else {
            return Err(MinosError::UnknownObject(object.to_string()));
        };
        if rel.end > placement.primary().span.len() {
            return Err(MinosError::Protocol(format!(
                "page {rel} outside {object} of {} bytes",
                placement.primary().span.len()
            )));
        }
        let request_id = self.admit_slot();
        // Re-borrow after the admit loop: it mutates the transport state.
        let Some(placement) = self.fleet.placements.get(&object) else {
            return Err(MinosError::UnknownObject(object.to_string()));
        };
        let replica = placement.replica_for(request_id);
        let span = ByteSpan::at(replica.span.start + rel.start, rel.len());
        let deadline = self.clock.now() + self.timeout;
        let mut frame_bytes = self.pool.lease_vec();
        Frame::encode_request_into(
            FLEET_CONN,
            request_id,
            Priority::Demand,
            &ServerRequest::FetchSpan { span },
            &mut frame_bytes,
        );
        let timer = self.kernel.arm(deadline, KernelEvent::RetryDue { request_id, attempt: 0 });
        self.outstanding.insert(
            request_id,
            FleetOutstanding {
                object,
                rel,
                target: replica.member,
                frame_bytes,
                deadline,
                attempt: 0,
                timer,
                deferred: false,
            },
        );
        self.transmit_request(request_id);
        self.window.open(request_id);
        Ok(FleetTicket(request_id))
    }

    /// Collects the response for `ticket`, advancing the clock to its
    /// arrival and returning how long the caller actually waited. A lost
    /// response is retransmitted after its deadline (with capped
    /// exponential backoff, failing over to a sibling replica each
    /// round); a `Busy` turn-away resubmits only after the server's own
    /// hint elapses. A request that exhausts its retries comes back as an
    /// inline [`ServerResponse::Error`].
    pub fn wait(&mut self, ticket: FleetTicket) -> Result<(ServerResponse, SimDuration)> {
        let started = self.clock.now();
        loop {
            self.resync_epochs();
            self.dispatch();
            if let Some(landed) = self.landed.remove(&ticket.0) {
                self.clock.advance_to_at_least(landed.ready_at);
                let waited = self.clock.now().saturating_since(started);
                self.window.close(ticket.0);
                if let Some(out) = self.outstanding.remove(&ticket.0) {
                    self.kernel.cancel(out.timer);
                    self.pool.recycle(out.frame_bytes);
                }
                self.collected.insert(ticket.0);
                return Ok((landed.response, waited));
            }
            if !self.outstanding.contains_key(&ticket.0) {
                return Err(MinosError::Protocol(format!(
                    "unknown or already-collected {ticket:?}"
                )));
            }
            self.force_progress(ticket.0);
        }
    }

    /// Drives the fleet to `at` without collecting anything: every
    /// retransmit deadline and `Busy` retry timer due in the interval
    /// fires at its exact instant.
    pub fn advance_to(&mut self, at: SimInstant) {
        self.dispatch();
        // Step deadline-to-deadline so backoffs chain from the deadline
        // itself; intermediate cascade ticks drain empty and the loop
        // steps on. Heartbeat ticks fire in here too, so with the monitor
        // enabled a member restart is detected at its first heartbeat —
        // which is why the resync runs *after* the timer drain, as a
        // safety net for heartbeat-less connections, not before it.
        while let Some(next) = self.kernel.next_deadline() {
            if next > at {
                break;
            }
            self.clock.advance_to_at_least(next);
            self.drain_retry_wakes();
        }
        self.clock.advance_to_at_least(at);
        self.kernel.advance_to(self.clock.now());
        self.drain_retry_wakes();
        self.resync_epochs();
        self.dispatch();
        self.settle();
    }

    /// Admits the next submission into the flow-control window: resyncs
    /// member epochs, settles arrived responses, and waits out (or forces
    /// progress on) a full window before allocating the request id.
    fn admit_slot(&mut self) -> u64 {
        self.resync_epochs();
        self.settle();
        while self.window.is_full() {
            self.dispatch();
            self.settle();
            if !self.window.is_full() {
                break;
            }
            let now = self.clock.now();
            if let Some(next) = self.landed.values().map(|l| l.ready_at).filter(|&t| t > now).min()
            {
                self.clock.advance_to_at_least(next);
                self.settle();
                continue;
            }
            // Window full with nothing landed and nothing arriving: force
            // the oldest slot through its deadline machinery rather than
            // overrunning the flow-control bound.
            let Some(oldest) = self.window.oldest() else { break };
            self.force_progress(oldest);
            self.settle();
        }
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        request_id
    }

    /// Puts an outstanding request's stored frame bytes on the wire to
    /// its current target member. Every transmission — first send,
    /// timeout retransmit, epoch replay, deferred resubmit — resends the
    /// bytes encoded at submit (or re-encoded at failover) verbatim.
    fn transmit_request(&mut self, request_id: u64) {
        let Some(out) = self.outstanding.get(&request_id) else {
            return;
        };
        // The flow-control window is the admission bound: a request only
        // reaches the wire through an admitted slot, so the in-transit
        // queues can never outgrow it (duplicates aside, which the fault
        // layer caps per transmit).
        debug_assert!(
            self.outstanding.len() <= self.window.capacity(),
            "in-flight requests exceed the admitted window"
        );
        let target = out.target;
        let (up, deliveries) = self.link.transmit(&out.frame_bytes);
        let arrival = self.clock.now().max(self.up_free) + up;
        self.up_free = arrival;
        for delivery in deliveries {
            match Frame::decode(&delivery.bytes) {
                Ok(delivered) if delivered.as_request().is_some() => {
                    self.pending[target].push_back(PendingFrame {
                        frame: delivered,
                        arrival: arrival + delivery.delay,
                    });
                }
                Ok(_) => {}
                Err(_) => self.transport.corrupt_frames += 1,
            }
        }
    }

    /// Re-aims an outstanding request at the next replica on its object's
    /// rendezvous ring, re-encoding the stored frame for the sibling's
    /// device layout. A single-replica object stays put — there is
    /// nowhere else to go — and costs nothing.
    fn fail_over_target(&mut self, request_id: u64) {
        let Some(out) = self.outstanding.get_mut(&request_id) else {
            return;
        };
        let Some(placement) = self.fleet.placements.get(&out.object) else {
            return;
        };
        let replica = placement.next_after(out.target);
        if replica.member == out.target {
            return;
        }
        self.transport.failovers += 1;
        out.target = replica.member;
        let span = ByteSpan::at(replica.span.start + out.rel.start, out.rel.len());
        out.frame_bytes.clear();
        Frame::encode_request_into(
            FLEET_CONN,
            request_id,
            Priority::Demand,
            &ServerRequest::FetchSpan { span },
            &mut out.frame_bytes,
        );
    }

    /// Detects member restarts (epoch bumps) and recovers each: a
    /// `Hello`/`Welcome` handshake round trip is charged on the shared
    /// wire and the member's device, then every in-flight request aimed
    /// at the dead incarnation is replayed onto the next replica of its
    /// object — idempotently, skipping ids whose responses already landed
    /// or were collected, and leaving `Busy`-deferred requests to their
    /// own timers.
    fn resync_epochs(&mut self) {
        for m in 0..self.fleet.members.len() {
            if self.fleet.members[m].epoch() == self.member_epochs[m] {
                continue;
            }
            self.transport.epoch_resyncs += 1;
            let hello = Frame::request(
                FLEET_CONN,
                0,
                ServerRequest::Hello { epoch: self.member_epochs[m] },
            );
            let up = self.link.charge(hello.wire_size());
            let hello_arrival = self.clock.now().max(self.up_free) + up;
            self.up_free = hello_arrival;
            let (answer, took) = self.fleet.members[m]
                .handle(&ServerRequest::Hello { epoch: self.member_epochs[m] });
            let done = hello_arrival.max(self.dev_free[m]) + took;
            self.dev_free[m] = done;
            let welcome = Frame::response(FLEET_CONN, 0, answer);
            let down = self.link.charge(welcome.wire_size());
            let delivered = done.max(self.down_free) + down;
            self.down_free = delivered;
            self.clock.advance_to_at_least(delivered);
            self.member_epochs[m] = match welcome.payload {
                FramePayload::Response(ServerResponse::Welcome { epoch }) => epoch,
                _ => self.fleet.members[m].epoch(),
            };
            // Frames still in transit to the member and frames that died
            // in its volatile queue are both gone; the member's wake list
            // names the orphaned connection, and the transport answers by
            // replaying each loss onto a sibling.
            self.pending[m].clear();
            let _ = self.fleet.members[m].take_woken();
            let lost: Vec<u64> = self
                .outstanding
                .iter()
                .filter(|(rid, o)| {
                    o.target == m
                        && !o.deferred
                        && !self.landed.contains_key(rid)
                        && !self.collected.contains(rid)
                })
                .map(|(&rid, _)| rid)
                .collect();
            for rid in lost {
                self.transport.replays += 1;
                self.fail_over_target(rid);
                self.transmit_request(rid);
            }
        }
    }

    /// Moves pending frames into each member's service queue and pumps
    /// every member: served (or rejected) responses cross the member's
    /// device timeline and the shared downlink, landing timestamped.
    fn dispatch(&mut self) {
        for m in 0..self.fleet.members.len() {
            while let Some(p) = self.pending[m].pop_front() {
                let rid = p.frame.request_id;
                self.arrival_at.insert(rid, p.arrival);
                // The member's admission control is the gate: a frame it
                // turns away comes back as a Busy reply through the same
                // ready queue.
                if self.fleet.members[m].enqueue(p.frame).is_err() {
                    self.arrival_at.remove(&rid);
                }
            }
            while let Some((frame, charge)) = self.fleet.members[m].poll_conn(FLEET_CONN) {
                let rid = frame.request_id;
                let arrival = self.arrival_at.remove(&rid).unwrap_or(self.up_free);
                let done = arrival.max(self.dev_free[m]) + charge;
                self.dev_free[m] = done;
                let FramePayload::Response(response) = frame.payload else {
                    continue;
                };
                self.land(rid, response, done);
            }
            // The wake list has been fully served for the fleet's single
            // logical connection; drain it so it never accumulates.
            let _ = self.fleet.members[m].take_woken();
        }
    }

    /// Charges the shared downlink for one response frame and lands it.
    /// On a faulty link the encoded frame crosses the fault layer:
    /// corrupt copies are counted and discarded (the deadline machinery
    /// retransmits), duplicates are suppressed by request id.
    fn land(&mut self, request_id: u64, response: ServerResponse, done: SimInstant) {
        if self.link.is_clean() {
            let frame = Frame::response(FLEET_CONN, request_id, response);
            let down = self.link.charge(frame.wire_size());
            let delivered = done.max(self.down_free) + down;
            self.down_free = delivered;
            let FramePayload::Response(response) = frame.payload else {
                return;
            };
            self.receive(request_id, response, delivered);
            return;
        }
        let frame = Frame::response(FLEET_CONN, request_id, response);
        let mut bytes = self.pool.lease_vec();
        frame.encode_into(&mut bytes);
        let (down, deliveries) = self.link.transmit(&bytes);
        let delivered = done.max(self.down_free) + down;
        self.down_free = delivered;
        for delivery in deliveries {
            match Frame::decode(&delivery.bytes) {
                Ok(received) => {
                    let rid = received.request_id;
                    let FramePayload::Response(response) = received.payload else {
                        continue;
                    };
                    self.receive(rid, response, delivered + delivery.delay);
                }
                Err(_) => self.transport.corrupt_frames += 1,
            }
        }
        self.pool.recycle(bytes);
    }

    /// Accepts one response at its delivery instant: duplicates are
    /// suppressed, a `Busy` turn-away for a tracked request parks it on a
    /// retry timer honoring the server's hint (and rotates it to a
    /// sibling replica), and anything else lands for collection.
    fn receive(&mut self, request_id: u64, response: ServerResponse, at: SimInstant) {
        if self.collected.contains(&request_id) || self.landed.contains_key(&request_id) {
            self.transport.duplicates += 1;
            return;
        }
        if let ServerResponse::Busy { retry_after } = response {
            if let Some(out) = self.outstanding.get(&request_id) {
                if out.deferred {
                    // A duplicated Busy reply must not double-park.
                    self.transport.duplicates += 1;
                    return;
                }
                self.stats.busy_deferred += 1;
                let due = at + retry_after;
                self.kernel.cancel(out.timer);
                let attempt = out.attempt;
                let timer = self.kernel.arm(due, KernelEvent::RetryDue { request_id, attempt });
                // Resubmit somewhere less loaded when the object has a
                // sibling copy; with one replica the rotation is a no-op.
                self.fail_over_target(request_id);
                if let Some(out) = self.outstanding.get_mut(&request_id) {
                    out.deferred = true;
                    out.deadline = due;
                    out.timer = timer;
                }
                return;
            }
        }
        // The response is in hand: the retransmission state is done, its
        // deadline is void, and the encoded bytes go back to the pool.
        if let Some(out) = self.outstanding.remove(&request_id) {
            self.kernel.cancel(out.timer);
            self.pool.recycle(out.frame_bytes);
        }
        self.landed.insert(request_id, Landed { response, ready_at: at });
    }

    /// Fires every kernel event due at the current clock and handles the
    /// retry wakes and heartbeat ticks among them; re-advances each round
    /// because a handler can arm a deadline already behind kernel time.
    fn drain_retry_wakes(&mut self) {
        loop {
            self.kernel.advance_to(self.clock.now());
            let Some(event) = self.kernel.take_ready() else { break };
            match event {
                KernelEvent::RetryDue { request_id, attempt } => {
                    let now = self.clock.now();
                    let due = self
                        .outstanding
                        .get(&request_id)
                        .is_some_and(|o| o.attempt == attempt && o.deadline <= now);
                    if due && !self.landed.contains_key(&request_id) {
                        self.force_progress(request_id);
                    } else {
                        self.kernel.note_spurious();
                    }
                }
                KernelEvent::HealthTick { member } => self.heartbeat_member(member as usize),
                _ => self.kernel.note_spurious(),
            }
        }
    }

    /// Forces progress on a slot whose response has not landed.
    ///
    /// A `Busy`-deferred request waits out its hint, then resubmits to
    /// its (already rotated) target with a fresh deadline — costing
    /// neither a timeout nor a retry, and never leaving early (the
    /// premature counter is pinned zero). A genuinely lost request waits
    /// out its deadline and either retransmits — failing over to the next
    /// replica, with capped exponential backoff — or, budget exhausted,
    /// expires with an inline [`ServerResponse::Error`].
    fn force_progress(&mut self, request_id: u64) {
        let Some((deadline, attempt, timer, deferred)) =
            self.outstanding.get(&request_id).map(|o| (o.deadline, o.attempt, o.timer, o.deferred))
        else {
            self.landed.insert(
                request_id,
                Landed {
                    response: ServerResponse::Error(format!(
                        "request {request_id} lost with no retransmission state"
                    )),
                    ready_at: self.clock.now(),
                },
            );
            return;
        };
        if deferred {
            // The hint gates the uplink: the resubmission leaves at the
            // later of "now" and the due instant, never earlier.
            self.clock.advance_to_at_least(deadline);
            if self.clock.now() < deadline {
                self.stats.premature_busy_retries += 1;
            }
            self.kernel.cancel(timer);
            let next_deadline = self.clock.now() + self.timeout;
            let fresh =
                self.kernel.arm(next_deadline, KernelEvent::RetryDue { request_id, attempt });
            if let Some(out) = self.outstanding.get_mut(&request_id) {
                out.deferred = false;
                out.deadline = next_deadline;
                out.timer = fresh;
            }
            self.transmit_request(request_id);
            return;
        }
        self.transport.timeouts += 1;
        self.clock.advance_to_at_least(deadline);
        self.kernel.cancel(timer);
        if attempt >= self.max_retries {
            if let Some(out) = self.outstanding.remove(&request_id) {
                self.pool.recycle(out.frame_bytes);
            }
            self.landed.insert(
                request_id,
                Landed {
                    response: ServerResponse::Error(format!(
                        "request {request_id} timed out after {} attempts",
                        attempt + 1
                    )),
                    ready_at: self.clock.now(),
                },
            );
            return;
        }
        self.transport.retries += 1;
        let shift = (attempt + 1).min(16);
        let backoff =
            SimDuration::from_micros(self.timeout.as_micros().saturating_mul(1u64 << shift))
                .min(BACKOFF_CAP);
        let next_deadline = self.clock.now() + backoff;
        let fresh = self
            .kernel
            .arm(next_deadline, KernelEvent::RetryDue { request_id, attempt: attempt + 1 });
        if let Some(out) = self.outstanding.get_mut(&request_id) {
            out.attempt = attempt + 1;
            out.deadline = next_deadline;
            out.timer = fresh;
        }
        // A timeout is evidence against the target, not just the wire:
        // the retransmit goes to the next replica on the ring.
        self.fail_over_target(request_id);
        self.transmit_request(request_id);
    }

    /// Retires window slots whose responses have already arrived.
    fn settle(&mut self) {
        let now = self.clock.now();
        let arrived: Vec<u64> =
            self.landed.iter().filter(|(_, l)| l.ready_at <= now).map(|(&rid, _)| rid).collect();
        for rid in arrived {
            self.window.close(rid);
        }
    }
}

/// When the E16 harness restarts a fleet member mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetRestart {
    /// Fleet index of the member to restart.
    pub member: usize,
    /// Demand pages that must have been delivered before the restart
    /// triggers (so the crash lands mid-stream, with requests in flight).
    pub after_pages: u64,
}

/// Configuration of one [`simulate_fleet_workload`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetWorkloadConfig {
    /// Fleet size.
    pub members: usize,
    /// Copies stored per object.
    pub replication: usize,
    /// Concurrent page-reader sessions.
    pub sessions: usize,
    /// Leading sessions (`min(audio_sessions, sessions)`) that submit at
    /// [`Priority::Audio`] and have their page latency tracked for the
    /// report's p99 column.
    pub audio_sessions: usize,
    /// Demand pages each session reads.
    pub pages_per_session: usize,
    /// Bytes per page.
    pub page_len: u64,
    /// Optional mid-run member restart.
    pub restart: Option<FleetRestart>,
    /// Admission-control policy applied to every member.
    pub service: ServiceConfig,
}

/// What one [`simulate_fleet_workload`] run measured — the E16 report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetReport {
    /// Wall-clock time until the last demand page was delivered.
    pub elapsed: SimDuration,
    /// Demand pages delivered byte-identical.
    pub pages: u64,
    /// Bytes moved over the shared link.
    pub bytes: u64,
    /// Requests re-aimed at a sibling replica (after a restart or a
    /// `Busy` rotation).
    pub failovers: u64,
    /// Member restarts survived via the `Hello`/`Welcome` handshake.
    pub epoch_resyncs: u64,
    /// Request frames replayed because a restart dropped them.
    pub replays: u64,
    /// Demand pages parked on a retry timer after a `Busy` turn-away.
    pub busy_deferred: u64,
    /// Deferred resubmissions that left before their hint elapsed —
    /// pinned zero.
    pub premature_busy_retries: u64,
    /// Prefetch-class frames the fleet's admission control shed.
    pub shed: u64,
    /// Demand frames rejected outright across the fleet.
    pub busy_rejections: u64,
    /// Pages served by each member, in fleet order — the placement-balance
    /// evidence.
    pub served_per_member: Vec<u64>,
    /// 99th-percentile submit-to-delivery latency of the audio-class
    /// pages (zero when the run had no audio sessions).
    pub audio_p99: SimDuration,
}

impl FleetReport {
    /// Aggregate demand goodput in verified pages per simulated second.
    pub fn goodput_pages_per_sec(&self) -> f64 {
        let micros = self.elapsed.as_micros();
        if micros == 0 {
            return 0.0;
        }
        self.pages as f64 * 1_000_000.0 / micros as f64
    }
}

/// Demand-page window each fleet session keeps in flight.
const FLEET_WINDOW: usize = 2;

/// The per-session byte pattern: session-distinct so a page served by the
/// wrong replica (or sliced at the wrong offset) can never verify.
fn fleet_pattern(session: usize, offset: u64) -> u8 {
    ((offset + session as u64 * 13) % 251) as u8
}

/// Runs the E16 workload: `sessions` concurrent readers demand-page
/// against a fleet of `members` servers over one shared Ethernet-class
/// link, each object placed by rendezvous hashing onto `replication`
/// members and its pages spread across that replica set in contiguous
/// blocks — each replica serves a sequential run of its copy, so the
/// spread buys balance without costing the optical head its locality.
///
/// The run is wake-list driven: every submitted frame arms a
/// [`KernelEvent::ServerWake`] at its arrival instant, and the service
/// pump visits exactly the members (and, via
/// [`ObjectServer::take_woken`], exactly the connections) with landed
/// work. A member restart mid-run bumps its epoch; the harness
/// re-handshakes, replays the dead incarnation's in-flight pages onto
/// sibling replicas, and the run still delivers every page
/// byte-identical. `Busy` turn-aways park on `RetryDue` timers for the
/// server's own hint — the E14 discipline, now per member.
pub fn simulate_fleet_workload(config: FleetWorkloadConfig) -> Result<FleetReport> {
    let FleetWorkloadConfig {
        members,
        replication,
        sessions,
        audio_sessions,
        pages_per_session,
        page_len,
        restart,
        service,
    } = config;
    let audio_sessions = audio_sessions.min(sessions);
    if sessions == 0 || pages_per_session == 0 || page_len == 0 {
        return Err(MinosError::Internal("workload needs sessions, pages, and bytes".into()));
    }
    if let Some(r) = restart {
        if r.member >= members {
            return Err(MinosError::Internal(format!(
                "restart member {} outside fleet of {members}",
                r.member
            )));
        }
    }
    let mut fleet = Fleet::new(members, replication)?;
    fleet.set_service_config(service);
    fleet.prewarm_payloads(BufferPool::DEFAULT_RETAIN_CAP, page_len as usize);
    // Per-session objects with session-distinct patterns; remember each
    // session's placement and per-replica page spans.
    let mut plans: Vec<(Placement, HashMap<usize, Vec<ByteSpan>>)> = Vec::with_capacity(sessions);
    for s in 0..sessions {
        let data: Vec<u8> =
            (0..pages_per_session as u64 * page_len).map(|i| fleet_pattern(s, i)).collect();
        let placement = fleet.publish_bytes(ObjectId::new(s as u64 + 1), &data)?;
        let mut spans: HashMap<usize, Vec<ByteSpan>> = HashMap::new();
        for replica in placement.replicas() {
            spans.insert(replica.member, page_spans(replica.span, pages_per_session));
        }
        plans.push((placement, spans));
    }
    let mut link = Link::ethernet();

    /// One submitted demand page: who asked, which page, which member
    /// currently owes the answer, and when it was first submitted (busy
    /// deferrals and replays keep the original instant — the audio p99
    /// measures what the listener felt, not the last attempt).
    struct InFlightPage {
        session: usize,
        page: usize,
        member: usize,
        issued: SimInstant,
    }
    let session_priority =
        |s: usize| if s < audio_sessions { Priority::Audio } else { Priority::Demand };
    let mut up_free = SimInstant::EPOCH;
    let mut down_free = SimInstant::EPOCH;
    let mut dev_free = vec![SimInstant::EPOCH; members];
    let mut kernel = Kernel::new();
    let mut arrivals: HashMap<u64, SimInstant> = HashMap::new();
    let mut inflight: HashMap<u64, InFlightPage> = HashMap::new();
    // Pages parked on a Busy hint, keyed by request id, valued with the
    // earliest instant the resubmission may leave.
    let mut deferred: HashMap<u64, SimInstant> = HashMap::new();
    // Per-member dirty sets: connections with frames enqueued since the
    // member's last pump.
    let mut dirty: Vec<BTreeSet<u64>> = (0..members).map(|_| BTreeSet::new()).collect();
    let mut epochs: Vec<u64> = (0..members).map(|m| fleet.epoch(m)).collect();
    let mut todo: Vec<VecDeque<usize>> =
        (0..sessions).map(|_| (0..pages_per_session).collect()).collect();
    let mut outstanding = vec![0usize; sessions];
    let mut next_rid = 1u64;
    let mut last_delivered = SimInstant::EPOCH;
    let mut delivered = 0u64;
    let mut failovers = 0u64;
    let mut epoch_resyncs = 0u64;
    let mut replays = 0u64;
    let mut busy_deferred = 0u64;
    let mut premature_busy_retries = 0u64;
    // One latency sample per audio page: bounded by the audio sessions'
    // share of the page budget.
    let mut audio_lat: Vec<SimDuration> = Vec::with_capacity(audio_sessions * pages_per_session);
    let mut restarted = false;
    let mut rounds = 0u32;
    while todo.iter().any(|q| !q.is_empty()) || outstanding.iter().any(|&o| o > 0) {
        rounds += 1;
        if rounds > 200_000 {
            return Err(MinosError::Internal("fleet workload failed to converge".into()));
        }
        // Submissions: each session tops its demand window back up, a
        // page's replica chosen by page block — replica i of k serves the
        // i-th contiguous run of the object's pages, keeping each optical
        // head sequential. The window is the admission bound: at most
        // FLEET_WINDOW pages per session are ever in flight.
        let mut submitted = false;
        for s in 0..sessions {
            while outstanding[s] < FLEET_WINDOW {
                let Some(page) = todo[s].pop_front() else {
                    break;
                };
                outstanding[s] += 1;
                submitted = true;
                let rid = next_rid;
                next_rid += 1;
                let replicas = plans[s].0.replicas();
                let replica = replicas[page * replicas.len() / pages_per_session];
                let span = plans[s].1[&replica.member][page];
                let frame = Frame::request_with_priority(
                    s as u64 + 1,
                    rid,
                    session_priority(s),
                    ServerRequest::FetchSpan { span },
                );
                let issued = up_free;
                let arrival = up_free + link.transfer(frame.wire_size());
                up_free = arrival;
                arrivals.insert(rid, arrival);
                inflight
                    .insert(rid, InFlightPage { session: s, page, member: replica.member, issued });
                fleet
                    .member_mut(replica.member)
                    .expect("replica indices are in range")
                    .enqueue(frame)?;
                dirty[replica.member].insert(s as u64 + 1);
                kernel.arm(arrival, KernelEvent::ServerWake { member: replica.member as u64 });
            }
        }
        // The mid-run crash: once enough pages have landed, one member
        // loses its volatile queues (its device contents survive). The
        // frames submitted above die with it and must be replayed.
        if let Some(r) = restart {
            if !restarted && delivered >= r.after_pages {
                fleet.restart_member(r.member)?;
                restarted = true;
            }
        }
        // Epoch resync: re-handshake each bumped member and replay its
        // lost in-flight pages onto sibling replicas (deferred pages keep
        // their timers — they were not in any queue).
        for m in 0..members {
            if fleet.epoch(m) == epochs[m] {
                continue;
            }
            epoch_resyncs += 1;
            let hello = Frame::request(0, 0, ServerRequest::Hello { epoch: epochs[m] });
            let up = link.transfer(hello.wire_size());
            let hello_arrival = up_free + up;
            up_free = hello_arrival;
            let (answer, took) = fleet
                .member_mut(m)
                .expect("resync indices are in range")
                .handle(&ServerRequest::Hello { epoch: epochs[m] });
            let done = hello_arrival.max(dev_free[m]) + took;
            dev_free[m] = done;
            let welcome = Frame::response(0, 0, answer);
            down_free = done.max(down_free) + link.transfer(welcome.wire_size());
            epochs[m] = match welcome.payload {
                FramePayload::Response(ServerResponse::Welcome { epoch }) => epoch,
                _ => fleet.epoch(m),
            };
            let lost: Vec<u64> = inflight
                .iter()
                .filter(|(rid, p)| p.member == m && !deferred.contains_key(rid))
                .map(|(&rid, _)| rid)
                .collect();
            for rid in lost {
                replays += 1;
                let p = inflight.get_mut(&rid).expect("rid collected from inflight");
                let next = plans[p.session].0.next_after(p.member);
                if next.member != p.member {
                    failovers += 1;
                }
                p.member = next.member;
                let span = plans[p.session].1[&next.member][p.page];
                let frame = Frame::request_with_priority(
                    p.session as u64 + 1,
                    rid,
                    session_priority(p.session),
                    ServerRequest::FetchSpan { span },
                );
                let arrival = up_free + link.transfer(frame.wire_size());
                up_free = arrival;
                arrivals.insert(rid, arrival);
                let conn = frame.conn_id;
                fleet
                    .member_mut(next.member)
                    .expect("replica indices are in range")
                    .enqueue(frame)?;
                dirty[next.member].insert(conn);
                kernel.arm(arrival, KernelEvent::ServerWake { member: next.member as u64 });
            }
        }
        // Serve: advance the kernel to the wire frontier and handle every
        // wake. A ServerWake pumps one member — first the connections the
        // harness marked dirty, then whatever the member's own wake list
        // names (Busy rejections, restart orphans) — and a RetryDue puts
        // a deferred page back on the wire, never before its hint.
        let mut progressed = false;
        loop {
            kernel.advance_to(up_free.max(down_free));
            let Some(event) = kernel.take_ready() else { break };
            match event {
                KernelEvent::ServerWake { member } => {
                    let m = member as usize;
                    let mut conns: Vec<u64> = dirty[m].iter().copied().collect();
                    dirty[m].clear();
                    loop {
                        for conn in conns.drain(..) {
                            while let Some((frame, charge)) = fleet
                                .member_mut(m)
                                .expect("wake events name fleet members")
                                .poll_conn(conn)
                            {
                                progressed = true;
                                let rid = frame.request_id;
                                let arrival = arrivals.remove(&rid).unwrap_or(up_free);
                                let done = arrival.max(dev_free[m]) + charge;
                                dev_free[m] = done;
                                let at = done.max(down_free) + link.transfer(frame.wire_size());
                                down_free = at;
                                last_delivered = last_delivered.max(at);
                                let Some(meta) = inflight.get(&rid) else {
                                    continue;
                                };
                                let (s, page, issued) = (meta.session, meta.page, meta.issued);
                                let FramePayload::Response(response) = frame.payload else {
                                    continue;
                                };
                                match response {
                                    ServerResponse::Span(bytes) => {
                                        let from = page as u64 * page_len;
                                        let ok = bytes.len() as u64 == page_len
                                            && bytes.iter().enumerate().all(|(i, &b)| {
                                                b == fleet_pattern(s, from + i as u64)
                                            });
                                        if !ok {
                                            return Err(MinosError::Internal(format!(
                                                "session {s} page {page} corrupt"
                                            )));
                                        }
                                        fleet
                                            .member_mut(m)
                                            .expect("wake events name fleet members")
                                            .recycle_payload(bytes);
                                        inflight.remove(&rid);
                                        outstanding[s] -= 1;
                                        delivered += 1;
                                        if s < audio_sessions {
                                            audio_lat.push(at.saturating_since(issued));
                                        }
                                    }
                                    ServerResponse::Busy { retry_after } => {
                                        // Honor the hint: park the page on
                                        // a retry timer, keep its window
                                        // slot held, and rotate it to the
                                        // next replica for the resubmit.
                                        busy_deferred += 1;
                                        let due = at + retry_after;
                                        deferred.insert(rid, due);
                                        kernel.arm(
                                            due,
                                            KernelEvent::RetryDue { request_id: rid, attempt: 0 },
                                        );
                                        let p = inflight
                                            .get_mut(&rid)
                                            .expect("meta was just read from inflight");
                                        p.member = plans[s].0.next_after(p.member).member;
                                    }
                                    other => {
                                        return Err(MinosError::Internal(format!(
                                            "unexpected response {other:?}"
                                        )));
                                    }
                                }
                            }
                        }
                        conns = fleet
                            .member_mut(m)
                            .expect("wake events name fleet members")
                            .take_woken();
                        if conns.is_empty() {
                            break;
                        }
                    }
                }
                KernelEvent::RetryDue { request_id, .. } => {
                    let Some(due) = deferred.remove(&request_id) else {
                        kernel.note_spurious();
                        continue;
                    };
                    progressed = true;
                    let p = inflight.get(&request_id).expect("deferred pages stay in flight");
                    let (s, page, m) = (p.session, p.page, p.member);
                    let span = plans[s].1[&m][page];
                    let frame = Frame::request_with_priority(
                        s as u64 + 1,
                        request_id,
                        session_priority(s),
                        ServerRequest::FetchSpan { span },
                    );
                    // The resubmission may not leave before the hint
                    // elapses: the uplink is pushed out to the due
                    // instant if it would otherwise be free earlier.
                    let leave = up_free.max(due);
                    if leave < due {
                        premature_busy_retries += 1;
                    }
                    let arrival = leave + link.transfer(frame.wire_size());
                    up_free = arrival;
                    arrivals.insert(request_id, arrival);
                    fleet.member_mut(m).expect("replica indices are in range").enqueue(frame)?;
                    dirty[m].insert(s as u64 + 1);
                    kernel.arm(arrival, KernelEvent::ServerWake { member: m as u64 });
                }
                _ => kernel.note_spurious(),
            }
        }
        if !progressed && !submitted {
            // Nothing moved and nothing new went out: every live page is
            // parked on a timer beyond the wire frontier. Jump simulated
            // time to the next armed deadline (cascade ticks that ready
            // nothing just loop again); no deadline at all is a wedge.
            let Some(deadline) = kernel.next_deadline() else {
                return Err(MinosError::Internal("fleet workload wedged with no timer".into()));
            };
            kernel.advance_to(deadline);
            up_free = up_free.max(kernel.now());
        }
    }
    let stats = fleet.service_stats();
    audio_lat.sort_unstable();
    let p99_rank = (audio_lat.len() * 99).div_ceil(100).saturating_sub(1);
    let audio_p99 = audio_lat.get(p99_rank).copied().unwrap_or(SimDuration::ZERO);
    Ok(FleetReport {
        elapsed: last_delivered.since(SimInstant::EPOCH),
        pages: delivered,
        bytes: link.stats().bytes,
        failovers,
        epoch_resyncs,
        replays,
        busy_deferred,
        premature_busy_retries,
        shed: stats.shed,
        busy_rejections: stats.busy_rejections,
        served_per_member: (0..members)
            .map(|m| fleet.member(m).map_or(0, |s| s.service_stats().served))
            .collect(),
        audio_p99,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_order_is_a_deterministic_permutation() {
        for raw in 1..=64u64 {
            let order = rendezvous_order(ObjectId::new(raw), 8);
            assert_eq!(order, rendezvous_order(ObjectId::new(raw), 8));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "not a permutation for {raw}");
        }
    }

    #[test]
    fn rendezvous_spreads_primaries_across_members() {
        let members = 4;
        let mut counts = vec![0usize; members];
        for raw in 1..=64u64 {
            counts[rendezvous_order(ObjectId::new(raw), members)[0]] += 1;
        }
        // 64 objects over 4 members: every member owns some primaries and
        // none owns a runaway majority.
        for (m, &count) in counts.iter().enumerate() {
            assert!(count >= 4, "member {m} owns only {count} primaries: {counts:?}");
            assert!(count <= 32, "member {m} owns {count} primaries: {counts:?}");
        }
    }

    #[test]
    fn replica_sets_are_distinct_members_in_ring_order() {
        let mut fleet = Fleet::new(4, 3).expect("valid shape");
        let body = vec![7u8; 4096];
        let placement = fleet.publish_bytes(ObjectId::new(9), &body).expect("publish");
        let members: Vec<usize> = placement.replicas().iter().map(|r| r.member).collect();
        let distinct: BTreeSet<usize> = members.iter().copied().collect();
        assert_eq!(distinct.len(), 3, "replicas must land on distinct members: {members:?}");
        // The failover ring closes: walking next_after from the primary
        // visits every replica and returns home.
        let mut at = placement.primary().member;
        let mut seen = vec![at];
        for _ in 0..2 {
            at = placement.next_after(at).member;
            seen.push(at);
        }
        assert_eq!(placement.next_after(at).member, placement.primary().member);
        let walked: BTreeSet<usize> = seen.iter().copied().collect();
        assert_eq!(walked, distinct);
    }

    #[test]
    fn fleet_shape_is_validated() {
        assert!(Fleet::new(0, 0).is_err());
        assert!(Fleet::new(2, 0).is_err());
        assert!(Fleet::new(2, 3).is_err());
        assert!(Fleet::new(2, 2).is_ok());
    }

    #[test]
    fn fetch_page_round_trips_through_the_placed_replicas() {
        let mut fleet = Fleet::new(3, 2).expect("valid shape");
        let object = ObjectId::new(5);
        let body: Vec<u8> = (0..8192u64).map(|i| (i % 251) as u8).collect();
        fleet.publish_bytes(object, &body).expect("publish");
        let mut conn = FleetConnection::new(fleet, Link::ethernet());
        let pages = 8usize;
        let mut tickets = Vec::with_capacity(pages);
        for page in 0..pages {
            let rel = ByteSpan::at(page as u64 * 1024, 1024);
            tickets.push((conn.fetch_page(object, rel).expect("submit"), page));
        }
        for (ticket, page) in tickets {
            let (response, _) = conn.wait(ticket).expect("collect");
            let ServerResponse::Span(bytes) = response else {
                panic!("unexpected response {response:?}");
            };
            let from = page as u64 * 1024;
            let expect: Vec<u8> = (from..from + 1024).map(|i| (i % 251) as u8).collect();
            assert_eq!(bytes, expect, "page {page}");
            conn.recycle_payload(bytes);
        }
        // Pages spread across both replicas of the object.
        let served: Vec<u64> = (0..3)
            .map(|m| conn.fleet().member(m).map_or(0, |s| s.service_stats().served))
            .collect();
        assert_eq!(served.iter().sum::<u64>(), pages as u64);
        assert_eq!(served.iter().filter(|&&s| s > 0).count(), 2, "{served:?}");
    }

    #[test]
    fn member_restart_fails_in_flight_pages_over_to_siblings() {
        let mut fleet = Fleet::new(2, 2).expect("valid shape");
        let object = ObjectId::new(11);
        let body: Vec<u8> = (0..16384u64).map(|i| ((i * 3) % 251) as u8).collect();
        fleet.publish_bytes(object, &body).expect("publish");
        let mut conn = FleetConnection::with_window(fleet, Link::ethernet(), 8);
        let mut tickets = Vec::with_capacity(8);
        for page in 0..8usize {
            let rel = ByteSpan::at(page as u64 * 2048, 2048);
            tickets.push((conn.fetch_page(object, rel).expect("submit"), page));
        }
        // Both members hold in-flight frames (pages alternate replicas by
        // request id); restarting member 0 orphans its share mid-window.
        conn.fleet_mut().restart_member(0).expect("member 0 exists");
        for (ticket, page) in tickets {
            let (response, _) = conn.wait(ticket).expect("collect");
            let ServerResponse::Span(bytes) = response else {
                panic!("unexpected response {response:?}");
            };
            let from = page as u64 * 2048;
            let expect: Vec<u8> = (from..from + 2048).map(|i| ((i * 3) % 251) as u8).collect();
            assert_eq!(bytes, expect, "page {page} corrupt after restart");
            conn.recycle_payload(bytes);
        }
        let transport = conn.transport_stats();
        assert_eq!(transport.epoch_resyncs, 1, "{transport:?}");
        assert!(transport.replays >= 1, "{transport:?}");
        assert!(transport.failovers >= 1, "{transport:?}");
        assert_eq!(conn.fleet_stats().premature_busy_retries, 0);
    }

    #[test]
    fn busy_turnaways_defer_and_eventually_deliver() {
        let mut fleet = Fleet::new(1, 1).expect("valid shape");
        let object = ObjectId::new(3);
        let body: Vec<u8> = (0..8192u64).map(|i| ((i * 7) % 251) as u8).collect();
        fleet.publish_bytes(object, &body).expect("publish");
        fleet.set_service_config(ServiceConfig {
            per_conn_cap: 1,
            global_cap: 64,
            retry_slice: SimDuration::from_micros(500),
        });
        let mut conn = FleetConnection::with_window(fleet, Link::ethernet(), 8);
        let mut tickets = Vec::with_capacity(8);
        for page in 0..8usize {
            let rel = ByteSpan::at(page as u64 * 1024, 1024);
            tickets.push((conn.fetch_page(object, rel).expect("submit"), page));
        }
        for (ticket, page) in tickets {
            let (response, _) = conn.wait(ticket).expect("collect");
            let ServerResponse::Span(bytes) = response else {
                panic!("unexpected response {response:?}");
            };
            let from = page as u64 * 1024;
            let expect: Vec<u8> = (from..from + 1024).map(|i| ((i * 7) % 251) as u8).collect();
            assert_eq!(bytes, expect, "page {page}");
            conn.recycle_payload(bytes);
        }
        let stats = conn.fleet_stats();
        assert!(stats.busy_deferred > 0, "cap 1 against a burst of 8 must defer: {stats:?}");
        assert_eq!(stats.premature_busy_retries, 0, "{stats:?}");
        assert!(conn.fleet().service_stats().busy_rejections > 0);
    }

    #[test]
    fn reset_accounting_clears_fleet_and_transport_state() {
        let mut fleet = Fleet::new(2, 1).expect("valid shape");
        let object = ObjectId::new(2);
        fleet.publish_bytes(object, &vec![5u8; 4096]).expect("publish");
        let mut conn = FleetConnection::new(fleet, Link::ethernet());
        let ticket = conn.fetch_page(object, ByteSpan::at(0, 4096)).expect("submit");
        let (response, _) = conn.wait(ticket).expect("collect");
        assert!(matches!(response, ServerResponse::Span(_)));
        assert!(conn.bytes_transferred() > 0);
        conn.reset_accounting();
        assert_eq!(conn.bytes_transferred(), 0);
        assert_eq!(conn.elapsed(), SimDuration::ZERO);
        assert_eq!(conn.in_flight(), 0);
        assert_eq!(conn.transport_stats(), TransportStats::default());
        assert_eq!(conn.fleet_stats(), FleetStats::default());
        assert_eq!(conn.fleet().service_stats().served, 0);
        // The pipeline still works after the reset.
        let ticket = conn.fetch_page(object, ByteSpan::at(0, 4096)).expect("resubmit");
        let (response, _) = conn.wait(ticket).expect("recollect");
        assert!(matches!(response, ServerResponse::Span(_)));
    }

    #[test]
    fn fleet_workload_scales_and_survives_a_mid_run_restart() {
        let service = ServiceConfig::default();
        let base = FleetWorkloadConfig {
            members: 1,
            replication: 1,
            sessions: 6,
            audio_sessions: 2,
            pages_per_session: 4,
            page_len: 2048,
            restart: None,
            service,
        };
        let solo = simulate_fleet_workload(base).expect("solo run");
        assert_eq!(solo.pages, 24);
        assert_eq!(solo.epoch_resyncs, 0);
        assert_eq!(solo.premature_busy_retries, 0);
        assert!(solo.audio_p99 > SimDuration::ZERO, "audio sessions must be measured: {solo:?}");

        let crashed = simulate_fleet_workload(FleetWorkloadConfig {
            members: 3,
            replication: 2,
            restart: Some(FleetRestart { member: 0, after_pages: 6 }),
            ..base
        })
        .expect("restart run");
        assert_eq!(crashed.pages, 24, "every page survives the restart: {crashed:?}");
        assert_eq!(crashed.epoch_resyncs, 1, "{crashed:?}");
        assert_eq!(crashed.premature_busy_retries, 0, "{crashed:?}");
        assert_eq!(crashed.served_per_member.len(), 3);
        assert!(
            crashed.served_per_member.iter().all(|&s| s > 0),
            "replication must spread load: {crashed:?}"
        );
    }

    #[test]
    fn health_monitor_walks_up_suspect_down_and_recovers() {
        let mut health = HealthMonitor::new(2);
        assert_eq!(health.state(0), MemberHealth::Up);
        assert_eq!(health.note_miss(0), MemberHealth::Suspect);
        assert_eq!(health.note_miss(0), MemberHealth::Down);
        assert!(health.is_down(0));
        // The sibling's view is independent.
        assert_eq!(health.state(1), MemberHealth::Up);
        // One pong is positive proof of life: immediate recovery.
        assert_eq!(health.note_pong(0, SimDuration::from_micros(100)), MemberHealth::Up);
        let stats = health.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.down_transitions, 1);
        assert_eq!(stats.recoveries, 1);
        health.reset_stats();
        assert_eq!(health.stats(), HealthStats::default());
    }

    #[test]
    fn health_monitor_flags_gray_failure_against_own_baseline() {
        let mut health = HealthMonitor::new(1);
        // Warm the baseline with healthy ~100µs echoes.
        for _ in 0..4 {
            assert_eq!(health.note_pong(0, SimDuration::from_micros(100)), MemberHealth::Up);
        }
        assert_eq!(health.baseline(0), SimDuration::from_micros(100));
        // A 10× echo is gray failure, and it must not poison the baseline.
        assert_eq!(health.note_pong(0, SimDuration::from_micros(1000)), MemberHealth::Slow);
        assert_eq!(health.baseline(0), SimDuration::from_micros(100));
        // Recovery needs a streak of healthy echoes.
        assert_eq!(health.note_pong(0, SimDuration::from_micros(110)), MemberHealth::Slow);
        assert_eq!(health.note_pong(0, SimDuration::from_micros(110)), MemberHealth::Up);
        let stats = health.stats();
        assert_eq!(stats.slow_transitions, 1);
        assert_eq!(stats.recoveries, 1);
    }

    #[test]
    fn repair_replica_restores_the_replication_factor_on_the_ring_successor() {
        let mut fleet = Fleet::new(4, 2).expect("valid shape");
        let object = ObjectId::new(21);
        let body: Vec<u8> = (0..8192u64).map(|i| ((i * 5) % 251) as u8).collect();
        let placement = fleet.publish_paged(object, &body, 2048).expect("publish");
        let lost = placement.primary().member;
        let survivor = placement.next_after(lost).member;
        let target = fleet.ring_successor(object, &[lost]).expect("spare member exists");
        assert!(!placement.replicas().iter().any(|r| r.member == target));
        let receipt = fleet.repair_replica(object, lost, survivor, target).expect("repair");
        assert_eq!(receipt.bytes, body.len() as u64);
        assert!(receipt.read_time > SimDuration::ZERO && receipt.write_time > SimDuration::ZERO);
        // The placement now names the successor instead of the dead
        // member, and the rebuilt copy verifies clean.
        let healed = fleet.placement(object).expect("placement survives").clone();
        let holders: Vec<usize> = healed.replicas().iter().map(|r| r.member).collect();
        assert!(holders.contains(&target) && !holders.contains(&lost), "{holders:?}");
        let (corrupt, _) = fleet.verify_copy(object, target).expect("verify");
        assert!(corrupt.is_empty(), "rebuilt copy must verify: {corrupt:?}");
        // A second repair of the same loss is refused: the target already
        // holds a copy.
        assert!(fleet.repair_replica(object, lost, survivor, target).is_err());
    }

    #[test]
    fn scrub_detects_bit_rot_and_heal_copy_repairs_in_place() {
        let mut fleet = Fleet::new(3, 2).expect("valid shape");
        let object = ObjectId::new(33);
        let body: Vec<u8> = (0..8192u64).map(|i| ((i * 11) % 251) as u8).collect();
        let placement = fleet.publish_paged(object, &body, 2048).expect("publish");
        let victim = placement.primary().member;
        // Rot exactly one read on the victim's media, then freeze decay so
        // the scrub itself reads deterministically clean media.
        let device = fleet.member_mut(victim).expect("victim exists").archiver_mut().device_mut();
        device.set_bit_rot(77, 1.0);
        let rotted = fleet.verify_copy(object, victim).expect("verification read");
        assert!(!rotted.0.is_empty(), "rate-1.0 rot must corrupt a verified page");
        let device = fleet.member_mut(victim).expect("victim exists").archiver_mut().device_mut();
        device.set_bit_rot(0, 0.0);
        assert!(device.bit_rot_flips() > 0);
        // The scrub pass finds the damage...
        let scrub = fleet.scrub_member(victim).expect("scrub");
        assert_eq!(scrub.objects, 1);
        assert_eq!(scrub.pages, 4);
        assert!(!scrub.corrupt.is_empty(), "{scrub:?}");
        assert!(scrub.corrupt.iter().all(|&(id, _)| id == object));
        // ...and the heal re-homes a verified sibling copy in place.
        let receipt = fleet.heal_copy(object, victim).expect("heal");
        assert_eq!(receipt.target, victim, "heal stays on the corrupt member");
        assert_ne!(receipt.source, victim, "clean bytes come from a sibling");
        let rescrub = fleet.scrub_member(victim).expect("re-scrub");
        assert!(rescrub.corrupt.is_empty(), "healed copy must verify: {rescrub:?}");
    }

    #[test]
    fn idle_heartbeat_notices_a_member_restart_without_a_submit() {
        let mut fleet = Fleet::new(2, 2).expect("valid shape");
        let object = ObjectId::new(8);
        fleet.publish_bytes(object, &vec![9u8; 4096]).expect("publish");
        let mut conn = FleetConnection::new(fleet, Link::ethernet());
        conn.enable_heartbeat(SimDuration::from_millis(1));
        // The connection is idle — nothing submitted — when member 1
        // restarts. Before the heartbeat existed, the stale epoch went
        // unnoticed until the next fetch_page.
        conn.fleet_mut().restart_member(1).expect("member 1 exists");
        conn.advance_to(SimInstant::EPOCH + SimDuration::from_millis(10));
        let health = conn.health().stats();
        assert!(health.pings >= 2, "both members heartbeat: {health:?}");
        assert_eq!(health.pongs, health.pings, "healthy members echo every ping: {health:?}");
        assert!(health.epoch_mismatches >= 1, "the restart must be noticed: {health:?}");
        assert!(
            conn.transport_stats().epoch_resyncs >= 1,
            "the heartbeat must trigger the resync: {:?}",
            conn.transport_stats()
        );
        // The detector never declared anyone down: the member answered
        // its very first post-restart ping.
        assert_eq!(conn.health().state(1), MemberHealth::Up);
        // And the data path still works.
        let ticket = conn.fetch_page(object, ByteSpan::at(0, 4096)).expect("submit");
        let (response, _) = conn.wait(ticket).expect("collect");
        assert!(matches!(response, ServerResponse::Span(_)));
    }

    #[test]
    fn repair_queue_dedups_admissions() {
        let mut queue = RepairQueue::new();
        let task = RepairTask { object: ObjectId::new(1), lost: 0 };
        assert!(queue.admit(task));
        assert!(!queue.admit(task), "the same loss is admitted once");
        assert!(queue.admit(RepairTask { object: ObjectId::new(1), lost: 1 }));
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(task));
        queue.note_completed(4096);
        let stats = queue.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.deduped, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.bytes_rebuilt, 4096);
        queue.reset_stats();
        assert_eq!(queue.stats(), RepairStats::default());
        assert!(!queue.is_empty(), "reset clears accounting, not pending work");
    }
}
