//! The visual-mode browsing engine.
//!
//! Canonical state is a character position in the object's text segment.
//! Page, logical and pattern commands move that position; the engine then
//! decides what the screen shows:
//!
//! * normally, the base presentation form's page containing the position;
//! * inside the anchor of a *visual logical message*, the related text is
//!   re-paginated under the pinned message ("the logical message is
//!   displayed at the upper part of the screen while the lower part of the
//!   screen is devoted to the display of parts of the related visual
//!   segment", §2) — paging walks the related text page by page and the
//!   first turn past its end drops the pinned message, exactly the Figure
//!   3–4 sequence;
//! * entering the anchor of a *voice logical message* plays it ("the voice
//!   logical message will be played when the user first branches into the
//!   corresponding segments during browsing", §2).

use crate::command::BrowseEvent;
use minos_object::{Anchor, MessageBody, MultimediaObject};
use minos_text::{
    Document, LogicalLevel, PaginateConfig, PatternSearcher, PresentationForm, VisualPage,
};
use minos_types::{CharSpan, MinosError, PageNumber, Result};
use std::collections::HashSet;

/// A pinned-message region: the message, its anchor span, and the related
/// text's own pagination under the reserved top area.
#[derive(Clone, Debug)]
struct PinnedRegion {
    message: usize,
    span: CharSpan,
    reserved: u32,
    form: PresentationForm,
    show_once: bool,
}

/// What the display presents right now.
#[derive(Clone, Debug)]
pub struct VisualView {
    /// The visual page to render.
    pub page: VisualPage,
    /// 0-based index of the page within the active form.
    pub page_index: usize,
    /// Page count of the active form.
    pub page_count: usize,
    /// The message pinned at the top, if any (index into the object's
    /// message table).
    pub pinned_message: Option<usize>,
    /// Vertical pixels reserved for the pinned message.
    pub reserved_top: u32,
}

/// The visual-mode engine for one text segment of an object.
#[derive(Clone, Debug)]
pub struct VisualEngine {
    doc: Document,
    base_form: PresentationForm,
    regions: Vec<PinnedRegion>,
    voice_anchors: Vec<(usize, CharSpan)>,
    pos: u32,
    inside_voice: HashSet<usize>,
    shown_once: HashSet<usize>,
    pinned_now: Option<usize>,
}

impl VisualEngine {
    /// Builds the engine for `object`'s text segment `segment`.
    pub fn new(object: &MultimediaObject, segment: usize, config: PaginateConfig) -> Result<Self> {
        // Segment 0 of a text-less object (a pure image object like the
        // subway map) browses as an empty document: page commands are
        // no-ops and only image facilities apply. Higher segment indices
        // must exist.
        let doc = match object.text_segments.get(segment) {
            Some(d) => d.clone(),
            None if segment == 0 => Document::default(),
            None => return Err(MinosError::UnknownComponent(format!("text segment {segment}"))),
        };
        let base_form = PresentationForm::paginate(&doc, config);

        let mut regions = Vec::new();
        let mut voice_anchors = Vec::new();
        for (i, message) in object.messages.iter().enumerate() {
            let Anchor::TextSegment { segment: s, span } = message.anchor else { continue };
            if s != segment {
                continue;
            }
            match &message.body {
                MessageBody::Voice { .. } => voice_anchors.push((i, span)),
                MessageBody::Visual { content, show_once } => {
                    // Reserve space for the pinned content: the image's
                    // height (clamped to half a page) plus a caption strip.
                    let image_height = content
                        .image
                        .and_then(|idx| object.images.get(idx))
                        .map(|img| img.size().height)
                        .unwrap_or(0);
                    let reserved = (image_height + 24).min(config.page_size.height / 2).max(40);
                    let sub = Self::paginate_span(&doc, span, config.with_reserved_top(reserved));
                    regions.push(PinnedRegion {
                        message: i,
                        span,
                        reserved,
                        form: sub,
                        show_once: *show_once,
                    });
                }
            }
        }
        let mut engine = VisualEngine {
            doc,
            base_form,
            regions,
            voice_anchors,
            pos: 0,
            inside_voice: HashSet::new(),
            shown_once: HashSet::new(),
            pinned_now: None,
        };
        // Establish initial message state without reporting entry events;
        // `open()` reports them.
        engine.pinned_now = engine.active_region_index().map(|r| engine.regions[r].message);
        Ok(engine)
    }

    /// Paginates only the blocks of `doc` lying within `span` (the related
    /// visual segment of a pinned message).
    fn paginate_span(doc: &Document, span: CharSpan, config: PaginateConfig) -> PresentationForm {
        let blocks: Vec<minos_text::LaidBlock> = doc
            .blocks()
            .iter()
            .filter(|b| b.span().map(|s| span.contains_span(&s)).unwrap_or(false))
            .map(|b| minos_text::layout::layout_block(doc, b, config.content_width()))
            .collect();
        PresentationForm::from_blocks(&blocks, config)
    }

    /// The document being browsed.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// Current canonical position (character offset).
    pub fn position(&self) -> u32 {
        self.pos
    }

    /// The base form's page count (user-facing page numbering).
    pub fn base_page_count(&self) -> usize {
        self.base_form.page_count()
    }

    /// The index of the active pinned region, honouring show-once
    /// suppression.
    fn active_region_index(&self) -> Option<usize> {
        self.regions.iter().position(|r| {
            (r.span.contains(self.pos) || (r.span.is_empty() && r.span.start == self.pos))
                && !(r.show_once && self.shown_once.contains(&r.message))
        })
    }

    /// What the screen shows now.
    pub fn view(&self) -> VisualView {
        if let Some(ri) = self.active_region_index() {
            let region = &self.regions[ri];
            let idx = region.form.page_containing(self.pos).unwrap_or(0);
            return VisualView {
                page: region.form.page(idx).cloned().unwrap_or_default(),
                page_index: idx,
                page_count: region.form.page_count(),
                pinned_message: Some(region.message),
                reserved_top: region.reserved,
            };
        }
        let idx = self.base_form.page_containing(self.pos).unwrap_or(0);
        VisualView {
            page: self.base_form.page(idx).cloned().unwrap_or_default(),
            page_index: idx,
            page_count: self.base_form.page_count(),
            pinned_message: None,
            reserved_top: 0,
        }
    }

    /// Moves the canonical position, emitting entry/exit events for
    /// logical messages and the page-shown event.
    fn goto_pos(&mut self, pos: u32) -> Vec<BrowseEvent> {
        let mut events = Vec::new();
        self.pos = pos.min(self.doc.len());
        // Voice messages: fire on entry.
        for &(message, span) in &self.voice_anchors {
            let inside = span.contains(self.pos) || (span.is_empty() && span.start == self.pos);
            if inside && self.inside_voice.insert(message) {
                events.push(BrowseEvent::VoiceMessagePlayed(message));
            } else if !inside {
                self.inside_voice.remove(&message);
            }
        }
        // Visual messages: pin/unpin transitions.
        let now = self.active_region_index().map(|r| self.regions[r].message);
        if now != self.pinned_now {
            if now.is_none() {
                events.push(BrowseEvent::VisualMessageUnpinned);
            }
            if let Some(m) = now {
                self.shown_once.insert(m);
                events.push(BrowseEvent::VisualMessagePinned(m));
            }
            self.pinned_now = now;
        }
        events.push(BrowseEvent::PageShown(self.view().page_index));
        events
    }

    /// Reports the initial presentation (messages anchored at the start
    /// fire here).
    pub fn open(&mut self) -> Vec<BrowseEvent> {
        self.pinned_now = None;
        self.goto_pos(0)
    }

    /// Turn to the next page of the active form; past the end of a pinned
    /// region this exits the region (Figure 4's final page turn).
    pub fn next_page(&mut self) -> Vec<BrowseEvent> {
        if let Some(ri) = self.active_region_index() {
            let region = &self.regions[ri];
            let idx = region.form.page_containing(self.pos).unwrap_or(0);
            if idx + 1 < region.form.page_count() {
                let start = region.form.page(idx + 1).and_then(|p| p.span).map(|s| s.start);
                if let Some(start) = start {
                    return self.goto_pos(start);
                }
            }
            let exit = region.span.end.min(self.doc.len());
            return self.goto_pos(exit);
        }
        let idx = self.base_form.page_containing(self.pos).unwrap_or(0);
        if idx + 1 < self.base_form.page_count() {
            if let Some(start) = self.base_form.page(idx + 1).and_then(|p| p.span).map(|s| s.start)
            {
                return self.goto_pos(start);
            }
        }
        vec![BrowseEvent::PageShown(self.view().page_index)]
    }

    /// Turn to the previous page of the active form; before a pinned
    /// region's first page this exits backwards.
    pub fn previous_page(&mut self) -> Vec<BrowseEvent> {
        if let Some(ri) = self.active_region_index() {
            let region = &self.regions[ri];
            let idx = region.form.page_containing(self.pos).unwrap_or(0);
            if idx > 0 {
                let start = region.form.page(idx - 1).and_then(|p| p.span).map(|s| s.start);
                if let Some(start) = start {
                    return self.goto_pos(start);
                }
            }
            return self.goto_pos(region.span.start.saturating_sub(1));
        }
        let idx = self.base_form.page_containing(self.pos).unwrap_or(0);
        if idx > 0 {
            if let Some(start) = self.base_form.page(idx - 1).and_then(|p| p.span).map(|s| s.start)
            {
                return self.goto_pos(start);
            }
        }
        vec![BrowseEvent::PageShown(self.view().page_index)]
    }

    /// Advance `delta` pages of the *base* form (absolute page
    /// arithmetic, clamped).
    pub fn advance_pages(&mut self, delta: i64) -> Vec<BrowseEvent> {
        let count = self.base_form.page_count();
        if count == 0 {
            return Vec::new();
        }
        let cur = self.base_form.page_containing(self.pos).unwrap_or(0) as i64;
        let target = (cur + delta).clamp(0, count as i64 - 1) as usize;
        self.goto_base_page(target)
    }

    /// Jump to an absolute base-form page number.
    pub fn goto_page(&mut self, page: PageNumber) -> Vec<BrowseEvent> {
        let count = self.base_form.page_count();
        if count == 0 {
            return Vec::new();
        }
        self.goto_base_page(page.index().min(count - 1))
    }

    fn goto_base_page(&mut self, index: usize) -> Vec<BrowseEvent> {
        match self.base_form.page(index).and_then(|p| p.span) {
            Some(span) => self.goto_pos(span.start),
            None => vec![BrowseEvent::PageShown(self.view().page_index)],
        }
    }

    /// "See the page with the next start of a logical unit" (§2).
    pub fn next_unit(&mut self, level: LogicalLevel) -> Vec<BrowseEvent> {
        match self.doc.tree().next_start_after(level, self.pos) {
            Some(unit) => self.goto_pos(unit.span.start),
            None => vec![BrowseEvent::PageShown(self.view().page_index)],
        }
    }

    /// The previous start of a logical unit.
    pub fn previous_unit(&mut self, level: LogicalLevel) -> Vec<BrowseEvent> {
        match self.doc.tree().prev_start_before(level, self.pos) {
            Some(unit) => self.goto_pos(unit.span.start),
            None => vec![BrowseEvent::PageShown(self.view().page_index)],
        }
    }

    /// "The system returns the next page with the occurrence of this
    /// pattern" (§2).
    pub fn find_pattern(&mut self, pattern: &str) -> Vec<BrowseEvent> {
        let searcher = PatternSearcher::new(pattern);
        let chars: Vec<char> = self.doc.text().chars().collect();
        match searcher.find_next(&chars, self.pos + 1) {
            Some(hit) => {
                let mut events = self.goto_pos(hit);
                let page = self.view().page_index;
                events.push(BrowseEvent::PatternFound { page });
                events
            }
            None => vec![BrowseEvent::PatternNotFound],
        }
    }

    /// Seeks directly to a character position (relevance targets).
    pub fn seek(&mut self, pos: u32) -> Vec<BrowseEvent> {
        self.goto_pos(pos)
    }

    /// The show-once messages already displayed, in ascending order —
    /// checkpoint state: a resumed engine that forgot these would re-pin
    /// a "show once" message the user has already seen.
    pub fn shown_once(&self) -> Vec<usize> {
        let mut shown: Vec<usize> = self.shown_once.iter().copied().collect();
        shown.sort_unstable();
        shown
    }

    /// Marks `messages` as already shown (checkpoint restore). Call
    /// before [`VisualEngine::seek`]: the seek recomputes the active
    /// region honouring the restored suppression.
    pub fn restore_shown_once(&mut self, messages: &[usize]) {
        self.shown_once.extend(messages.iter().copied());
        self.pinned_now = self.active_region_index().map(|r| self.regions[r].message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minos_corpus::medical_report;
    use minos_types::ObjectId;

    fn engine() -> (MultimediaObject, VisualEngine) {
        let obj = medical_report(ObjectId::new(1), 42);
        let config = PaginateConfig {
            page_size: minos_types::Size::new(420, 260),
            margin: 10,
            block_gap: 6,
        };
        let engine = VisualEngine::new(&obj, 0, config).unwrap();
        (obj, engine)
    }

    use minos_object::MultimediaObject;

    #[test]
    fn open_shows_first_page() {
        let (_, mut e) = engine();
        let events = e.open();
        assert!(events.contains(&BrowseEvent::PageShown(0)));
        assert_eq!(e.view().page_index, 0);
        assert!(e.base_page_count() > 1);
    }

    #[test]
    fn paging_walks_forward_and_back() {
        let (_, mut e) = engine();
        e.open();
        let start_pos = e.position();
        e.next_page();
        assert!(e.position() > start_pos);
        e.previous_page();
        // Back on page 0 (position is the page start, not necessarily 0).
        assert_eq!(e.view().page_index, 0);
    }

    #[test]
    fn next_page_terminates_at_the_end() {
        let (_, mut e) = engine();
        e.open();
        // Paging forward always terminates: the position is monotone and
        // eventually stops changing.
        let mut last_pos = e.position();
        for _ in 0..200 {
            e.next_page();
            let pos = e.position();
            assert!(pos >= last_pos, "position moved backwards");
            if pos == last_pos {
                break;
            }
            last_pos = pos;
        }
        let final_pos = e.position();
        let events = e.next_page();
        assert_eq!(e.position(), final_pos, "stuck position must stay put");
        assert!(events.iter().any(|ev| matches!(ev, BrowseEvent::PageShown(_))));
    }

    #[test]
    fn entering_findings_pins_the_xray() {
        let (obj, mut e) = engine();
        e.open();
        let findings_start = obj.text_segments[0].tree().chapters[0].span.start;
        let events = e.seek(findings_start);
        assert!(events.contains(&BrowseEvent::VisualMessagePinned(0)), "no pin event: {events:?}");
        let view = e.view();
        assert_eq!(view.pinned_message, Some(0));
        assert!(view.reserved_top > 0);
        assert!(view.page_count >= 2, "related text should span pages, got {}", view.page_count);
    }

    #[test]
    fn paging_past_related_text_unpins() {
        let (obj, mut e) = engine();
        e.open();
        let findings = obj.text_segments[0].tree().chapters[0].span;
        e.seek(findings.start);
        let sub_pages = e.view().page_count;
        let mut unpinned = false;
        for _ in 0..sub_pages + 2 {
            let events = e.next_page();
            if events.contains(&BrowseEvent::VisualMessageUnpinned) {
                unpinned = true;
                break;
            }
        }
        assert!(unpinned, "never exited the pinned region");
        assert_eq!(e.view().pinned_message, None);
        assert!(e.position() >= findings.end);
    }

    #[test]
    fn logical_browsing_moves_between_chapters() {
        let (obj, mut e) = engine();
        e.open();
        e.next_unit(LogicalLevel::Chapter);
        let ch0 = obj.text_segments[0].tree().chapters[0].span;
        assert_eq!(e.position(), ch0.start);
        e.next_unit(LogicalLevel::Chapter);
        let ch1 = obj.text_segments[0].tree().chapters[1].span;
        assert_eq!(e.position(), ch1.start);
        // No further chapter: stays put.
        let before = e.position();
        e.next_unit(LogicalLevel::Chapter);
        assert_eq!(e.position(), before);
        e.previous_unit(LogicalLevel::Chapter);
        assert_eq!(e.position(), ch0.start);
    }

    #[test]
    fn pattern_browsing_finds_next_page_with_pattern() {
        let (_, mut e) = engine();
        e.open();
        let events = e.find_pattern("shadow");
        assert!(events.iter().any(|ev| matches!(ev, BrowseEvent::PatternFound { .. })));
        let first_hit = e.position();
        // Search again: next occurrence or not found.
        let events2 = e.find_pattern("shadow");
        if events2.iter().any(|ev| matches!(ev, BrowseEvent::PatternFound { .. })) {
            assert!(e.position() > first_hit);
        }
        let none = e.find_pattern("zzznotthere");
        assert_eq!(none, vec![BrowseEvent::PatternNotFound]);
    }

    #[test]
    fn goto_page_is_absolute() {
        let (_, mut e) = engine();
        e.open();
        e.goto_page(PageNumber::new(2).unwrap());
        assert_eq!(e.base_form_page(), 1);
        e.goto_page(PageNumber::new(999).unwrap());
        assert_eq!(e.base_form_page(), e.base_page_count() - 1);
    }

    impl VisualEngine {
        fn base_form_page(&self) -> usize {
            self.base_form.page_containing(self.pos).unwrap_or(0)
        }
    }

    #[test]
    fn voice_note_plays_on_entry_once_until_exit() {
        let mut obj = minos_corpus::office_document(ObjectId::new(2), 5, 3);
        // Un-archive trick: rebuild an editing copy to attach a message.
        let mut fresh =
            MultimediaObject::new(ObjectId::new(2), "annotated", minos_object::DrivingMode::Visual);
        fresh.text_segments = obj.text_segments.clone();
        let span = {
            let tree = fresh.text_segments[0].tree();
            tree.chapters[1].span
        };
        minos_corpus::objects::attach_voice_note(&mut fresh, span, "note for chapter two", 9);
        fresh.archive().unwrap();
        obj = fresh;

        let mut e = VisualEngine::new(&obj, 0, PaginateConfig::default()).unwrap();
        e.open();
        let events = e.seek(span.start);
        assert!(events.contains(&BrowseEvent::VoiceMessagePlayed(0)));
        // Moving within the span does not replay.
        let events = e.seek(span.start + 5);
        assert!(!events.contains(&BrowseEvent::VoiceMessagePlayed(0)));
        // Leaving and re-entering replays ("first branches into").
        e.seek(0);
        let events = e.seek(span.start + 1);
        assert!(events.contains(&BrowseEvent::VoiceMessagePlayed(0)));
    }

    #[test]
    fn missing_segment_is_an_error() {
        let obj = medical_report(ObjectId::new(3), 1);
        assert!(VisualEngine::new(&obj, 5, PaginateConfig::default()).is_err());
    }
}
